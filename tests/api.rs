//! Integration tests for the staged fit-once/detect-many API: equivalence
//! with independent one-shot runs, typed configuration errors, and the
//! serving path (`score_points`).

use mccatch::index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch::metrics::{Euclidean, Levenshtein};
use mccatch::{McCatch, McCatchError, Params};

mod common;

/// Fig. 3-flavored scene: dense blob, one 8-point microcluster with halo,
/// one isolate.
fn scene() -> Vec<Vec<f64>> {
    let mut pts = Vec::new();
    for i in 0..20 {
        for j in 0..10 {
            pts.push(vec![i as f64 * 0.1, j as f64 * 0.1]);
        }
    }
    pts.push(vec![4.0, 2.0]);
    for k in 0..8 {
        pts.push(vec![
            30.0 + 0.08 * (k % 4) as f64,
            30.0 + 0.08 * (k / 4) as f64,
        ]);
    }
    pts.push(vec![31.3, 30.0]);
    pts.push(vec![70.0, -40.0]);
    pts
}

#[test]
fn fit_once_detect_twice_equals_two_one_shot_runs() {
    let pts = scene();

    // Two fully independent one-shot runs (fresh fit each time, exactly
    // the lifecycle the removed 0.2.0 shims packaged)…
    let legacy_a = common::detect_vectors(&pts, &Params::default());
    let legacy_b = common::detect_vectors(&pts, &Params::default());

    // …vs one fit and two detect() calls on the same handle.
    let detector = McCatch::builder().build().expect("valid");
    let fitted = detector
        .fit(pts.clone(), Euclidean, KdTreeBuilder::default())
        .expect("fit");
    let staged_a = fitted.detect();
    let staged_b = fitted.detect();

    for out in [&staged_a, &staged_b] {
        assert_eq!(legacy_a.outliers, out.outliers);
        assert_eq!(legacy_a.point_scores, out.point_scores);
        let legacy_scores: Vec<f64> = legacy_a.microclusters.iter().map(|m| m.score).collect();
        let staged_scores: Vec<f64> = out.microclusters.iter().map(|m| m.score).collect();
        assert_eq!(legacy_scores, staged_scores);
        let legacy_members: Vec<&Vec<u32>> =
            legacy_a.microclusters.iter().map(|m| &m.members).collect();
        let staged_members: Vec<&Vec<u32>> = out.microclusters.iter().map(|m| &m.members).collect();
        assert_eq!(legacy_members, staged_members);
        assert_eq!(legacy_a.cutoff, out.cutoff);
        assert_eq!(legacy_a.radii, out.radii);
        assert_eq!(legacy_a.diameter, out.diameter);
    }
    // The two legacy runs agree with each other too (determinism).
    assert_eq!(legacy_a.outliers, legacy_b.outliers);
    assert_eq!(legacy_a.point_scores, legacy_b.point_scores);
}

#[test]
fn fit_once_detect_twice_matches_one_shot_on_string_data() {
    let mut words: Vec<String> = Vec::new();
    for a in ["sm", "br", "cl", "tr", "gr"] {
        for b in ["ith", "own", "ark", "een", "ant"] {
            for c in ["", "s", "er", "ing"] {
                words.push(format!("{a}{b}{c}"));
            }
        }
    }
    words.push("xxxxxxxxxxxxxxxxxxxxxx".to_string());
    words.push("xxxxxxxxxxxxxxxxxxxxxy".to_string());

    let legacy = common::detect_metric(&words, &Levenshtein, &Params::default());

    let fitted = McCatch::builder()
        .build()
        .expect("valid")
        .fit(words, Levenshtein, SlimTreeBuilder::default())
        .expect("fit");
    let a = fitted.detect();
    let b = fitted.detect();
    assert_eq!(legacy.outliers, a.outliers);
    assert_eq!(legacy.point_scores, a.point_scores);
    assert_eq!(a.outliers, b.outliers);
    assert_eq!(a.point_scores, b.point_scores);
}

#[test]
fn invalid_num_radii_is_an_error_value_not_a_panic() {
    let err = McCatch::builder().num_radii(1).build().unwrap_err();
    assert_eq!(err, McCatchError::InvalidNumRadii { got: 1 });
    let err = McCatch::builder().num_radii(0).build().unwrap_err();
    assert_eq!(err, McCatchError::InvalidNumRadii { got: 0 });
    // Same through Params-based construction.
    let bad = Params {
        num_radii: 1,
        ..Params::default()
    };
    assert!(matches!(
        McCatch::new(bad),
        Err(McCatchError::InvalidNumRadii { got: 1 })
    ));
}

#[test]
fn negative_slope_is_an_error_value_not_a_panic() {
    let err = McCatch::builder()
        .max_plateau_slope(-0.1)
        .build()
        .unwrap_err();
    assert!(matches!(err, McCatchError::InvalidSlope { got } if got == -0.1));
    assert!(matches!(
        McCatch::builder().max_plateau_slope(f64::NAN).build(),
        Err(McCatchError::InvalidSlope { .. })
    ));
    // Errors render a useful message for CLI/service surfaces.
    assert!(err.to_string().contains("max_plateau_slope"));
}

#[test]
fn score_points_ranks_held_out_outlier_above_all_inliers() {
    let pts = scene();
    let fitted = McCatch::builder()
        .build()
        .expect("valid")
        .fit(pts, Euclidean, KdTreeBuilder::default())
        .expect("fit");

    // Held-out queries: every blob vicinity point is inlier-like; the far
    // point is an outlier the reference set has never seen.
    let mut queries: Vec<Vec<f64>> = (0..50)
        .map(|i| vec![(i % 10) as f64 * 0.19 + 0.03, (i / 10) as f64 * 0.17 + 0.05])
        .collect();
    let outlier_query = vec![-55.0, 62.0];
    queries.push(outlier_query);

    let scores = fitted.score_points(&queries);
    let outlier_score = *scores.last().unwrap();
    let max_inlier = scores[..scores.len() - 1]
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        outlier_score > max_inlier,
        "outlier {outlier_score} vs best inlier {max_inlier}"
    );
}

#[test]
fn score_points_does_not_mutate_the_fit() {
    let pts = scene();
    let fitted = McCatch::builder()
        .build()
        .expect("valid")
        .fit(pts, Euclidean, KdTreeBuilder::default())
        .expect("fit");
    let before = fitted.detect();
    let _ = fitted.score_points(&[vec![1000.0, 1000.0], vec![0.5, 0.5]]);
    let after = fitted.detect();
    assert_eq!(before.outliers, after.outliers);
    assert_eq!(before.point_scores, after.point_scores);
}

#[test]
fn builder_knobs_flow_through_to_detection() {
    let pts = scene();
    let kd = KdTreeBuilder::default();
    // threads must not change results (determinism guarantee).
    let one = McCatch::builder()
        .threads(1)
        .build()
        .expect("valid")
        .fit(pts.clone(), Euclidean, kd)
        .expect("fit")
        .detect();
    let many = McCatch::builder()
        .threads(8)
        .build()
        .expect("valid")
        .fit(pts.clone(), Euclidean, kd)
        .expect("fit")
        .detect();
    assert_eq!(one.outliers, many.outliers);
    assert_eq!(one.point_scores, many.point_scores);

    // A custom radius count shows up in the fitted grid.
    let fitted = McCatch::builder()
        .num_radii(9)
        .build()
        .expect("valid")
        .fit(pts, Euclidean, kd)
        .expect("fit");
    assert_eq!(fitted.radii().len(), 9);
}

#[test]
fn erased_model_and_borrowed_shim_match_the_owned_path() {
    let pts = scene();

    // An independent one-shot run over the borrowed slice…
    let legacy = common::detect_vectors(&pts, &Params::default());

    // …and both the borrowed fit_ref convenience and the erased model
    // must be bit-identical to it.
    let detector = McCatch::builder().build().expect("valid");
    let via_ref = detector
        .fit_ref(&pts, &Euclidean, &KdTreeBuilder::default())
        .expect("fit")
        .detect();
    let model = detector
        .fit(pts, Euclidean, KdTreeBuilder::default())
        .expect("fit")
        .into_model();
    let via_model = model.detect_output();

    for out in [&via_ref, &via_model] {
        assert_eq!(legacy.outliers, out.outliers);
        assert_eq!(legacy.point_scores, out.point_scores);
        assert_eq!(legacy.microclusters, out.microclusters);
        assert_eq!(legacy.cutoff, out.cutoff);
        assert_eq!(legacy.radii, out.radii);
    }
    assert_eq!(model.stats().num_outliers, legacy.outliers.len());
}
