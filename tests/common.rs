//! Shared one-shot helpers for the root integration suites: the staged
//! builder API driven exactly the way the `detect_vectors` /
//! `detect_metric` shims (removed in 0.4.0) used to drive it, so every
//! suite exercises the configure-fit-detect lifecycle the production
//! callers use.
//!
//! Each `[[test]]` target compiles this file independently, and not every
//! suite uses both helpers — hence the `dead_code` allowance.
#![allow(dead_code)]

use mccatch::index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch::metrics::{Euclidean, Metric};
use mccatch::{McCatch, McCatchOutput, Params};

/// One-shot MCCATCH on the kd-tree fast path for vector data.
pub fn detect_vectors(points: &[Vec<f64>], params: &Params) -> McCatchOutput {
    McCatch::new(params.clone())
        .expect("valid params")
        .fit_ref(points, &Euclidean, &KdTreeBuilder::default())
        .expect("fit")
        .detect()
}

/// One-shot MCCATCH on the Slim-tree general path for metric data.
pub fn detect_metric<P: Send + Sync + Clone, M: Metric<P> + Clone>(
    points: &[P],
    metric: &M,
    params: &Params,
) -> McCatchOutput {
    McCatch::new(params.clone())
        .expect("valid params")
        .fit_ref(points, metric, &SlimTreeBuilder::default())
        .expect("fit")
        .detect()
}
