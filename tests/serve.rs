//! Facade-level smoke test of the HTTP serving tier: the whole stack —
//! `mccatch::server` over `mccatch::stream` over `mccatch::serve` —
//! reached exclusively through the `mccatch` facade paths, on a real
//! ephemeral localhost socket. (The exhaustive endpoint and
//! malformed-input matrices live in `crates/server/tests`.)

use mccatch::index::KdTreeBuilder;
use mccatch::metrics::Euclidean;
use mccatch::server::client::{get, post};
use mccatch::server::{ndjson, serve, ServerConfig};
use mccatch::stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch::McCatch;
use std::sync::Arc;

#[test]
fn the_facade_serves_scores_over_http() {
    let mut seed: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
        .collect();
    seed.push(vec![500.0, 500.0]);

    let detector = Arc::new(
        StreamDetector::new(
            StreamConfig {
                capacity: 256,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap(),
    );
    let server = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&detector),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();

    assert_eq!(get(addr, "/healthz").unwrap().status, 200);

    // Scores on the wire equal a direct ModelStore::score_batch through
    // the facade's `serve` path, bit for bit.
    let queries = vec![vec![4.5, 4.5], vec![300.0, -20.0]];
    let direct = detector.store().score_batch(&queries);
    let resp = post(addr, "/score", b"[4.5, 4.5]\n[300.0, -20.0]\n").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-mccatch-generation"), Some("0"));
    let served: Vec<f64> = resp
        .text()
        .unwrap()
        .lines()
        .map(|l| {
            l.strip_prefix("{\"score\": ")
                .and_then(|l| l.strip_suffix('}'))
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    assert_eq!(direct, served);

    // Ingest over the wire is a real stream ingest.
    let before = detector.stats().events_ingested;
    assert_eq!(post(addr, "/ingest", b"[4.0, 4.0]\n").unwrap().status, 200);
    assert_eq!(detector.stats().events_ingested, before + 1);

    // A refit over the wire advances the served generation.
    assert_eq!(post(addr, "/admin/refit", b"").unwrap().status, 200);
    assert_eq!(detector.generation(), 1);

    let metrics = get(addr, "/metrics").unwrap();
    assert!(metrics
        .text()
        .unwrap()
        .contains("mccatch_model_generation 1"));

    server.shutdown();
}
