//! Nondimensional integration tests: strings under Levenshtein/Soundex and
//! trees under Zhang–Shasha — goal G1 of the paper, the capability every
//! baseline lacks without modification.

use mccatch::data::{fingerprints, last_names, skeletons};
use mccatch::eval::auroc;
use mccatch::metrics::{Levenshtein, SoundexDistance, TreeEditDistance};
use mccatch::Params;

mod common;
use common::detect_metric;

#[test]
fn names_auroc_beats_chance_clearly() {
    let data = last_names(1_000, 25, 7);
    let out = detect_metric(&data.points, &Levenshtein, &Params::default());
    let score = auroc(&out.point_scores, &data.labels);
    // Paper reports 0.75 on the real corpus; the synthetic analogue is
    // cleaner, so demand at least 0.7.
    assert!(score > 0.7, "AUROC {score}");
}

#[test]
fn names_work_under_soundex_too() {
    // Any metric must be pluggable; Soundex is a pseudometric on strings.
    let data = last_names(500, 15, 3);
    let out = detect_metric(&data.points, &SoundexDistance, &Params::default());
    assert_eq!(out.point_scores.len(), data.len());
    assert!(out.point_scores.iter().all(|s| s.is_finite()));
}

#[test]
fn skeletons_perfect_or_near_perfect_auroc() {
    let data = skeletons(150, 5);
    let out = detect_metric(&data.points, &TreeEditDistance, &Params::default());
    let score = auroc(&out.point_scores, &data.labels);
    // The paper reports a perfect 1.0.
    assert!(score > 0.95, "AUROC {score}");
    // All three wild animals flagged.
    for i in 150..153 {
        assert!(out.is_outlier(i), "animal {i} missed");
    }
}

#[test]
fn partial_fingerprints_form_microclusters() {
    let data = fingerprints(150, 6, 2);
    let out = detect_metric(&data.points, &Levenshtein, &Params::default());
    let score = auroc(&out.point_scores, &data.labels);
    assert!(score > 0.9, "AUROC {score}");
    // The partial prints are close to one another: at least one
    // nonsingleton microcluster among them.
    let partial_ids: Vec<u32> = (150..156).collect();
    let in_nonsingleton = partial_ids.iter().any(|&i| {
        out.cluster_of(i)
            .map(|mc| mc.cardinality() >= 2)
            .unwrap_or(false)
    });
    assert!(in_nonsingleton, "no partial-print microcluster found");
}

#[test]
fn string_pipeline_deterministic() {
    let data = last_names(300, 10, 9);
    let a = detect_metric(&data.points, &Levenshtein, &Params::default());
    let b = detect_metric(&data.points, &Levenshtein, &Params::default());
    assert_eq!(a.outliers, b.outliers);
    assert_eq!(a.point_scores, b.point_scores);
}
