//! Cross-crate integration tests: the full MCCATCH pipeline against the
//! dataset generators, compared with ground truth and with the baselines.

use mccatch::data::{benchmark_by_name, http, http_dos_ids, shanghai, volcanoes};
use mccatch::eval::auroc;
use mccatch::Params;

mod common;
use common::detect_vectors;

#[test]
fn finds_dos_microcluster_in_http_analogue() {
    let n = 20_000;
    let data = http(n, 1);
    let out = detect_vectors(&data.points, &Params::default());
    let dos = http_dos_ids(n);
    // Every DoS connection must be flagged and gelled into one cluster.
    let mc = out.cluster_of(dos[0]).expect("DoS cluster found");
    let recovered = dos.iter().filter(|d| mc.members.contains(d)).count();
    assert_eq!(recovered, dos.len(), "DoS cluster fragmented");
    // The ranking must be high quality.
    let score = auroc(&out.point_scores, &data.labels);
    assert!(score > 0.95, "AUROC {score}");
}

#[test]
fn benchmark_analogues_score_well() {
    // Small and mid presets run quickly; MCCATCH should beat chance by a
    // wide margin on all of them.
    for name in ["Wine", "Glass", "Vertebral", "Ecoli", "Pima", "Vowels"] {
        let spec = benchmark_by_name(name).unwrap();
        let data = spec.generate(11);
        let out = detect_vectors(&data.points, &Params::default());
        let score = auroc(&out.point_scores, &data.labels);
        assert!(score > 0.8, "{name}: AUROC {score}");
    }
}

#[test]
fn microclusters_recovered_on_planted_presets() {
    // Vertebral plants 2 microclusters of 5; they must be flagged and the
    // nonsingleton structure recovered.
    let spec = benchmark_by_name("Vertebral").unwrap();
    let data = spec.generate(5);
    let out = detect_vectors(&data.points, &Params::default());
    let nonsingleton = out
        .microclusters
        .iter()
        .filter(|m| m.cardinality() >= 4)
        .count();
    assert!(nonsingleton >= 2, "found {nonsingleton} nonsingleton mcs");
}

#[test]
fn satellite_showcases_recover_planted_structure() {
    let img = shanghai(1);
    let out = detect_vectors(&img.data.points, &Params::default());
    for cluster in &img.planted_clusters {
        let mc = out.cluster_of(cluster[0]).expect("planted pair found");
        assert!(
            cluster.iter().all(|t| mc.members.contains(t)),
            "pair split: {:?} vs {:?}",
            cluster,
            mc.members
        );
    }
    let img = volcanoes(1);
    let out = detect_vectors(&img.data.points, &Params::default());
    let summit = &img.planted_clusters[0];
    let mc = out.cluster_of(summit[0]).expect("snow cluster found");
    assert!(summit.iter().all(|t| mc.members.contains(t)));
}

#[test]
fn ranking_quality_beats_iforest_on_microcluster_data() {
    // Microclustered outliers shield one another from isolation-based
    // detectors — the paper's core motivation. Verify the gap on an
    // mc-heavy analogue.
    let spec = benchmark_by_name("Annthyroid").unwrap();
    let data = spec.generate_scaled(0.5, 9);
    let ours = detect_vectors(&data.points, &Params::default());
    let ours_auroc = auroc(&ours.point_scores, &data.labels);
    let iforest = mccatch::baselines::iforest_scores(&data.points, 100, 256, 1);
    let iforest_auroc = auroc(&iforest, &data.labels);
    assert!(
        ours_auroc >= iforest_auroc - 0.02,
        "MCCATCH {ours_auroc} vs iForest {iforest_auroc}"
    );
    assert!(ours_auroc > 0.9, "MCCATCH {ours_auroc}");
}

#[test]
fn scores_and_flags_deterministic_across_threads() {
    let data = http(5_000, 3);
    let a = detect_vectors(
        &data.points,
        &Params {
            threads: 1,
            ..Params::default()
        },
    );
    let b = detect_vectors(
        &data.points,
        &Params {
            threads: 4,
            ..Params::default()
        },
    );
    assert_eq!(a.outliers, b.outliers);
    assert_eq!(a.point_scores, b.point_scores);
}

#[test]
fn full_output_is_well_formed() {
    let data = http(3_000, 5);
    let out = detect_vectors(&data.points, &Params::default());
    // Microclusters are disjoint and their union equals the outlier set.
    let mut seen = std::collections::BTreeSet::new();
    for mc in &out.microclusters {
        assert!(!mc.members.is_empty());
        assert!(mc.score.is_finite() && mc.score > 0.0);
        for &m in &mc.members {
            assert!(seen.insert(m), "point {m} in two microclusters");
        }
    }
    let union: Vec<u32> = seen.into_iter().collect();
    assert_eq!(union, out.outliers);
    // Point scores: finite, non-negative, aligned.
    assert_eq!(out.point_scores.len(), data.len());
    assert!(out.point_scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    // Ranking is sorted.
    for w in out.microclusters.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}
