//! Axiom-obedience integration tests (paper Sec. III and Tab. V): across
//! shapes and random instances, the green microcluster must outscore the
//! red one under both the Isolation and the Cardinality axiom.

use mccatch::data::{axiom_scenario, Axiom, InlierShape};
use mccatch::eval::welch_t_test;
use mccatch::{McCatchOutput, Params};

mod common;
use common::detect_vectors;

/// Score of the microcluster containing the given planted members; panics
/// if they were not all gelled into one cluster.
fn planted_score(out: &McCatchOutput, members: &[u32], tag: &str) -> f64 {
    let mc = out
        .cluster_of(members[0])
        .unwrap_or_else(|| panic!("{tag} microcluster not flagged"));
    let recovered = members.iter().filter(|m| mc.members.contains(m)).count();
    assert!(
        recovered * 2 >= members.len(),
        "{tag} microcluster fragmented: {recovered}/{}",
        members.len()
    );
    mc.score
}

#[test]
fn isolation_axiom_all_shapes() {
    for shape in InlierShape::ALL {
        for seed in 0..3 {
            let s = axiom_scenario(shape, Axiom::Isolation, 20_000, seed);
            let out = detect_vectors(&s.data.points, &Params::default());
            let red = planted_score(&out, &s.red, "red");
            let green = planted_score(&out, &s.green, "green");
            assert!(
                green > red,
                "{:?} seed {seed}: green {green} <= red {red}",
                shape
            );
        }
    }
}

#[test]
fn cardinality_axiom_all_shapes() {
    for shape in InlierShape::ALL {
        for seed in 0..3 {
            let s = axiom_scenario(shape, Axiom::Cardinality, 20_000, seed);
            let out = detect_vectors(&s.data.points, &Params::default());
            let red = planted_score(&out, &s.red, "red");
            let green = planted_score(&out, &s.green, "green");
            assert!(
                green > red,
                "{:?} seed {seed}: green {green} <= red {red}",
                shape
            );
        }
    }
}

#[test]
fn axiom_obedience_is_statistically_significant() {
    // A miniature Tab. V: 10 seeds of the Gaussian isolation scenario; the
    // one-sided Welch test must reject "green == red" decisively.
    let mut greens = Vec::new();
    let mut reds = Vec::new();
    for seed in 0..10 {
        let s = axiom_scenario(InlierShape::Gaussian, Axiom::Isolation, 10_000, 100 + seed);
        let out = detect_vectors(&s.data.points, &Params::default());
        greens.push(planted_score(&out, &s.green, "green"));
        reds.push(planted_score(&out, &s.red, "red"));
    }
    let t = welch_t_test(&greens, &reds);
    assert!(t.p_greater < 1e-4, "p = {}", t.p_greater);
}
