//! Facade-level smoke test of multi-tenant serving: `mccatch::tenant`'s
//! `TenantMap` mounted over HTTP with `mccatch::server::serve_tenants`,
//! reached exclusively through the `mccatch` facade paths on a real
//! ephemeral localhost socket. (The exhaustive routing, isolation, and
//! lifecycle matrices live in `crates/server/tests/tenants.rs`; the
//! registry/router/shard unit tests in `crates/tenant`.)

use mccatch::index::KdTreeBuilder;
use mccatch::metrics::Euclidean;
use mccatch::server::client::{get, post, Connection};
use mccatch::server::{ndjson, serve_tenants, ServerConfig};
use mccatch::stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch::tenant::{boot_tenant_name, TenantMap, TenantSpec};
use mccatch::McCatch;
use std::sync::Arc;

fn grid(shift: f64) -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64 + shift])
        .collect();
    pts.push(vec![500.0 + shift, 500.0 + shift]);
    pts
}

fn ndjson_body(pts: &[Vec<f64>]) -> Vec<u8> {
    pts.iter()
        .map(|p| format!("[{}, {}]\n", p[0], p[1]))
        .collect::<String>()
        .into_bytes()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        capacity: 256,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    }
}

#[test]
fn the_facade_serves_isolated_tenants_over_http() {
    let detector = McCatch::builder().build().unwrap();
    // The default (unnamed) detector behind the bare endpoints.
    let default = Arc::new(
        StreamDetector::new(
            stream_config(),
            detector.clone(),
            Euclidean,
            KdTreeBuilder::default(),
            grid(0.0),
        )
        .unwrap(),
    );
    // A two-shard tenant map, with tenant "a" pre-created (the CLI's
    // `--tenants 1 --shards 2` shape).
    let tenants = TenantMap::new(
        detector,
        Euclidean,
        KdTreeBuilder::default(),
        TenantSpec {
            shards: 2,
            stream: stream_config(),
            ..TenantSpec::default()
        },
    )
    .unwrap();
    assert_eq!(boot_tenant_name(0), "a");
    let a = tenants.create_seeded("a", grid(0.0)).unwrap();

    let server = serve_tenants(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&default),
        ndjson::vector_parser(Some(2)),
        "kd",
        Arc::new(tenants),
    )
    .unwrap();
    let addr = server.local_addr();

    // Create tenant "b" over the wire, seeded with shifted data.
    let mut conn = Connection::open(addr).unwrap();
    let resp = conn
        .request("PUT", "/admin/tenants/b", &ndjson_body(&grid(1000.0)))
        .unwrap();
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    let listed = get(addr, "/admin/tenants").unwrap();
    assert!(listed.text().unwrap().contains("\"a\""));
    assert!(listed.text().unwrap().contains("\"b\""));

    // Tenant-scoped scoring matches the tenant's own ensemble, bit for
    // bit, and the two tenants disagree (different seed data).
    let queries = vec![vec![4.5, 4.5], vec![300.0, -20.0]];
    let direct = a.score_batch(&queries).0;
    let scores = |path: &str| -> Vec<f64> {
        let resp = post(addr, path, &ndjson_body(&queries)).unwrap();
        assert_eq!(resp.status, 200, "{path}: {:?}", resp.text());
        resp.text()
            .unwrap()
            .lines()
            .map(|l| {
                l.strip_prefix("{\"score\": ")
                    .and_then(|l| l.strip_suffix('}'))
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect()
    };
    assert_eq!(scores("/t/a/score"), direct);
    assert_ne!(scores("/t/b/score"), direct);

    // Ingest + refit on "b" never moves "a" (or the default detector).
    let default_before = default.stats();
    assert_eq!(
        post(addr, "/t/b/ingest", &ndjson_body(&grid(1000.0)))
            .unwrap()
            .status,
        200
    );
    assert_eq!(post(addr, "/t/b/admin/refit", b"").unwrap().status, 200);
    assert_eq!(scores("/t/a/score"), direct);
    assert_eq!(a.generation(), 0);
    assert_eq!(default.stats(), default_before);

    // Delete "b": its routes go away, "a" keeps serving.
    assert_eq!(
        conn.request("DELETE", "/admin/tenants/b", b"")
            .unwrap()
            .status,
        200
    );
    assert_eq!(post(addr, "/t/b/score", b"[1, 2]\n").unwrap().status, 404);
    assert_eq!(scores("/t/a/score"), direct);

    server.shutdown();
}
