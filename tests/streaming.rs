//! Integration tests for the streaming subsystem through the `mccatch`
//! facade: the `mccatch::stream` re-export, nondimensional (string)
//! streams, policy behavior over realistic event flows, and the
//! facade-level serve + stream interplay.

use mccatch::index::SlimTreeBuilder;
use mccatch::metrics::{Euclidean, Levenshtein};
use mccatch::serve::ModelStore;
use mccatch::stream::{RefitPolicy, StreamConfig, StreamDetector, StreamError};
use mccatch::McCatch;
use std::sync::Arc;

fn grid_with_isolate() -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
        .collect();
    pts.push(vec![500.0, 500.0]);
    pts
}

#[test]
fn facade_paths_cover_the_streaming_quickstart() {
    let stream = StreamDetector::new(
        StreamConfig {
            capacity: 256,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        McCatch::builder().build().unwrap(),
        Euclidean,
        mccatch::index::KdTreeBuilder::default(),
        grid_with_isolate(),
    )
    .unwrap();
    let ok = stream.ingest(vec![4.0, 4.0]);
    let bad = stream.ingest(vec![900.0, 900.0]);
    assert!(bad.score > ok.score);
    assert!(bad.flagged && !ok.flagged);
    assert_eq!(stream.generation(), 0);
}

#[test]
fn string_events_stream_on_the_general_path() {
    // Nondimensional streaming: names under Levenshtein, exactly like
    // the batch "unusual names" workload but event by event.
    let seed: Vec<String> = [
        "smith",
        "smyth",
        "smithe",
        "smit",
        "smiths",
        "smythe",
        "psmith",
        "smitt",
        "asmith",
        "smity",
        "xylophonist",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let stream = StreamDetector::new(
        StreamConfig {
            capacity: 64,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        McCatch::builder().build().unwrap(),
        Levenshtein,
        SlimTreeBuilder::default(),
        seed,
    )
    .unwrap();
    let near = stream.ingest("smythh".to_owned());
    let far = stream.ingest("qqqqqqqqqqqqqq".to_owned());
    assert!(far.score > near.score);

    // Freeze + refit: the stream's model equals a batch fit on the
    // window, for strings too.
    stream.refit_now().unwrap();
    let batch = McCatch::builder()
        .build()
        .unwrap()
        .fit(
            stream.window_points(),
            Levenshtein,
            SlimTreeBuilder::default(),
        )
        .unwrap();
    let probes: Vec<String> = vec!["smythe".into(), "zzzzzz".into()];
    assert_eq!(stream.score_batch(&probes), batch.score_points(&probes));
}

#[test]
fn sliding_window_forgets_old_regimes() {
    // A regime change: after the window slides fully onto the new
    // traffic and a refit lands, the old regime scores as anomalous.
    let stream = StreamDetector::new(
        StreamConfig {
            capacity: 100,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        McCatch::builder().build().unwrap(),
        Euclidean,
        mccatch::index::KdTreeBuilder::default(),
        grid_with_isolate(),
    )
    .unwrap();
    assert_eq!(stream.score(&vec![5.0, 5.0]), 0.0);
    for i in 0..100 {
        stream.ingest(vec![(i % 10) as f64 + 3000.0, (i / 10) as f64]);
    }
    stream.refit_now().unwrap();
    assert_eq!(stream.window_len(), 100);
    assert_eq!(stream.stats().events_evicted, 101);
    assert_eq!(stream.score(&vec![3005.0, 5.0]), 0.0, "new regime is home");
    assert!(
        stream.score(&vec![5.0, 5.0]) > 0.0,
        "the forgotten regime is now anomalous"
    );
}

#[test]
fn generation_tags_expose_model_freshness_to_consumers() {
    let stream = StreamDetector::new(
        StreamConfig {
            capacity: 128,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        McCatch::builder().build().unwrap(),
        Euclidean,
        mccatch::index::KdTreeBuilder::default(),
        grid_with_isolate(),
    )
    .unwrap();
    let before = stream.ingest(vec![2.0, 2.0]);
    assert_eq!(before.generation, 0);
    stream.refit_now().unwrap();
    let after = stream.ingest(vec![2.0, 2.0]);
    assert_eq!(after.generation, 1);
    assert_eq!(stream.stats().generation, 1);
}

#[test]
fn stream_errors_are_typed_values() {
    let bad = StreamDetector::<Vec<f64>, _, _>::new(
        StreamConfig {
            capacity: 16,
            policy: RefitPolicy::Drift {
                recent: 8,
                threshold: 2.0,
            },
            ..StreamConfig::default()
        },
        McCatch::builder().build().unwrap(),
        Euclidean,
        mccatch::index::KdTreeBuilder::default(),
        vec![],
    );
    assert_eq!(
        bad.err().map(|e| e.to_string()),
        Some(StreamError::InvalidDriftThreshold { got: 2.0 }.to_string())
    );
}

#[test]
fn stream_and_store_compose_for_fan_out_serving() {
    // A deployment shape: one StreamDetector ingests, while an
    // independent ModelStore fans the same erased snapshots out to other
    // services — the stream's model handles are ordinary `Arc<dyn
    // Model>`s.
    let stream = StreamDetector::new(
        StreamConfig {
            capacity: 128,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        McCatch::builder().build().unwrap(),
        Euclidean,
        mccatch::index::KdTreeBuilder::default(),
        grid_with_isolate(),
    )
    .unwrap();
    let mirror = Arc::new(ModelStore::new(stream.model()));
    let q = vec![vec![4.5, 4.5], vec![900.0, -900.0]];
    assert_eq!(mirror.score_batch(&q), stream.score_batch(&q));

    // After a refit, republishing the snapshot keeps the mirror fresh.
    for i in 0..64 {
        stream.ingest(vec![(i % 8) as f64 * 0.5, (i / 8) as f64 * 0.5]);
    }
    stream.refit_now().unwrap();
    mirror.swap(stream.model());
    assert_eq!(mirror.generation(), 1);
    assert_eq!(mirror.score_batch(&q), stream.score_batch(&q));
}
