//! The ownership story of the redesigned API, verified end to end:
//!
//! * `Fitted` and `Arc<dyn Model<P>>` are `Send + Sync + 'static` —
//!   checked at compile time, so a regression reintroducing a borrowed
//!   lifetime fails this suite before any test runs;
//! * a fitted model can be **returned** from the stack frame that loaded
//!   the data (impossible with the PR-1 borrowed handle);
//! * N threads sharing one model all see outputs bit-identical to a
//!   single-threaded run;
//! * the `serve::ModelStore` swap-on-refit path keeps old snapshots
//!   alive and consistent.

use mccatch::index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch::metrics::{Euclidean, Levenshtein};
use mccatch::serve::ModelStore;
use mccatch::{Fitted, McCatch, Model};
use std::sync::Arc;

/// Compile-time proof of the `Send + Sync + 'static` contract.
fn assert_send_sync_static<T: Send + Sync + 'static>() {}

#[test]
fn fitted_and_model_are_send_sync_static() {
    assert_send_sync_static::<Fitted<Vec<f64>, Euclidean, KdTreeBuilder>>();
    assert_send_sync_static::<Fitted<Vec<f64>, Euclidean, SlimTreeBuilder>>();
    assert_send_sync_static::<Fitted<String, Levenshtein, SlimTreeBuilder>>();
    assert_send_sync_static::<Arc<dyn Model<Vec<f64>>>>();
    assert_send_sync_static::<Arc<dyn Model<String>>>();
    assert_send_sync_static::<ModelStore<Vec<f64>>>();
    assert_send_sync_static::<Arc<ModelStore<String>>>();
}

fn scene() -> Vec<Vec<f64>> {
    let mut pts = Vec::new();
    for i in 0..20 {
        for j in 0..10 {
            pts.push(vec![i as f64 * 0.1, j as f64 * 0.1]);
        }
    }
    pts.push(vec![4.0, 2.0]);
    for k in 0..8 {
        pts.push(vec![
            30.0 + 0.08 * (k % 4) as f64,
            30.0 + 0.08 * (k / 4) as f64,
        ]);
    }
    pts.push(vec![31.3, 30.0]);
    pts.push(vec![70.0, -40.0]);
    pts
}

/// The load-then-return pattern the borrowed PR-1 handle could not
/// express: the points are created *inside* this function and the fitted
/// model outlives the frame.
fn load_and_fit() -> Fitted<Vec<f64>, Euclidean, KdTreeBuilder> {
    let pts = scene();
    McCatch::builder()
        .build()
        .expect("valid")
        .fit(pts, Euclidean, KdTreeBuilder::default())
        .expect("fit")
}

#[test]
fn fitted_model_outlives_the_loading_frame() {
    let fitted = load_and_fit();
    let out = fitted.detect();
    assert!(out.num_outliers() > 0);
    // And it moves into a spawned thread (requires 'static + Send).
    let handle = std::thread::spawn(move || fitted.detect());
    assert_eq!(handle.join().expect("thread").outliers, out.outliers);
}

#[test]
fn n_threads_share_one_model_bit_identically() {
    let pts = scene();
    let queries: Vec<Vec<f64>> = (0..64)
        .map(|i| vec![(i % 8) as f64 * 1.3 - 2.0, (i / 8) as f64 * 1.1 - 1.5])
        .collect();

    // Single-threaded reference run.
    let reference = McCatch::builder()
        .threads(1)
        .build()
        .expect("valid")
        .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
        .expect("fit");
    let ref_out = reference.detect();
    let ref_scores = reference.score_points(&queries);

    // One shared model, hit concurrently from N threads — including the
    // very first (cache-populating) detect call.
    let model: Arc<dyn Model<Vec<f64>>> = McCatch::builder()
        .build()
        .expect("valid")
        .fit(pts, Euclidean, SlimTreeBuilder::default())
        .expect("fit")
        .into_model();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let model = Arc::clone(&model);
            let queries = queries.clone();
            std::thread::spawn(move || (model.detect_output(), model.score_batch(&queries)))
        })
        .collect();
    for w in workers {
        let (out, scores) = w.join().expect("worker");
        assert_eq!(out.outliers, ref_out.outliers);
        assert_eq!(out.point_scores, ref_out.point_scores);
        assert_eq!(out.microclusters, ref_out.microclusters);
        assert_eq!(scores, ref_scores);
    }
}

#[test]
fn store_swap_on_refit_is_atomic_for_readers() {
    let detector = McCatch::builder().build().expect("valid");
    let fit_model = |pts: Vec<Vec<f64>>| -> Arc<dyn Model<Vec<f64>>> {
        detector
            .fit(pts, Euclidean, KdTreeBuilder::default())
            .expect("fit")
            .into_model()
    };
    let store = Arc::new(ModelStore::new(fit_model(scene())));

    let snapshot = store.snapshot();
    let q = vec![vec![70.0, -40.0]]; // the scene's isolate
    let before = snapshot.score_batch(&q);

    // Refit on data where the isolate is now a dense inlier blob member.
    let refit: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![70.0 + (i % 20) as f64 * 0.1, -40.0 + (i / 20) as f64 * 0.1])
        .collect();
    let old = store.swap(fit_model(refit));
    assert_eq!(store.generation(), 1);

    // The pre-swap snapshot still answers from the old fit, bit-identically.
    assert_eq!(snapshot.score_batch(&q), before);
    assert_eq!(old.stats().num_points, scene().len());
    // New snapshots answer from the new fit: the point is an inlier now.
    assert_eq!(store.score_batch(&q), vec![0.0]);
}
