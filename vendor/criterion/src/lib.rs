//! Offline stand-in for the `criterion` benchmarking crate (see
//! `vendor/README.md`): the subset of its API the workspace's benches use.
//!
//! Each benchmark runs a fixed number of timed samples and prints
//! `name  min/mean/max` per benchmark — no statistics, plots, or saved
//! baselines. Passing `--list` lists benchmark names (used by tooling);
//! all other CLI arguments (`--bench`, filters) are accepted and ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let list_only = std::env::args().any(|a| a == "--list");
        Self {
            default_sample_size: 10,
            list_only,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size;
        let list_only = self.list_only;
        run_one(id, samples, list_only, f);
        self
    }
}

/// A named identifier with a parameter, e.g. `kd/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function` / `bench_with_input` id positions.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(&full, samples, self.criterion.list_only, f);
        self
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting only in the real crate; a no-op here).
    pub fn finish(self) {}
}

/// Times the closure handed to `Bencher::iter`.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once for warm-up, then `samples` timed times.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.timings.push(t0.elapsed());
        }
    }
}

fn run_one<F>(name: &str, samples: usize, list_only: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if list_only {
        // Mirrors the real crate's `--list` output shape.
        println!("{name}: benchmark");
        return;
    }
    let mut bencher = Bencher {
        samples,
        timings: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.timings.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let min = bencher.timings.iter().min().expect("nonempty");
    let max = bencher.timings.iter().max().expect("nonempty");
    let mean = bencher.timings.iter().sum::<Duration>() / bencher.timings.len() as u32;
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_ids_run() {
        let mut c = Criterion {
            default_sample_size: 2,
            list_only: false,
        };
        quick(&mut c);
        c.bench_function("top-level", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("kd", 1000).into_id(), "kd/1000");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }
}
