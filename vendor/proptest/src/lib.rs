//! Offline stand-in for the `proptest` crate — generation-only property
//! testing covering the API subset the MCCATCH workspace uses (see
//! `vendor/README.md`).
//!
//! Supported surface: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header and doc comments on cases), the
//! [`strategy::Strategy`] trait with `prop_map`, numeric range and tuple
//! strategies, [`collection::vec`], character-class regex strategies for
//! strings (`"[a-z]{0,12}"`), and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!` macros.
//!
//! **No shrinking**: a failing case panics with its message and the
//! deterministic case number, which together with the fixed seed make the
//! failure reproducible by rerunning the test.

pub mod test_runner {
    //! Test execution: configuration, the case RNG, and the runner.

    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections across the whole test.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition failed; the case is retried.
        Reject,
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    /// Deterministic per-case RNG (xoshiro256++, SplitMix64 seeding).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the RNG.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives a property: runs cases until `config.cases` succeed.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Runs `case` until `config.cases` successes; panics on the first
        /// failure, reporting the case's deterministic seed index.
        pub fn run<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            // FNV-1a over the test path: distinct, deterministic streams
            // per test without any global state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut successes = 0u32;
            let mut rejects = 0u32;
            let mut iteration = 0u64;
            while successes < self.config.cases {
                let mut rng = TestRng::from_seed(h ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                match case(&mut rng) {
                    Ok(()) => successes += 1,
                    Err(TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > self.config.max_global_rejects {
                            panic!(
                                "proptest {name}: too many prop_assume! rejections \
                                 ({rejects}) before reaching {} cases",
                                self.config.cases
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest {name}: case #{iteration} failed: {msg}")
                    }
                }
                iteration += 1;
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128).wrapping_sub(self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let v = (rng.next_u64() as u128 % span as u128) as i128;
                    (self.start as i128 + v) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `&str` strategies: a character-class regex subset. Supported
    /// syntax: literal chars, `[...]` classes with `a-z` ranges, and
    /// `{m}` / `{m,n}` quantifiers — enough for patterns like
    /// `"[a-zéøü]{0,12}"`.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let reps = atom.min as u64 + rng.below((atom.max - atom.min + 1) as u64);
                for _ in 0..reps {
                    let k = rng.below(atom.chars.len() as u64) as usize;
                    out.push(atom.chars[k]);
                }
            }
            out
        }
    }

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = if c == '[' {
                let mut class = Vec::new();
                while let Some(&d) = it.peek() {
                    it.next();
                    if d == ']' {
                        break;
                    }
                    if it.peek() == Some(&'-') {
                        let mut look = it.clone();
                        look.next(); // the '-'
                        match look.peek() {
                            Some(&hi) if hi != ']' => {
                                it.next(); // '-'
                                it.next(); // hi
                                for u in (d as u32)..=(hi as u32) {
                                    if let Some(ch) = char::from_u32(u) {
                                        class.push(ch);
                                    }
                                }
                                continue;
                            }
                            _ => {}
                        }
                    }
                    class.push(d);
                }
                assert!(!class.is_empty(), "empty character class in {pattern:?}");
                class
            } else {
                vec![c]
            };
            let (min, max) = if it.peek() == Some(&'{') {
                it.next();
                let mut spec = String::new();
                for d in it.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier"),
                        hi.trim().parse().expect("quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad quantifier in {pattern:?}");
            atoms.push(Atom { chars, min, max });
        }
        atoms
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s with elements from `element` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
///
/// Accepts an optional `#![proptest_config(expr)]` header, doc comments and
/// attributes per case, and irrefutable patterns on the left of `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    let mut __proptest_case = move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __proptest_case()
                },
            );
        }
    )*};
}

/// Like `assert!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Rejects the current case (it is retried with fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` path alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_respects_class_and_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(5);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-d]{0,6}", &mut rng);
            assert!(s.chars().count() <= 6);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
        }
    }

    #[test]
    fn unicode_classes_work() {
        let mut rng = crate::test_runner::TestRng::from_seed(5);
        let allowed: Vec<char> = ('a'..='z').chain(['é', 'ø', 'ü']).collect();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zéøü]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| allowed.contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and tuple patterns must parse.
        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -5..5i32), f in 0.5..2.0f64) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0u32..100, 2..8).prop_map(|v| v.len())) {
            prop_assert!((2..8).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x = {}", x);
        }
    }
}
