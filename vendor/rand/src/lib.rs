//! Offline stand-in for the `rand` crate — the 0.9-era API subset the
//! MCCATCH workspace uses (see `vendor/README.md`).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! [`Rng::random`] and [`Rng::random_range`]. Everything is deterministic
//! for a fixed seed; the streams differ from the real crate's
//! ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling values and ranges, mirroring `rand 0.9`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64`/`f32` in `[0, 1)`, `bool`
    /// fair coin, integers over their full range).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value within `range`. Panics on empty ranges.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their natural domain.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `random_range` can sample uniformly from a bounded interval.
/// Mirrors the real crate's `SampleUniform`; the single blanket
/// [`SampleRange`] impl over it is load-bearing for type inference (the
/// target type unifies with the range's item type directly).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`). Panics on empty intervals.
    fn sample_interval<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let span = (high as i128) - (low as i128) + (inclusive as i128);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore>(rng: &mut R, low: $t, high: $t, _inclusive: bool) -> $t {
                assert!(low < high, "cannot sample empty range");
                let unit: $t = StandardSample::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value in the range. Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_interval(rng, low, high, true)
    }
}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose RNG: xoshiro256++ with SplitMix64
    /// seed expansion. Not cryptographically secure (neither is it in the
    /// real crate's contract for reproducible-simulation use).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(5..9usize);
            assert!((5..9).contains(&v));
            let w = r.random_range(-1..=1i32);
            assert!((-1..=1).contains(&w));
            let f = r.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(r.random_range(-1..=1i32) + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
