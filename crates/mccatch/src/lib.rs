//! # MCCATCH — scalable microcluster detection
//!
//! The batteries-included facade for the MCCATCH workspace, a faithful
//! Rust reproduction of *"MCCATCH: Scalable Microcluster Detection in
//! Dimensional and Nondimensional Datasets"* (Sánchez Vinces, Cordeiro,
//! Faloutsos — ICDE 2024).
//!
//! MCCATCH detects and ranks **microclusters of outliers** — both 'one-off'
//! singletons and small groups of mutually close anomalies — in any
//! dataset that has a distance function: vectors, strings, trees, or your
//! own metric type. It is deterministic, needs no hyperparameter tuning,
//! and its scores obey the paper's Isolation and Cardinality axioms.
//!
//! ## The staged API: fit once, detect many
//!
//! [`McCatch::builder`] validates configuration up front (errors are
//! [`McCatchError`] values — nothing panics), [`McCatch::fit`] builds the
//! metric tree, diameter estimate, and radius grid exactly once, and the
//! resulting [`Fitted`] handle answers any number of requests:
//! [`Fitted::detect`] runs the full pipeline, [`Fitted::score_points`]
//! ranks *new* points against the fitted reference set (the serving
//! path), and [`Fitted::oracle`] / [`Fitted::cutoff`] expose the
//! intermediate artifacts for observability.
//!
//! The handle **owns** its data (`Arc<[P]>`), metric, and index builder:
//! it has no borrowed lifetime, so it can be returned from the function
//! that loaded the data, stored in a service struct, and shared across
//! threads (`Send + Sync + 'static`).
//!
//! ```
//! use mccatch::index::KdTreeBuilder;
//! use mccatch::metrics::Euclidean;
//! use mccatch::McCatch;
//!
//! let mut points: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
//!     .collect();
//! points.push(vec![30.0, 30.0]); // a 2-point microcluster …
//! points.push(vec![30.1, 30.0]);
//! points.push(vec![-25.0, 10.0]); // … and a one-off outlier
//!
//! let detector = McCatch::builder().build()?;
//! let fitted = detector.fit(points, Euclidean, KdTreeBuilder::default())?;
//!
//! let out = fitted.detect();
//! assert_eq!(out.num_outliers(), 3);
//! assert_eq!(out.cluster_of(200).unwrap().cardinality(), 2);
//!
//! // Serve: score held-out points against the same fit — no re-indexing.
//! let scores = fitted.score_points(&[vec![0.55, 0.45], vec![40.0, -40.0]]);
//! assert!(scores[1] > scores[0]);
//! # Ok::<(), mccatch::McCatchError>(())
//! ```
//!
//! ## Serving: type-erased models and swap-on-refit
//!
//! [`Fitted::into_model`] erases the metric and index types behind the
//! object-safe [`Model`] trait, and [`serve::ModelStore`] holds the
//! erased handle behind an atomic snapshot/swap cell — the pattern for a
//! long-running service that refits periodically while readers keep
//! scoring:
//!
//! ```
//! use mccatch::index::KdTreeBuilder;
//! use mccatch::metrics::Euclidean;
//! use mccatch::serve::ModelStore;
//! use mccatch::{McCatch, Model};
//! use std::sync::Arc;
//!
//! let detector = McCatch::builder().build()?;
//! let points: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
//!     .collect();
//! let model: Arc<dyn Model<Vec<f64>>> = detector
//!     .fit(points, Euclidean, KdTreeBuilder::default())?
//!     .into_model();
//! let store = Arc::new(ModelStore::new(model));
//!
//! // Any number of worker threads share the store…
//! let worker = {
//!     let store = Arc::clone(&store);
//!     std::thread::spawn(move || store.score_batch(&[vec![900.0, 900.0]]))
//! };
//! assert!(worker.join().unwrap()[0] > 0.0);
//!
//! // …and a refit job swaps in fresh fits without blocking them.
//! let fresh: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64, (i / 10) as f64 + 1.0])
//!     .collect();
//! store.swap(
//!     detector
//!         .fit(fresh, Euclidean, KdTreeBuilder::default())?
//!         .into_model(),
//! );
//! assert_eq!(store.generation(), 1);
//! # Ok::<(), mccatch::McCatchError>(())
//! ```
//!
//! ## Nondimensional data: bring a metric
//!
//! ```
//! use mccatch::index::SlimTreeBuilder;
//! use mccatch::metrics::Levenshtein;
//! use mccatch::McCatch;
//!
//! let mut words: Vec<String> = ["smith", "smyth", "smithe", "smit", "smiths",
//!     "smythe", "psmith", "smitt", "asmith", "smity"]
//!     .iter().map(|s| s.to_string()).collect();
//! words.push("xylophonist".into());
//!
//! let fitted = McCatch::builder()
//!     .build()?
//!     .fit(words, Levenshtein, SlimTreeBuilder::default())?;
//! assert!(fitted.detect().is_outlier(10));
//! # Ok::<(), mccatch::McCatchError>(())
//! ```
//!
//! ## Invalid configuration is a value, not a panic
//!
//! ```
//! use mccatch::{McCatch, McCatchError};
//!
//! let err = McCatch::builder().num_radii(1).build().unwrap_err();
//! assert_eq!(err, McCatchError::InvalidNumRadii { got: 1 });
//! ```
//!
//! ## Legacy one-shot shims: removed in 0.4.0
//!
//! The original free functions — `detect_vectors`, `detect_metric`, and
//! the root `mccatch()` — were deprecated in 0.2.0 and **removed in
//! 0.4.0**, as announced in the README's deprecation timeline. One-shot
//! callers holding a `&[P]` use the borrowed-slice [`McCatch::fit_ref`]
//! convenience, which is not deprecated and stays:
//!
//! ```
//! use mccatch::index::KdTreeBuilder;
//! use mccatch::metrics::Euclidean;
//! use mccatch::McCatch;
//!
//! let points = vec![vec![0.0], vec![1.0], vec![50.0]];
//! let out = McCatch::builder()
//!     .build()?
//!     .fit_ref(&points, &Euclidean, &KdTreeBuilder::default())?
//!     .detect();
//! assert_eq!(out.point_scores.len(), 3);
//! # Ok::<(), mccatch::McCatchError>(())
//! ```
//!
//! The re-exported sub-crates offer full control: [`core`] (the algorithm
//! and its intermediate artifacts), [`index`] (Slim-tree / kd-tree /
//! brute force), [`metrics`] (distances), [`data`] (paper-analogue dataset
//! generators), [`eval`] (AUROC & friends), and [`baselines`] (the 11
//! competitors from the paper's evaluation).

/// Serving utilities: the atomic snapshot/swap [`serve::ModelStore`].
/// Lives in `mccatch-core` (so the streaming crate can build on it);
/// re-exported here under its long-standing `mccatch::serve` path.
pub use mccatch_core::serve;

/// The streaming subsystem: [`stream::StreamDetector`] maintains a
/// sliding window over recent events, scores each arriving event
/// immediately against the current model snapshot, and refits in the
/// background (every-N, drift-triggered, or on explicit request),
/// swapping models atomically via [`serve::ModelStore`].
pub use mccatch_stream as stream;

/// The HTTP serving tier: [`server::serve`] fronts a shared
/// [`stream::StreamDetector`] with a std-only multithreaded HTTP/1.1
/// service — `POST /score` (batch scoring against one tagged model
/// snapshot), `POST /ingest` (streamed events with per-event scores),
/// `POST /admin/refit`, `GET /healthz`, and a Prometheus
/// `GET /metrics` — with bounded-queue backpressure (`503` +
/// `Retry-After`) and graceful shutdown. The CLI wraps it as
/// `mccatch --serve ADDR`.
pub use mccatch_server as server;

/// Multi-tenant serving: [`tenant::TenantMap`] is a concurrent registry
/// of named tenants, each owning an isolated set of shards — per-shard
/// [`stream::StreamDetector`]s fed through a hash router
/// ([`tenant::ShardRouter`]) with bounded per-shard admission queues, so
/// one hot tenant can never starve the rest. A tenant fits its shards in
/// parallel and serves the ensemble (a query's score is the min across
/// shard models; one shard is bit-identical to a plain detector). The
/// HTTP tier mounts a map with [`server::serve_tenants`]
/// (`/t/{tenant}/…` routing plus the `/admin/tenants` lifecycle); the
/// CLI wraps it as `--serve ADDR --tenants N --shards K`.
pub use mccatch_tenant as tenant;

/// Observability: the lock-free log₂-bucketed latency
/// [`obs::Histogram`] (mergeable, Prometheus exposition via
/// [`obs::render_histogram`]), cheap stage spans ([`obs::Span`] and the
/// process-global [`obs::record_stage`] recorder, surfaced as the
/// `mccatch_stage_duration_seconds` family on `/metrics`), and the
/// structured NDJSON [`obs::Logger`] + bounded slow-request
/// [`obs::Ring`] behind the server's access log and
/// `GET /admin/debug/slow`.
pub use mccatch_obs as obs;

/// Persistence: versioned model snapshots ([`persist::save_model`] /
/// [`persist::load_model`], verified bit-identical on load), one-call
/// warm restart for the serving store and the streaming detector
/// ([`persist::restore_stream`]), and the NDJSON ingest replay log
/// ([`persist::ReplayWriter`] / [`persist::ReplayReader`]) that rebuilds
/// the exact sliding window after a crash. The CLI wraps it as
/// `--save-model` / `--load-model` / `--replay-log`, the HTTP tier as
/// `POST /admin/snapshot`.
pub use mccatch_persist as persist;

/// Compiles and runs the code snippets in the repo-level
/// `ARCHITECTURE.md` as doctests, so the architecture documentation
/// cannot silently rot. Not part of the public API.
#[doc = include_str!("../../../ARCHITECTURE.md")]
#[cfg(doctest)]
pub struct ArchitectureDoctests;

/// Compiles and runs the code snippets in the repo-level `README.md` as
/// doctests — the README's quickstarts must keep building against the
/// real API. Not part of the public API.
#[doc = include_str!("../../../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use mccatch_core::{
    Cutoff, Fitted, McCatch, McCatchBuilder, McCatchError, McCatchOutput, Microcluster, Model,
    ModelStats, OraclePlot, OraclePoint, Params, RunStats,
};

/// The underlying algorithm crate (plateaus, cutoff, gelling, scoring).
pub use mccatch_core as core;

/// Metric access methods: Slim-tree, kd-tree, brute force.
pub use mccatch_index as index;

/// Distance functions and the `Metric` trait.
pub use mccatch_metric as metrics;

/// Dataset generators mirroring the paper's evaluation data.
pub use mccatch_data as data;

/// Evaluation metrics and statistics.
pub use mccatch_eval as eval;

/// The 11 competitor detectors.
pub use mccatch_baselines as baselines;

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::KdTreeBuilder;
    use mccatch_metric::Euclidean;

    fn grid_plus_isolate() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        pts.push(vec![500.0, 500.0]);
        pts
    }

    #[test]
    fn fit_ref_covers_the_one_shot_lifecycle() {
        // The 0.4.0-removed free-function shims pointed their callers
        // here: borrowed slice in, one-shot detection out.
        let pts = grid_plus_isolate();
        let out = McCatch::builder()
            .build()
            .unwrap()
            .fit_ref(&pts, &Euclidean, &KdTreeBuilder::default())
            .unwrap()
            .detect();
        assert!(out.is_outlier(100));
    }

    #[test]
    fn every_subsystem_is_reachable_through_the_facade() {
        // The facade's whole job: one crate, every path. `serve`,
        // `stream`, and `server` must stay importable under their
        // long-standing names.
        let model = McCatch::builder()
            .build()
            .unwrap()
            .fit(grid_plus_isolate(), Euclidean, KdTreeBuilder::default())
            .unwrap()
            .into_model();
        let store = serve::ModelStore::new(model);
        assert_eq!(store.generation(), 0);
        assert!(stream::StreamConfig::default().validate().is_ok());
        assert!(server::ServerConfig::default().validate().is_ok());
    }
}
