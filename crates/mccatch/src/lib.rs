//! # MCCATCH — scalable microcluster detection
//!
//! The batteries-included facade for the MCCATCH workspace, a faithful
//! Rust reproduction of *"MCCATCH: Scalable Microcluster Detection in
//! Dimensional and Nondimensional Datasets"* (Sánchez Vinces, Cordeiro,
//! Faloutsos — ICDE 2024).
//!
//! MCCATCH detects and ranks **microclusters of outliers** — both 'one-off'
//! singletons and small groups of mutually close anomalies — in any
//! dataset that has a distance function: vectors, strings, trees, or your
//! own metric type. It is deterministic, needs no hyperparameter tuning,
//! and its scores obey the paper's Isolation and Cardinality axioms.
//!
//! ## Vector data in one call
//!
//! ```
//! let mut points: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
//!     .collect();
//! points.push(vec![30.0, 30.0]); // a 2-point microcluster …
//! points.push(vec![30.1, 30.0]);
//! points.push(vec![-25.0, 10.0]); // … and a one-off outlier
//!
//! let out = mccatch::detect_vectors(&points, &mccatch::Params::default());
//! assert_eq!(out.num_outliers(), 3);
//! assert_eq!(out.cluster_of(200).unwrap().cardinality(), 2);
//! ```
//!
//! ## Nondimensional data: bring a metric
//!
//! ```
//! use mccatch::metrics::Levenshtein;
//!
//! let mut words: Vec<String> = ["smith", "smyth", "smithe", "smit", "smiths",
//!     "smythe", "psmith", "smitt", "asmith", "smity"]
//!     .iter().map(|s| s.to_string()).collect();
//! words.push("xylophonist".into());
//!
//! let out = mccatch::detect_metric(&words, &Levenshtein, &mccatch::Params::default());
//! assert!(out.is_outlier(10));
//! ```
//!
//! The re-exported sub-crates offer full control: [`core`] (the algorithm
//! and its intermediate artifacts), [`index`] (Slim-tree / kd-tree /
//! brute force), [`metrics`] (distances), [`data`] (paper-analogue dataset
//! generators), [`eval`] (AUROC & friends), and [`baselines`] (the 11
//! competitors from the paper's evaluation).

pub use mccatch_core::{
    mccatch, Cutoff, McCatchOutput, Microcluster, OraclePlot, OraclePoint, Params, RunStats,
};

/// The underlying algorithm crate (plateaus, cutoff, gelling, scoring).
pub use mccatch_core as core;

/// Metric access methods: Slim-tree, kd-tree, brute force.
pub use mccatch_index as index;

/// Distance functions and the `Metric` trait.
pub use mccatch_metric as metrics;

/// Dataset generators mirroring the paper's evaluation data.
pub use mccatch_data as data;

/// Evaluation metrics and statistics.
pub use mccatch_eval as eval;

/// The 11 competitor detectors.
pub use mccatch_baselines as baselines;

use mccatch_index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch_metric::{Euclidean, Metric};

/// Runs MCCATCH on dense vector data with the Euclidean metric and a
/// kd-tree index — the fast path for dimensional datasets (paper
/// footnote 4: "kd-trees for main-memory-based vector data").
pub fn detect_vectors(points: &[Vec<f64>], params: &Params) -> McCatchOutput {
    mccatch_core::mccatch(points, &Euclidean, &KdTreeBuilder::default(), params)
}

/// Runs MCCATCH on arbitrary metric data with a Slim-tree index — the
/// general path that handles nondimensional datasets (strings, trees,
/// custom types).
pub fn detect_metric<P, M>(points: &[P], metric: &M, params: &Params) -> McCatchOutput
where
    P: Sync,
    M: Metric<P>,
{
    mccatch_core::mccatch(points, metric, &SlimTreeBuilder::default(), params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_vectors_smoke() {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        pts.push(vec![500.0, 500.0]);
        let out = detect_vectors(&pts, &Params::default());
        assert!(out.is_outlier(100));
    }

    #[test]
    fn detect_metric_smoke() {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        pts.push(vec![500.0, 500.0]);
        let out = detect_metric(&pts, &Euclidean, &Params::default());
        assert!(out.is_outlier(100));
    }
}
