//! Property tests for the sparse-focused counting table: it must agree
//! with a naive recount wherever it stores exact values, satisfy the
//! paper's structural invariants (prefix-exactness, monotonicity, the
//! forced last column), and be insensitive to the index implementation.

use mccatch_core::counts::{count_neighbors, count_neighbors_per_radius, OVER};
use mccatch_core::params::RadiusGrid;
use mccatch_index::{
    BruteForce, IndexBuilder, KdTreeBuilder, RangeIndex, SlimTreeBuilder, VpTreeBuilder,
};
use mccatch_metric::{Euclidean, Metric};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-40.0..40.0f64, 2), 3..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_cells_match_naive_counts(pts in dataset(), c_frac in 0.05..0.9f64) {
        let brute = BruteForce::new(pts.clone(), (0..pts.len() as u32).collect(), Euclidean);
        let grid = RadiusGrid::new(brute.diameter_estimate(), 8);
        prop_assume!(!grid.is_degenerate());
        let c = ((pts.len() as f64 * c_frac).ceil() as usize).max(1);
        let table = count_neighbors(&brute, &pts, grid.radii(), c, 1);
        for i in 0..pts.len() {
            let row = table.row(i);
            for (k, &q) in row.iter().enumerate() {
                if q == OVER {
                    continue;
                }
                if k == grid.len() - 1 && q as usize == pts.len() {
                    continue; // forced q_a = n (never joined)
                }
                let naive = pts
                    .iter()
                    .filter(|p| Euclidean.distance(*p, &pts[i]) <= grid.radii()[k])
                    .count();
                prop_assert_eq!(q as usize, naive, "point {} radius {}", i, k);
            }
        }
    }

    #[test]
    fn rows_are_exact_prefix_then_over(pts in dataset()) {
        let brute = BruteForce::new(pts.clone(), (0..pts.len() as u32).collect(), Euclidean);
        let grid = RadiusGrid::new(brute.diameter_estimate(), 8);
        prop_assume!(!grid.is_degenerate());
        let c = (pts.len() / 5).max(1);
        let table = count_neighbors(&brute, &pts, grid.radii(), c, 1);
        for i in 0..pts.len() {
            let row = table.row(i);
            // Once OVER appears, it persists (except the structure of the
            // row never "recovers" to an exact value).
            let first_over = row.iter().position(|&q| q == OVER);
            if let Some(k0) = first_over {
                prop_assert!(row[k0..].iter().all(|&q| q == OVER));
                prop_assert!(k0 >= 1, "first radius is always counted");
                // The crossing value (last exact) must exceed c.
                prop_assert!(row[k0 - 1] as usize > c);
            }
            // Exact prefix is non-decreasing and starts >= 1 (self).
            let mut prev = 0;
            for &q in row.iter().take_while(|&&q| q != OVER) {
                prop_assert!(q >= 1);
                prop_assert!(q >= prev);
                prev = q;
            }
        }
    }

    #[test]
    fn single_traversal_table_is_bit_identical_to_per_radius(pts in dataset(), c_frac in 0.02..0.9f64, threads in 1usize..6) {
        // The correctness contract of the multi-radius rewrite: the new
        // single-traversal `count_neighbors` must reproduce the historical
        // per-radius CountTable bit for bit — counts, OVER cells, forced
        // last column, and the active-set diagnostics — on every backend
        // and regardless of thread count.
        let n = pts.len() as u32;
        let c = ((pts.len() as f64 * c_frac).ceil() as usize).max(1);
        let brute = BruteForce::new(pts.clone(), (0..n).collect(), Euclidean);
        let grid = RadiusGrid::new(brute.diameter_estimate(), 8);
        prop_assume!(!grid.is_degenerate());
        let slim = SlimTreeBuilder::default().build_all_ref(&pts, &Euclidean);
        let vp = VpTreeBuilder::default().build_all_ref(&pts, &Euclidean);
        let kd = KdTreeBuilder::default().build_all_ref(&pts, &Euclidean);
        let reference = count_neighbors_per_radius(&brute, &pts, grid.radii(), c, 1);
        for (name, new) in [
            ("brute", count_neighbors(&brute, &pts, grid.radii(), c, threads)),
            ("slim", count_neighbors(&slim, &pts, grid.radii(), c, threads)),
            ("vp", count_neighbors(&vp, &pts, grid.radii(), c, threads)),
            ("kd", count_neighbors(&kd, &pts, grid.radii(), c, threads)),
        ] {
            prop_assert_eq!(new.active_per_radius.as_slice(), reference.active_per_radius.as_slice(), "{} active sets", name);
            for i in 0..pts.len() {
                prop_assert_eq!(new.row(i), reference.row(i), "{} row {}", name, i);
            }
        }
    }

    #[test]
    fn index_implementation_is_irrelevant(pts in dataset()) {
        let n = pts.len() as u32;
        let c = (pts.len() / 4).max(1);
        let brute = BruteForce::new(pts.clone(), (0..n).collect(), Euclidean);
        let grid = RadiusGrid::new(brute.diameter_estimate(), 8);
        prop_assume!(!grid.is_degenerate());
        let slim = SlimTreeBuilder::default().build_all_ref(&pts, &Euclidean);
        let vp = VpTreeBuilder::default().build_all_ref(&pts, &Euclidean);
        let a = count_neighbors(&brute, &pts, grid.radii(), c, 1);
        let b = count_neighbors(&slim, &pts, grid.radii(), c, 1);
        let d = count_neighbors(&vp, &pts, grid.radii(), c, 1);
        for i in 0..pts.len() {
            prop_assert_eq!(a.row(i), b.row(i), "slim row {} differs", i);
            prop_assert_eq!(a.row(i), d.row(i), "vp row {} differs", i);
        }
    }
}
