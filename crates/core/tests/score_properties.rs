//! Property tests for the Def. 7 score: the Isolation and Cardinality
//! axioms must hold for *every* parameter combination, not just the Fig. 2
//! scenarios — plus basic sanity (finiteness, positivity, monotonicity in
//! the transformation cost).

use mccatch_core::def7_score;
use proptest::prelude::*;

fn params() -> impl Strategy<Value = (usize, usize, f64, f64, f64, f64)> {
    (
        1usize..500,         // cardinality m
        500usize..2_000_000, // dataset size n
        0.1..1e6f64,         // bridge length
        0.0..1e3f64,         // mean 1NN distance
        1e-6..10.0f64,       // r1
        1.0..500.0f64,       // transformation cost t
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Isolation axiom: all else equal, a strictly larger bridge (by at
    /// least one code step — the score quantizes through ⟨⌈·⌉⟩, so bridges
    /// within the same integer bin tie) never yields a smaller score.
    #[test]
    fn isolation_axiom_monotone((m, n, bridge, mean_x, r1, t) in params(), factor in 1.5..64.0f64) {
        let near = def7_score(m, n, bridge, mean_x, r1, t);
        let far = def7_score(m, n, bridge * factor, mean_x, r1, t);
        prop_assert!(far >= near, "far {far} < near {near}");
        // And with a factor that moves at least one whole integer step of
        // bridge/r1, strictly greater.
        if (bridge * factor / r1).ceil() > (bridge / r1).ceil() {
            prop_assert!(far > near);
        }
    }

    /// Cardinality axiom: all else equal, fewer members yields a larger
    /// score — *in the microcluster regime* `mean_x ≤ bridge`. That
    /// precondition is implicit in Def. 7's description scheme (members
    /// are described via in-cluster neighbors, which are closer than the
    /// nearest inlier) and is guaranteed by the pipeline: a middle plateau
    /// only exists when the group is internally tighter than its
    /// surroundings. Outside that regime (internal spacing wider than the
    /// bridge) the per-member term ④ dominates and the monotonicity
    /// genuinely reverses — exercised and excluded here on purpose.
    #[test]
    fn cardinality_axiom_monotone((m, n, bridge, mean_x, r1, t) in params()) {
        prop_assume!(m >= 10);
        prop_assume!(mean_x <= bridge);
        let small = def7_score(m / 10 + 1, n, bridge, mean_x, r1, t);
        let large = def7_score(m * 10, n, bridge, mean_x, r1, t);
        prop_assert!(small > large, "small {small} <= large {large}");
    }

    /// The reverse direction, pinned: with internal spacing far wider than
    /// the bridge (not a microcluster), Def. 7's per-member cost dominates
    /// and the larger group scores higher — documenting why the axiom
    /// needs the microcluster regime.
    #[test]
    fn cardinality_axiom_boundary_outside_regime(_x in 0..1i32) {
        let (n, bridge, mean_x, r1, t) = (500, 0.1, 1000.0, 1e-6, 245.0);
        let small = def7_score(2, n, bridge, mean_x, r1, t);
        let large = def7_score(100, n, bridge, mean_x, r1, t);
        prop_assert!(large > small);
    }

    /// Scores are finite, positive, and scale-invariant: multiplying all
    /// distances (bridge, mean 1NN, r1) by the same factor leaves the
    /// score unchanged — matching the pipeline's scale invariance.
    #[test]
    fn score_sanity_and_scale_invariance((m, n, bridge, mean_x, r1, t) in params(), s in 0.001..1000.0f64) {
        let a = def7_score(m, n, bridge, mean_x, r1, t);
        prop_assert!(a.is_finite());
        prop_assert!(a > 0.0);
        let b = def7_score(m, n, bridge * s, mean_x * s, r1 * s, t);
        // Ceilings of ratios are identical up to float rounding at the
        // integer boundary; allow one code step of slack.
        prop_assert!((a - b).abs() <= 2.0 * t / m as f64 + 1e-9, "a {a} b {b}");
    }

    /// A larger transformation cost amplifies the distance terms but never
    /// flips rankings between two clusters differing only in bridge.
    #[test]
    fn transformation_cost_preserves_order((m, n, bridge, mean_x, r1, _) in params(), t1 in 1.0..100.0f64, t2 in 1.0..100.0f64) {
        let far_bridge = bridge * 16.0;
        prop_assume!((far_bridge / r1).ceil() > (bridge / r1).ceil());
        let near1 = def7_score(m, n, bridge, mean_x, r1, t1);
        let far1 = def7_score(m, n, far_bridge, mean_x, r1, t1);
        let near2 = def7_score(m, n, bridge, mean_x, r1, t2);
        let far2 = def7_score(m, n, far_bridge, mean_x, r1, t2);
        prop_assert!(far1 >= near1);
        prop_assert!(far2 >= near2);
    }
}
