//! Property-based tests of the full MCCATCH pipeline.
//!
//! MCCATCH only consumes distances, so its *decisions* must be invariant
//! under similarity transforms of the input (uniform scaling, translation,
//! rotation of vector data), must be deterministic, and must produce a
//! well-formed partition of the outlier set regardless of input geometry.

use mccatch_core::{McCatch, McCatchOutput, Params};
use mccatch_index::{BruteForceBuilder, IndexBuilder, KdTreeBuilder};
use mccatch_metric::Euclidean;
use proptest::prelude::*;

/// The staged API, one-shot: the property suite runs through the same
/// builder/fit/detect path the production callers use.
fn run<B: IndexBuilder<Vec<f64>, Euclidean> + Clone>(
    pts: &[Vec<f64>],
    builder: &B,
    params: &Params,
) -> McCatchOutput {
    McCatch::new(params.clone())
        .expect("valid params")
        .fit_ref(pts, &Euclidean, builder)
        .expect("fit")
        .detect()
}

/// Random small dataset: a few dense blobs plus a few free points, so
/// interesting structure appears with high probability.
fn dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 2..5),
        prop::collection::vec((-200.0..200.0f64, -200.0..200.0f64), 0..6),
        20usize..60,
    )
        .prop_map(|(centers, frees, per_blob)| {
            let mut pts = Vec::new();
            for (k, &(cx, cy)) in centers.iter().enumerate() {
                for i in 0..per_blob {
                    // Deterministic quasi-random offsets within the blob.
                    let a = (i * 37 + k * 101) % 17;
                    let b = (i * 61 + k * 13) % 19;
                    pts.push(vec![
                        cx + a as f64 * 0.11 - 0.9,
                        cy + b as f64 * 0.09 - 0.85,
                    ]);
                }
            }
            for &(x, y) in &frees {
                pts.push(vec![x, y]);
            }
            pts
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn deterministic_across_runs(pts in dataset()) {
        let p = Params::default();
        let a = run(&pts, &BruteForceBuilder, &p);
        let b = run(&pts, &BruteForceBuilder, &p);
        prop_assert_eq!(a.outliers, b.outliers);
        prop_assert_eq!(a.point_scores, b.point_scores);
    }

    #[test]
    fn scale_invariant_decisions(pts in dataset(), scale in 0.01..100.0f64) {
        let p = Params::default();
        let a = run(&pts, &BruteForceBuilder, &p);
        let scaled: Vec<Vec<f64>> = pts
            .iter()
            .map(|q| q.iter().map(|x| x * scale).collect())
            .collect();
        let b = run(&scaled, &BruteForceBuilder, &p);
        // The radius grid scales with the diameter, so every decision —
        // histogram bins, cutoff index, outlier flags — is scale-free.
        prop_assert_eq!(&a.outliers, &b.outliers);
        prop_assert_eq!(a.cutoff.cut_index, b.cutoff.cut_index);
    }

    #[test]
    fn translation_invariant_decisions(pts in dataset(), dx in -1e4..1e4f64, dy in -1e4..1e4f64) {
        let p = Params::default();
        let a = run(&pts, &BruteForceBuilder, &p);
        let moved: Vec<Vec<f64>> = pts
            .iter()
            .map(|q| vec![q[0] + dx, q[1] + dy])
            .collect();
        let b = run(&moved, &BruteForceBuilder, &p);
        prop_assert_eq!(&a.outliers, &b.outliers);
    }

    #[test]
    fn microclusters_partition_the_outlier_set(pts in dataset()) {
        let out = run(&pts, &BruteForceBuilder, &Params::default());
        let mut seen = std::collections::BTreeSet::new();
        for mc in &out.microclusters {
            prop_assert!(!mc.members.is_empty());
            prop_assert!(mc.score.is_finite());
            for &m in &mc.members {
                prop_assert!(seen.insert(m), "duplicate member {m}");
            }
        }
        let union: Vec<u32> = seen.into_iter().collect();
        prop_assert_eq!(union, out.outliers.clone());
        // Scores sorted most-strange-first.
        for w in out.microclusters.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn point_scores_finite_and_nonnegative(pts in dataset()) {
        let out = run(&pts, &BruteForceBuilder, &Params::default());
        prop_assert_eq!(out.point_scores.len(), pts.len());
        for &s in &out.point_scores {
            prop_assert!(s.is_finite() && s >= 0.0);
        }
    }

    #[test]
    fn index_choice_does_not_change_flags(pts in dataset()) {
        // Brute force and kd-tree share the exact diameter on axis-aligned
        // extremes only; allow the radius grid to differ slightly but the
        // outlier decisions must agree when both use the same diameter
        // source. Use kd-tree vs brute on the same data: diameters may
        // differ (bbox diagonal vs true max pairwise), so compare kd at
        // both settings only when the diameters agree.
        let p = Params::default();
        let kd = run(&pts, &KdTreeBuilder::default(), &p);
        let brute = run(&pts, &BruteForceBuilder, &p);
        if (kd.diameter - brute.diameter).abs() <= 1e-9 * brute.diameter.max(1.0) {
            prop_assert_eq!(kd.outliers, brute.outliers);
        }
    }

    #[test]
    fn far_singleton_gets_the_top_point_score(pts in dataset()) {
        // Plant a point 100x the current diameter away: it must receive the
        // highest point score. (It is *usually* also flagged, but Def. 6's
        // MDL cut can absorb a lone extreme bin into the inlier partition
        // when the rest of the histogram tail is empty — a documented edge
        // case of the paper's cutoff; the ranking is unaffected.)
        let brute = run(&pts, &BruteForceBuilder, &Params::default());
        prop_assume!(brute.diameter > 1.0);
        let mut with_far = pts.clone();
        let far = vec![brute.diameter * 100.0, brute.diameter * 100.0];
        with_far.push(far);
        let out = run(&with_far, &BruteForceBuilder, &Params::default());
        let far_id = (with_far.len() - 1) as u32;
        let far_score = out.point_scores[far_id as usize];
        let max_other = out.point_scores[..pts.len()]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        prop_assert!(far_score >= max_other);
        // If a cut exists at all and flags anyone, the far point is among
        // the flagged.
        if out.num_outliers() > 0 {
            prop_assert!(out.is_outlier(far_id));
        }
    }
}
