//! One-shot configure-fit-detect scenarios, formerly the test suite of
//! the (removed in 0.4.0) `pipeline::mccatch` free-function shim. The
//! scenarios — edge cases and cross-backend agreement on the Fig. 3 toy
//! scene — outlived the shim; they now drive the staged API the way the
//! shim used to drive it, via the borrowed-slice `fit_ref` convenience.

use mccatch_core::{McCatch, McCatchOutput, Params};
use mccatch_index::{BruteForceBuilder, IndexBuilder, KdTreeBuilder, SlimTreeBuilder};
use mccatch_metric::{Euclidean, Levenshtein, Metric};

/// One-shot detection: configure + fit + detect, the lifecycle the
/// legacy shim packaged.
fn one_shot<P, M, B>(points: &[P], metric: &M, builder: &B, params: &Params) -> McCatchOutput
where
    P: Send + Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M> + Clone,
{
    McCatch::new(params.clone())
        .expect("valid params")
        .fit_ref(points, metric, builder)
        .expect("fit")
        .detect()
}

/// Fig. 3-style toy scenario in 2-d: a dense inlier blob ('A' points),
/// a halo point 'B', an 8-point microcluster ('C' core, 'D' halo) and a
/// far isolate 'E'.
fn fig3_points() -> (Vec<Vec<f64>>, Vec<u32>, u32, u32) {
    let mut pts = Vec::new();
    // Blob: 20x10 grid with 0.1 spacing, 200 points around origin.
    for i in 0..20 {
        for j in 0..10 {
            pts.push(vec![i as f64 * 0.1, j as f64 * 0.1]);
        }
    }
    // Halo point 'B' a bit off the blob.
    let b = pts.len() as u32;
    pts.push(vec![4.0, 2.0]);
    // Microcluster: 8 points near (30, 30), spacing 0.08.
    let mc_start = pts.len() as u32;
    for k in 0..8 {
        pts.push(vec![
            30.0 + 0.08 * (k % 4) as f64,
            30.0 + 0.08 * (k / 4) as f64,
        ]);
    }
    let mc: Vec<u32> = (mc_start..mc_start + 8).collect();
    // Halo of the microcluster 'D'.
    pts.push(vec![31.3, 30.0]);
    // Isolate 'E'.
    let e = pts.len() as u32;
    pts.push(vec![70.0, -40.0]);
    (pts, mc, b, e)
}

#[test]
fn toy_scenario_end_to_end() {
    let (pts, mc, b, e) = fig3_points();
    let out = one_shot(
        &pts,
        &Euclidean,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    assert!(out.cutoff.d.is_finite());
    // The isolate and the halo point must be flagged.
    assert!(out.is_outlier(e), "isolate missed");
    assert!(out.is_outlier(b), "halo missed");
    // The microcluster members must be flagged and gelled together.
    for &i in &mc {
        assert!(out.is_outlier(i), "mc member {i} missed");
    }
    let cluster = out.cluster_of(mc[0]).expect("mc found");
    assert!(cluster.cardinality() >= 8, "mc fragmented: {:?}", cluster);
    // No blob point may be flagged.
    assert!(out.outliers.iter().all(|&i| i >= 200), "{:?}", out.outliers);
}

#[test]
fn ranking_is_most_strange_first() {
    let (pts, ..) = fig3_points();
    let out = one_shot(
        &pts,
        &Euclidean,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    for w in out.microclusters.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}

#[test]
fn outlier_points_score_higher_than_inliers() {
    let (pts, mc, _, e) = fig3_points();
    let out = one_shot(
        &pts,
        &Euclidean,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    let max_inlier = (0..200u32)
        .map(|i| out.point_scores[i as usize])
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(out.point_scores[e as usize] > max_inlier);
    assert!(out.point_scores[mc[0] as usize] > max_inlier);
}

#[test]
fn kd_and_slim_and_brute_agree_on_flags() {
    let (pts, ..) = fig3_points();
    let p = Params::default();
    let slim = one_shot(&pts, &Euclidean, &SlimTreeBuilder::default(), &p);
    let brute = one_shot(&pts, &Euclidean, &BruteForceBuilder, &p);
    let kd = one_shot(&pts, &Euclidean, &KdTreeBuilder::default(), &p);
    // Brute and kd share the exact diameter (kd's bbox diagonal equals
    // the exact diameter only for axis-extremal pairs), so compare
    // outlier decisions rather than bit-identical internals.
    assert_eq!(brute.outliers, kd.outliers);
    // The slim-tree's diameter estimate differs slightly; decisions on
    // this widely separated toy dataset must nonetheless agree.
    assert_eq!(brute.outliers, slim.outliers);
}

#[test]
fn deterministic_across_runs_and_threads() {
    let (pts, ..) = fig3_points();
    let p1 = Params {
        threads: 1,
        ..Params::default()
    };
    let p8 = Params {
        threads: 8,
        ..Params::default()
    };
    let a = one_shot(&pts, &Euclidean, &SlimTreeBuilder::default(), &p1);
    let b = one_shot(&pts, &Euclidean, &SlimTreeBuilder::default(), &p8);
    assert_eq!(a.outliers, b.outliers);
    assert_eq!(a.point_scores, b.point_scores);
    let scores_a: Vec<f64> = a.microclusters.iter().map(|m| m.score).collect();
    let scores_b: Vec<f64> = b.microclusters.iter().map(|m| m.score).collect();
    assert_eq!(scores_a, scores_b);
}

#[test]
fn empty_dataset() {
    let pts: Vec<Vec<f64>> = vec![];
    let out = one_shot(
        &pts,
        &Euclidean,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    assert!(out.microclusters.is_empty());
    assert!(out.point_scores.is_empty());
    assert_eq!(out.num_outliers(), 0);
}

#[test]
fn single_point_dataset() {
    let pts = vec![vec![1.0, 2.0]];
    let out = one_shot(
        &pts,
        &Euclidean,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    assert!(out.microclusters.is_empty());
    assert_eq!(out.point_scores, vec![0.0]);
}

#[test]
fn identical_points_dataset() {
    let pts = vec![vec![5.0, 5.0]; 50];
    let out = one_shot(
        &pts,
        &Euclidean,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    assert!(out.microclusters.is_empty());
    assert!(out.point_scores.iter().all(|&s| s == 0.0));
    assert_eq!(out.diameter, 0.0);
}

#[test]
fn two_point_dataset() {
    let pts = vec![vec![0.0], vec![10.0]];
    let out = one_shot(
        &pts,
        &Euclidean,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    // With n = 2 everything is ambiguous; just require no panic and a
    // well-formed output.
    assert_eq!(out.point_scores.len(), 2);
}

#[test]
fn string_dataset_end_to_end() {
    // Many similar English-ish words + 2 far outliers sharing a shape.
    let mut words: Vec<String> = Vec::new();
    for a in ["sm", "br", "cl", "tr", "gr"] {
        for b in ["ith", "own", "ark", "een", "ant"] {
            for c in ["", "s", "er", "ing"] {
                words.push(format!("{a}{b}{c}"));
            }
        }
    }
    words.push("xxxxxxxxxxxxxxxxxxxxxx".to_string());
    words.push("xxxxxxxxxxxxxxxxxxxxxy".to_string());
    let n = words.len() as u32;
    let out = one_shot(
        &words,
        &Levenshtein,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    assert!(out.is_outlier(n - 2), "outlier word missed");
    assert!(out.is_outlier(n - 1), "outlier word missed");
    // The two x-words are close to each other: they should gel.
    let mc = out.cluster_of(n - 1).expect("cluster");
    assert_eq!(mc.members, vec![n - 2, n - 1]);
}
