//! The MDL-based Cutoff `d` (Def. 4–6, Fig. 4).
//!
//! MCCATCH separates outliers from inliers without a user threshold: it
//! partitions the Histogram of 1NN Distances at the position that minimizes
//! the two-part compression cost of the partitions. Tall bins (many points
//! with that 1NN distance — inliers and microcluster cores) compress well
//! together; so do the short bins of the sparse tail. The best split point
//! is the Cutoff.

use mccatch_metric::universal_code_length;

/// Result of the cutoff computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cutoff {
    /// The cut position as a radius-grid index: `d = radii[cut_index]`.
    /// `None` when no cut exists (empty histogram, or the mode sits in the
    /// last bin) — then no point is an outlier.
    pub cut_index: Option<usize>,
    /// The Cutoff distance `d` (`f64::INFINITY` when `cut_index` is `None`).
    pub d: f64,
    /// Index of the peak (mode) bin the search started from.
    pub mode_index: Option<usize>,
}

/// Cost of compressing a set of bin counts (Def. 5): cardinality, average,
/// and per-value absolute deviation from the average, each under the
/// universal integer code, with "+1"s guarding zeros.
pub fn compression_cost(values: &[u64]) -> f64 {
    assert!(
        !values.is_empty(),
        "cost of an empty partition is undefined"
    );
    let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
    let mut cost =
        universal_code_length(values.len() as u64) + universal_code_length(1 + mean.ceil() as u64);
    for &v in values {
        let dev = (v as f64 - mean).abs().ceil() as u64;
        cost += universal_code_length(1 + dev);
    }
    cost
}

/// Computes the Cutoff from the Histogram of 1NN Distances (Def. 6):
/// starting at the mode bin `e'`, try every cut `e ∈ (e', a]` and keep the
/// one minimizing `COST(H[e'..e]) + COST(H[e..a])`; `d = radii[e]`.
pub fn compute_cutoff(histogram: &[u64], radii: &[f64]) -> Cutoff {
    debug_assert_eq!(histogram.len(), radii.len());
    // Mode = most common 1NN distance; the earliest bin wins ties, which is
    // the conservative choice (a larger search range for the cut).
    let mode_index = if histogram.iter().all(|&h| h == 0) {
        None
    } else {
        let max = *histogram.iter().max().expect("non-empty");
        histogram.iter().position(|&h| h == max)
    };
    let Some(mode) = mode_index else {
        return Cutoff {
            cut_index: None,
            d: f64::INFINITY,
            mode_index: None,
        };
    };
    let a = histogram.len();
    let mut best: Option<(f64, usize)> = None;
    for cut in (mode + 1)..a {
        let cost = compression_cost(&histogram[mode..cut]) + compression_cost(&histogram[cut..a]);
        // Strict less-than: earliest minimizing cut wins, deterministic.
        if best.is_none_or(|(bc, _)| cost < bc) {
            best = Some((cost, cut));
        }
    }
    match best {
        Some((_, cut)) => Cutoff {
            cut_index: Some(cut),
            d: radii[cut],
            mode_index,
        },
        None => Cutoff {
            cut_index: None,
            d: f64::INFINITY,
            mode_index,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radii(a: usize) -> Vec<f64> {
        (0..a).map(|k| 2f64.powi(k as i32)).collect()
    }

    #[test]
    fn cost_of_uniform_partition_is_low() {
        // All-equal values deviate 0 from the mean: only <1> = 0 terms plus
        // header costs.
        let flat = compression_cost(&[5, 5, 5, 5]);
        let spiky = compression_cost(&[20, 0, 0, 0]);
        assert!(flat < spiky);
    }

    #[test]
    fn cost_known_value() {
        // V = {2}: <1> + <1 + 2> + <1 + 0> = 0 + log*(3) + 0.
        let want = universal_code_length(3);
        assert!((compression_cost(&[2]) - want).abs() < 1e-12);
    }

    #[test]
    fn cutoff_separates_tall_head_from_short_tail() {
        // Classic shape: mass at small radii, a sparse outlier tail.
        let hist = vec![0, 900, 80, 10, 0, 0, 1, 1, 0, 1];
        let cut = compute_cutoff(&hist, &radii(10));
        assert_eq!(cut.mode_index, Some(1));
        let c = cut.cut_index.expect("cut exists");
        // The cut must fall after the tall bins and before/at the tail.
        assert!((3..=6).contains(&c), "cut at {c}");
        assert_eq!(cut.d, radii(10)[c]);
    }

    #[test]
    fn empty_histogram_has_no_cutoff() {
        let cut = compute_cutoff(&[0, 0, 0, 0], &radii(4));
        assert_eq!(cut.cut_index, None);
        assert!(cut.d.is_infinite());
        assert_eq!(cut.mode_index, None);
    }

    #[test]
    fn mode_in_last_bin_has_no_cutoff() {
        let cut = compute_cutoff(&[1, 2, 3, 10], &radii(4));
        assert_eq!(cut.mode_index, Some(3));
        assert_eq!(cut.cut_index, None);
        assert!(cut.d.is_infinite());
    }

    #[test]
    fn cutoff_is_strictly_after_mode() {
        let hist = vec![10, 50, 3, 1, 1, 0];
        let cut = compute_cutoff(&hist, &radii(6));
        assert!(cut.cut_index.expect("cut") > cut.mode_index.expect("mode"));
    }

    #[test]
    fn all_mass_in_one_bin_before_tail() {
        // Only inliers, no tail at all: the search still yields some cut,
        // but every bin after the mode is zero, so any cut has equal cost;
        // the earliest wins.
        let hist = vec![100, 0, 0, 0];
        let cut = compute_cutoff(&hist, &radii(4));
        assert_eq!(cut.cut_index, Some(1));
    }

    #[test]
    fn deterministic_on_tied_modes() {
        // Two bins tie for the mode: the earlier one is chosen.
        let hist = vec![5, 7, 7, 1];
        let cut = compute_cutoff(&hist, &radii(4));
        assert_eq!(cut.mode_index, Some(1));
    }

    #[test]
    fn lone_extreme_bin_with_compact_head_is_separated() {
        // A compact two-bin head plus one far 1-count bin: the cut lands
        // right after the head, so the extreme point is flagged. (When the
        // head is *spread* over many decaying bins, Def. 6 can instead
        // absorb a lone far bin into the left partition — a documented
        // data-dependent edge case exercised by the pipeline property
        // tests.)
        let mut hist = vec![0u64; 15];
        hist[4] = 9;
        hist[5] = 11;
        hist[13] = 1;
        let cut = compute_cutoff(&hist, &radii(15));
        assert_eq!(cut.cut_index, Some(6));
    }

    #[test]
    fn populated_tail_is_separated() {
        // Same shape but with a *populated* tail: now the cut lands before
        // the tail bins and the outliers are flagged.
        let mut hist = vec![0u64; 15];
        hist[4] = 900;
        hist[5] = 1100;
        hist[9] = 2;
        hist[11] = 3;
        hist[13] = 2;
        let cut = compute_cutoff(&hist, &radii(15));
        let c = cut.cut_index.expect("cut exists");
        assert!(c <= 9, "cut at {c} does not separate the tail");
    }
}
