//! Serving utilities: hold a fitted model behind a swappable handle.
//!
//! The serving story MCCATCH's staging enables (fit once — the expensive
//! tree, diameter, and radius-grid stages of Alg. 1 — then answer cheaply
//! forever) needs one more piece for a real service: the model must be
//! **replaceable** while requests are in flight. Reference data changes,
//! a periodic refit job produces a fresh model, and readers must never
//! block on the writer or see a half-updated fit.
//!
//! [`ModelStore`] is that piece: an atomic snapshot/swap cell over the
//! type-erased [`Model`] handle.
//!
//! * **Readers** call [`ModelStore::snapshot`] (or the scoring
//!   conveniences) and get an `Arc<dyn Model<P>>` — a consistent model
//!   that stays alive for as long as they hold it, even if a swap happens
//!   mid-request. Readers that tag their answers with the model version
//!   (e.g. the `mccatch-stream` per-event scorer) use
//!   [`ModelStore::snapshot_tagged`], which pairs the model with its
//!   generation atomically.
//! * **The refit job** fits a new model on fresh data and calls
//!   [`ModelStore::swap`]; subsequent snapshots see the new model, old
//!   snapshots drain naturally, and the old model is freed when the last
//!   reader drops it.
//!
//! ```
//! use mccatch_core::serve::ModelStore;
//! use mccatch_core::McCatch;
//! use mccatch_index::KdTreeBuilder;
//! use mccatch_metric::Euclidean;
//!
//! let detector = McCatch::builder().build()?;
//! let day1: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
//!     .collect();
//! let store = ModelStore::new(
//!     detector
//!         .fit(day1, Euclidean, KdTreeBuilder::default())?
//!         .into_model(),
//! );
//!
//! // Serve...
//! let scores = store.score_batch(&[vec![4.5, 4.5], vec![500.0, 500.0]]);
//! assert!(scores[1] > scores[0]);
//!
//! // ...refit on fresh data and swap atomically; readers never block.
//! let day2: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64 + 500.0, (i / 10) as f64])
//!     .collect();
//! let old = store.swap(
//!     detector
//!         .fit(day2, Euclidean, KdTreeBuilder::default())?
//!         .into_model(),
//! );
//! assert_eq!(old.stats().num_points, 100);
//! assert_eq!(store.generation(), 1);
//! let scores = store.score_batch(&[vec![504.0, 4.0]]);
//! assert_eq!(scores[0], 0.0); // an inlier of the *new* reference set
//! # Ok::<(), mccatch_core::McCatchError>(())
//! ```

use crate::model::Model;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A thread-safe cell holding the current fitted model of a service,
/// supporting lock-brief snapshots and atomic swap-on-refit.
///
/// The store itself is `Send + Sync` (share it via `Arc<ModelStore<P>>`
/// or a `static`); every method takes `&self`. The inner lock is held
/// only for the instant of cloning or replacing the `Arc` — scoring and
/// detection always run lock-free on a snapshot.
///
/// The snapshot/swap-on-refit cycle, end to end:
///
/// ```
/// use mccatch_core::serve::ModelStore;
/// use mccatch_core::McCatch;
/// use mccatch_index::KdTreeBuilder;
/// use mccatch_metric::Euclidean;
///
/// let detector = McCatch::builder().build()?;
/// let fit = |shift: f64| {
///     let pts: Vec<Vec<f64>> = (0..100)
///         .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64])
///         .collect();
///     detector
///         .fit(pts, Euclidean, KdTreeBuilder::default())
///         .map(|fitted| fitted.into_model())
/// };
/// let store = ModelStore::new(fit(0.0)?);
///
/// // A reader takes a snapshot: a consistent model that stays valid
/// // (and alive) across any number of later swaps.
/// let snapshot = store.snapshot();
/// let before = snapshot.score_batch(&[vec![4.5, 4.5]])[0];
///
/// // The refit job swaps in a model fitted on fresh data; the old
/// // model is returned for logging or diffing.
/// let old = store.swap(fit(1000.0)?);
/// assert_eq!(old.stats().num_points, 100);
/// assert_eq!(store.generation(), 1);
///
/// // The reader's snapshot still answers identically; new snapshots
/// // see the new reference set.
/// assert_eq!(snapshot.score_batch(&[vec![4.5, 4.5]])[0], before);
/// assert!(store.score_batch(&[vec![4.5, 4.5]])[0] > before);
/// # Ok::<(), mccatch_core::McCatchError>(())
/// ```
pub struct ModelStore<P> {
    current: RwLock<Arc<dyn Model<P>>>,
    generation: AtomicU64,
}

impl<P> ModelStore<P> {
    /// Creates a store serving `model` (generation 0).
    pub fn new(model: Arc<dyn Model<P>>) -> Self {
        Self {
            current: RwLock::new(model),
            generation: AtomicU64::new(0),
        }
    }

    /// Creates a store serving `model` at an explicit starting
    /// generation — the warm-restart constructor: a process that loads a
    /// persisted snapshot resumes the generation counter where the saved
    /// process left off, so clients correlating answers by the
    /// `X-Mccatch-Generation` tag never see it regress across a restart.
    pub fn with_generation(model: Arc<dyn Model<P>>, generation: u64) -> Self {
        Self {
            current: RwLock::new(model),
            generation: AtomicU64::new(generation),
        }
    }

    /// The current model. The returned `Arc` stays valid (and keeps the
    /// model alive) across any number of later swaps.
    pub fn snapshot(&self) -> Arc<dyn Model<P>> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current model paired with its generation, read atomically:
    /// the returned generation is exactly the number of swaps that
    /// produced the returned model. Use this when answers are tagged
    /// with the model version (e.g. per-event streaming scores), where
    /// a separate [`snapshot`](Self::snapshot) +
    /// [`generation`](Self::generation) pair could straddle a
    /// concurrent [`swap`](Self::swap) and mislabel the model.
    pub fn snapshot_tagged(&self) -> (Arc<dyn Model<P>>, u64) {
        let slot = self.current.read().unwrap_or_else(|e| e.into_inner());
        // `swap` bumps the generation while holding the write lock, so
        // reading it under the read lock pairs it with the model.
        (Arc::clone(&slot), self.generation.load(Ordering::Acquire))
    }

    /// Replaces the served model, returning the previous one (so the
    /// refit job can log its final stats or diff the two). Increments
    /// [`generation`](Self::generation). In-flight snapshots of the old
    /// model keep working until dropped.
    pub fn swap(&self, next: Arc<dyn Model<P>>) -> Arc<dyn Model<P>> {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        let old = std::mem::replace(&mut *slot, next);
        self.generation.fetch_add(1, Ordering::AcqRel);
        old
    }

    /// Number of [`swap`](Self::swap)s performed so far; 0 for a freshly
    /// created store. Useful for staleness checks and health endpoints.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Scores a batch against one consistent snapshot of the current
    /// model. The model parallelizes internally across query chunks
    /// (its fit's resolved thread count), so this is the right call for
    /// large batches that must be scored against a single model version.
    pub fn score_batch(&self, queries: &[P]) -> Vec<f64> {
        self.snapshot().score_batch(queries)
    }

    /// Scores a single query against the current model without
    /// allocating a one-element batch — the per-event serving path (see
    /// [`Model::score_one`]).
    pub fn score_one(&self, query: &P) -> f64 {
        self.snapshot().score_one(query)
    }

    /// Scores a long, interruptible batch in chunks of `chunk_size`
    /// queries, re-snapshotting before each chunk: a [`swap`](Self::swap)
    /// lands between chunks instead of waiting for the whole batch.
    /// Prefer [`score_batch`](Self::score_batch) when the batch must be
    /// consistent against one model version.
    pub fn score_chunked(&self, queries: &[P], chunk_size: usize) -> Vec<f64> {
        let chunk = chunk_size.max(1);
        let mut out = Vec::with_capacity(queries.len());
        for c in queries.chunks(chunk) {
            out.extend(self.snapshot().score_batch(c));
        }
        out
    }
}

impl<P> std::fmt::Debug for ModelStore<P> {
    // Deliberately does NOT touch the model: `stats()` runs the detection
    // pipeline on first use, and debug-formatting must stay cheap and
    // side-effect free.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelStore")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McCatch;
    use mccatch_index::SlimTreeBuilder;
    use mccatch_metric::Euclidean;

    fn model_over(shift: f64) -> Arc<dyn Model<Vec<f64>>> {
        let pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64])
            .collect();
        McCatch::builder()
            .build()
            .unwrap()
            .fit(pts, Euclidean, SlimTreeBuilder::default())
            .unwrap()
            .into_model()
    }

    #[test]
    fn snapshot_survives_swap() {
        let store = ModelStore::new(model_over(0.0));
        let before = store.snapshot();
        let q = vec![vec![4.5, 4.5]];
        let score_before = before.score_batch(&q)[0];
        store.swap(model_over(1000.0));
        // The old snapshot still answers identically.
        assert_eq!(before.score_batch(&q)[0], score_before);
        // The store now answers from the new model.
        assert!(store.score_batch(&q)[0] > score_before);
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn snapshot_tagged_pairs_model_with_generation() {
        let store = ModelStore::new(model_over(0.0));
        let (m0, g0) = store.snapshot_tagged();
        assert_eq!(g0, 0);
        store.swap(model_over(500.0));
        let (m1, g1) = store.snapshot_tagged();
        assert_eq!(g1, 1);
        // The tagged pairs answer from their own model versions.
        let q = vec![4.5, 4.5];
        assert!(m1.score_one(&q) > m0.score_one(&q));
    }

    #[test]
    fn with_generation_resumes_the_counter() {
        let store = ModelStore::with_generation(model_over(0.0), 7);
        assert_eq!(store.generation(), 7);
        let (_, g) = store.snapshot_tagged();
        assert_eq!(g, 7);
        store.swap(model_over(1.0));
        assert_eq!(store.generation(), 8);
    }

    #[test]
    fn score_one_matches_score_batch() {
        let store = ModelStore::new(model_over(0.0));
        for q in [vec![4.5, 4.5], vec![2000.0, -3.0], vec![0.0, 0.0]] {
            assert_eq!(
                store.score_one(&q),
                store.score_batch(std::slice::from_ref(&q))[0]
            );
        }
    }

    #[test]
    fn concurrent_readers_and_swaps() {
        let store = Arc::new(ModelStore::new(model_over(0.0)));
        let q = vec![vec![4.5, 4.5], vec![2000.0, 2000.0]];
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let q = q.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let s = store.score_batch(&q);
                        // Every observed model version agrees the far point
                        // is at least as strange as the near one.
                        assert!(s[1] >= s[0]);
                    }
                })
            })
            .collect();
        for gen in 0..3 {
            store.swap(model_over(gen as f64 * 10.0));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.generation(), 3);
    }

    #[test]
    fn score_chunked_matches_batch_without_swaps() {
        let store = ModelStore::new(model_over(0.0));
        let queries: Vec<Vec<f64>> = (0..57).map(|i| vec![i as f64 * 0.3, 1.0]).collect();
        assert_eq!(
            store.score_chunked(&queries, 10),
            store.score_batch(&queries)
        );
        // chunk_size 0 is clamped, not a panic or an empty result.
        assert_eq!(
            store.score_chunked(&queries, 0),
            store.score_batch(&queries)
        );
    }
}
