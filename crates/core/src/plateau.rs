//! Plateau detection (Def. 1–3): turning a point's neighbor-count curve
//! into its 1NN Distance (first plateau) and Group 1NN Distance (middle
//! plateau).
//!
//! A *plateau* is a maximal range of radii where the count stays
//! quasi-unaltered — every log-log slope within the range is at most `b` —
//! spanning at least two radii, whose starting height is at most `c`
//! (taller plateaus are "excused": they describe clusters too big to be
//! microclusters). The *first plateau* is the one of height 1; the *middle
//! plateau* is the longest one with height above 1 that does not run into
//! the final radius.

use crate::counts::OVER;

/// The plateaus of one point, expressed as radius-grid indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointPlateaus {
    /// End index of the first plateau (its start is always radius 0).
    /// `None` when the point has a neighbor already at `r_1` (the grid is
    /// too coarse to see the first plateau; Alg. 2 then uses `x_i = 0`),
    /// or when the height-1 run spans a single radius.
    pub first_end: Option<u16>,
    /// `(start, end)` indices of the middle plateau, `None` if absent.
    pub middle: Option<(u16, u16)>,
}

/// Finds the plateaus of one count row (entries after the first [`OVER`]
/// are unknown-but-above-`c` and cannot host plateaus).
///
/// `log_radii[k]` must hold `log2(radii[k])`; precomputing it once per run
/// keeps this function allocation- and log-free per radius step.
pub fn find_plateaus(counts: &[u32], log_radii: &[f64], b: f64, c: usize) -> PointPlateaus {
    let a = counts.len();
    debug_assert_eq!(a, log_radii.len());
    // Exact prefix: plateaus exist only where counts are known.
    let last = match counts.iter().position(|&q| q == OVER) {
        Some(0) => return PointPlateaus::default(),
        Some(k) => k - 1,
        None => a - 1,
    };
    let mut result = PointPlateaus::default();
    let mut best_middle_len = f64::NEG_INFINITY;
    let mut run_start = 0usize;
    // Sweep maximal quasi-flat runs over [0, last].
    for k in 0..=last {
        let run_breaks = if k == last {
            true
        } else {
            // SLOPE(k) = Δlog2(count) / Δlog2(radius) (Def. 1).
            let dq = (counts[k + 1] as f64).log2() - (counts[k] as f64).log2();
            let dr = log_radii[k + 1] - log_radii[k];
            dq > b * dr
        };
        if !run_breaks {
            continue;
        }
        let (s, e) = (run_start, k);
        run_start = k + 1;
        if e == s {
            continue; // Def. 1 requires r_e < r_e' — at least two radii.
        }
        let height = counts[s];
        if height as usize > c {
            continue; // excused: cluster too large to be a microcluster
        }
        if height == 1 {
            // Counts start at >= 1 and never decrease, so a height-1 run
            // must begin at radius 0: it is the first plateau (Def. 2).
            debug_assert_eq!(s, 0);
            result.first_end = Some(e as u16);
        } else if e != a - 1 {
            // Candidate middle plateau (Def. 3): keep the longest; ties go
            // to the earlier start for determinism.
            let len = exp2(log_radii[e]) - exp2(log_radii[s]);
            if len > best_middle_len {
                best_middle_len = len;
                result.middle = Some((s as u16, e as u16));
            }
        }
    }
    result
}

#[inline]
fn exp2(x: f64) -> f64 {
    x.exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Log-radii of the standard doubling grid: log2(r_k) = k + const.
    fn log_radii(a: usize) -> Vec<f64> {
        (0..a).map(|k| k as f64).collect()
    }

    #[test]
    fn isolate_point_has_long_first_plateau_no_middle() {
        // Count 1 for 6 radii, then jumps to n.
        let counts = [1, 1, 1, 1, 1, 1, 100, 100];
        let p = find_plateaus(&counts, &log_radii(8), 0.1, 10);
        assert_eq!(p.first_end, Some(5));
        // The [6,7] run has height 100 > c -> excused.
        assert_eq!(p.middle, None);
    }

    #[test]
    fn mc_point_has_short_first_and_long_middle() {
        // 1 at r0..r1, microcluster of 8 from r2..r6, everything at r7.
        let counts = [1, 1, 8, 8, 8, 8, 8, 100];
        let p = find_plateaus(&counts, &log_radii(8), 0.1, 10);
        assert_eq!(p.first_end, Some(1));
        assert_eq!(p.middle, Some((2, 6)));
    }

    #[test]
    fn inlier_cluster_plateau_is_excused() {
        // Joins a big cluster (height 80 > c=10).
        let counts = [1, 1, 80, 80, 80, 100];
        let p = find_plateaus(&counts, &log_radii(6), 0.1, 10);
        assert_eq!(p.first_end, Some(1));
        assert_eq!(p.middle, None);
    }

    #[test]
    fn no_first_plateau_when_crowded_at_r1() {
        // Already 3 neighbors at the smallest radius: x_i = 0 case.
        let counts = [3, 3, 3, 100];
        let p = find_plateaus(&counts, &log_radii(4), 0.1, 10);
        assert_eq!(p.first_end, None);
        assert_eq!(p.middle, Some((0, 2)));
    }

    #[test]
    fn single_radius_run_is_not_a_plateau() {
        // Height-1 run spans only r0, then the count keeps climbing stepwise.
        let counts = [1, 4, 9, 100];
        let p = find_plateaus(&counts, &log_radii(4), 0.1, 10);
        assert_eq!(p.first_end, None);
        assert_eq!(p.middle, None);
    }

    #[test]
    fn middle_plateau_must_not_touch_last_radius() {
        // Quasi-flat run of height 5 extends to the final radius: that is a
        // *last* plateau (the point's cluster has absorbed everything), not
        // a middle plateau.
        let counts = [1, 1, 5, 5, 5, 5];
        let p = find_plateaus(&counts, &log_radii(6), 0.1, 10);
        assert_eq!(p.first_end, Some(1));
        assert_eq!(p.middle, None);
    }

    #[test]
    fn longest_middle_plateau_wins() {
        // Two middle candidates: [2,4] (len 2^4-2^2=12) and [6,10]
        // (len 2^10-2^6 = 960).
        let counts = [1, 1, 3, 3, 3, 6, 8, 8, 8, 8, 8, 100];
        let p = find_plateaus(&counts, &log_radii(12), 0.1, 10);
        assert_eq!(p.first_end, Some(1));
        assert_eq!(p.middle, Some((6, 10)));
    }

    #[test]
    fn slope_tolerance_b_allows_quasi_flat_growth() {
        // 14 -> 15 over one doubling: slope = log2(15/14) ≈ 0.0995 <= 0.1,
        // so the run does NOT break.
        let counts = [1, 1, 14, 15, 15, 100];
        let p = find_plateaus(&counts, &log_radii(6), 0.1, 20);
        assert_eq!(p.middle, Some((2, 4)));
        // With b = 0: it breaks into two runs; [3,4] is the longer one
        // (2^4-2^3=8 vs 2^3-2^2=4)... [2,2] is not a plateau (one radius),
        // so [3,4] is chosen.
        let p0 = find_plateaus(&counts, &log_radii(6), 0.0, 20);
        assert_eq!(p0.middle, Some((3, 4)));
    }

    #[test]
    fn over_sentinel_truncates_analysis() {
        // Crossing value (12 > c=10) recorded, then OVER: the run ending at
        // the crossing is still considered; nothing beyond.
        let counts = [1, 1, 5, 5, 12, OVER, OVER, OVER];
        let p = find_plateaus(&counts, &log_radii(8), 0.1, 10);
        assert_eq!(p.first_end, Some(1));
        // Run [2,3] has height 5 <= c; run [4,4] single radius.
        assert_eq!(p.middle, Some((2, 3)));
    }

    #[test]
    fn all_over_row_yields_nothing() {
        let counts = [OVER; 5];
        let p = find_plateaus(&counts, &log_radii(5), 0.1, 10);
        assert_eq!(p, PointPlateaus::default());
    }

    #[test]
    fn plateau_crossing_c_mid_run_is_kept() {
        // Run starts at height 9 <= c and drifts above c within the run
        // (9 -> 9 -> 10): Def. 1 only constrains the *height* (start).
        // Slopes: log2(10/9)=0.152 > b=0.2? No: 0.152 <= 0.2 keeps it flat.
        let counts = [1, 1, 9, 9, 10, 100];
        let p = find_plateaus(&counts, &log_radii(6), 0.2, 9);
        assert_eq!(p.middle, Some((2, 4)));
    }

    #[test]
    fn pure_single_point_dataset() {
        // n = 1: count stays 1 to the very end; the first plateau spans the
        // whole grid and there is no middle plateau.
        let counts = [1, 1, 1, 1, 1];
        let p = find_plateaus(&counts, &log_radii(5), 0.1, 1);
        assert_eq!(p.first_end, Some(4));
        assert_eq!(p.middle, None);
    }
}
