//! The staged, reusable MCCATCH detector: configure once, fit once,
//! detect (and score new points) many times.
//!
//! A one-shot run rebuilds the metric tree on every call — fine for a
//! single analysis, wasteful for a service answering many detection or
//! scoring requests over the same reference dataset. This module splits
//! the pipeline at its natural seams:
//!
//! 1. **Configure** — [`McCatch::builder`] validates hyperparameters and
//!    returns configuration errors as [`McCatchError`] values instead of
//!    panicking.
//! 2. **Fit** — [`McCatch::fit`] runs Alg. 1 step I exactly once: build
//!    the tree, estimate the diameter, derive the radius grid.
//! 3. **Detect / serve** — the [`Fitted`] handle exposes the full
//!    pipeline ([`Fitted::detect`]), the lazily computed intermediate
//!    artifacts ([`Fitted::oracle`], [`Fitted::cutoff`]) for
//!    observability, and [`Fitted::score_points`] to rank *new* points
//!    against the fitted reference set — the serving path.
//!
//! [`Fitted`] is **owned**: it takes the dataset as (or into) an
//! `Arc<[P]>` and owns its metric and index builder, so it has no borrowed
//! lifetime. A fitted model can outlive the stack frame that loaded the
//! data, sit in a long-lived server, move across threads
//! (`Send + Sync + 'static` whenever its components are), and be erased
//! into an `Arc<dyn Model<P>>` serving handle via [`Fitted::into_model`].
//! One-shot callers with borrowed slices can use [`McCatch::fit_ref`],
//! which clones the data into a fresh `Arc`.
//!
//! Everything downstream of `fit` is deterministic and cached, so calling
//! [`Fitted::detect`] twice is both cheap (the joins run once) and
//! bit-identical to two independent legacy `mccatch()` runs.
//!
//! ```
//! use mccatch_core::McCatch;
//! use mccatch_index::KdTreeBuilder;
//! use mccatch_metric::Euclidean;
//!
//! let mut points: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
//!     .collect();
//! points.push(vec![30.0, 30.0]);
//!
//! let detector = McCatch::builder().build()?;
//! let fitted = detector.fit(points, Euclidean, KdTreeBuilder::default())?;
//!
//! let out = fitted.detect();
//! assert!(out.is_outlier(100));
//!
//! // Serving path: rank held-out points against the fitted reference.
//! let scores = fitted.score_points(&[vec![0.35, 0.35], vec![-20.0, 40.0]]);
//! assert!(scores[1] > scores[0]);
//!
//! // The handle owns its data: return it, store it, move it to a thread.
//! let handle = std::thread::spawn(move || fitted.detect());
//! assert!(handle.join().unwrap().is_outlier(100));
//! # Ok::<(), mccatch_core::McCatchError>(())
//! ```

use crate::counts::count_neighbors;
use crate::cutoff::{compute_cutoff, Cutoff};
use crate::error::McCatchError;
use crate::gel::{spot_microclusters, SpottedMcs};
use crate::model::{Model, ModelExport, ModelStats};
use crate::oracle::OraclePlot;
use crate::params::{Params, RadiusGrid, Resolved};
use crate::result::{McCatchOutput, Microcluster, RunStats};
use crate::score::{complement_of_sorted, score_microclusters, McScores};
use mccatch_index::{DistanceStats, IndexBuilder, RangeIndex};
use mccatch_metric::{universal_code_length_f64, Metric};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Step-by-step construction of a validated [`McCatch`] detector.
///
/// Unset knobs keep the paper's hands-off defaults (`a = 15`, `b = 0.1`,
/// `c = ⌈n·0.1⌉`, all cores).
#[derive(Debug, Clone, Default)]
pub struct McCatchBuilder {
    params: Params,
}

impl McCatchBuilder {
    /// Number of neighborhood radii `a` (paper default 15; must be ≥ 2).
    pub fn num_radii(mut self, a: usize) -> Self {
        self.params.num_radii = a;
        self
    }

    /// Maximum plateau slope `b` (paper default 0.1; must be ≥ 0).
    pub fn max_plateau_slope(mut self, b: f64) -> Self {
        self.params.max_plateau_slope = b;
        self
    }

    /// Absolute maximum microcluster cardinality `c` (clamped to ≥ 1 at
    /// resolution, matching the paper's derived default). Without this
    /// call, `c` defaults to the paper's `⌈n · 0.1⌉`.
    pub fn max_mc_cardinality(mut self, c: usize) -> Self {
        self.params.max_mc_cardinality = Some(c);
        self
    }

    /// Worker threads for the counting joins; 0 (default) means all
    /// available cores. Thread count never changes results.
    pub fn threads(mut self, threads: usize) -> Self {
        self.params.threads = threads;
        self
    }

    /// Replaces the whole parameter set at once.
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Validates the configuration and builds the detector.
    pub fn build(self) -> Result<McCatch, McCatchError> {
        McCatch::new(self.params)
    }
}

/// A validated MCCATCH configuration, ready to [`fit`](McCatch::fit)
/// datasets. Construction is the only place hyperparameters are checked;
/// everything downstream is infallible on the parameter side.
#[derive(Debug, Clone, PartialEq)]
pub struct McCatch {
    params: Params,
}

impl McCatch {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> McCatchBuilder {
        McCatchBuilder::default()
    }

    /// Validates `params` and builds the detector.
    pub fn new(params: Params) -> Result<Self, McCatchError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The validated hyperparameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs Alg. 1 step I once: builds the index over `points`, estimates
    /// the diameter, and derives the radius grid. The returned [`Fitted`]
    /// handle **owns** its data (`Arc<[P]>`), metric, and index builder —
    /// it has no borrowed lifetime — and serves any number of
    /// [`detect`](Fitted::detect) / [`score_points`](Fitted::score_points)
    /// calls, from any thread.
    ///
    /// `points` accepts anything convertible into an `Arc<[P]>`: a
    /// `Vec<P>` (moved, no copy), an existing `Arc<[P]>` (shared, no
    /// copy — refits over the same data reuse one allocation), or a
    /// `&[P]` of cloneable points (copied once). For borrowed inputs see
    /// also [`McCatch::fit_ref`].
    pub fn fit<P, M, B>(
        &self,
        points: impl Into<Arc<[P]>>,
        metric: M,
        index_builder: B,
    ) -> Result<Fitted<P, M, B>, McCatchError>
    where
        P: Sync,
        M: Metric<P>,
        B: IndexBuilder<P, M>,
    {
        let points: Arc<[P]> = points.into();
        let metric = Arc::new(metric);
        let resolved = self.params.try_resolve(points.len())?;
        let t0 = Instant::now();
        let tree = index_builder.build_all(Arc::clone(&points), Arc::clone(&metric));
        let diameter = tree.diameter_estimate();
        let grid = RadiusGrid::new(diameter, resolved.a);
        let t_build = t0.elapsed();
        mccatch_obs::record_stage("fit_build", t_build);
        let d_build = tree.distance_stats().evals;
        Ok(Fitted {
            points,
            metric,
            index_builder,
            resolved,
            tree,
            grid,
            t_build,
            d_build,
            oracle: OnceLock::new(),
            cutoff: OnceLock::new(),
            spotted: OnceLock::new(),
            scored: OnceLock::new(),
            inlier_tree: OnceLock::new(),
        })
    }

    /// Borrowed-slice shim over [`McCatch::fit`] for one-shot callers:
    /// clones `points`, `metric`, and `index_builder` into the owned
    /// handle (an `O(n)` copy, dwarfed by the tree build itself). The
    /// returned [`Fitted`] is just as lifetime-free as one from `fit`.
    pub fn fit_ref<P, M, B>(
        &self,
        points: &[P],
        metric: &M,
        index_builder: &B,
    ) -> Result<Fitted<P, M, B>, McCatchError>
    where
        P: Sync + Clone,
        M: Metric<P> + Clone,
        B: IndexBuilder<P, M> + Clone,
    {
        self.fit(
            Arc::<[P]>::from(points),
            metric.clone(),
            index_builder.clone(),
        )
    }
}

/// Timings and distance-evaluation counts of the lazily computed Oracle
/// plot.
#[derive(Debug, Clone, Copy)]
struct OracleTimings {
    t_count: Duration,
    t_plateaus: Duration,
    /// Distance evaluations the counting stage performed on the tree.
    d_count: u64,
}

/// A detector fitted to a reference dataset: the tree, diameter estimate,
/// and radius grid are built once; the Oracle plot, cutoff, and spotted
/// microclusters are computed lazily on first use and cached.
///
/// Obtained from [`McCatch::fit`]. The handle **owns** its dataset
/// (`Arc<[P]>`), metric, and index builder, so it carries no borrowed
/// lifetime: it can be returned from the function that loaded the data,
/// stored in a long-lived service, and moved or shared across threads —
/// `Fitted` is `Send + Sync + 'static` whenever its components are. All
/// accessors are `&self`, so one fitted detector can serve concurrent
/// readers; [`Fitted::into_model`] erases the metric and index types for
/// callers that don't want the generics.
pub struct Fitted<P, M, B>
where
    P: Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
{
    points: Arc<[P]>,
    metric: Arc<M>,
    index_builder: B,
    resolved: Resolved,
    tree: B::Index,
    grid: RadiusGrid,
    t_build: Duration,
    /// Distance evaluations Step I spent (build + diameter estimate).
    d_build: u64,
    #[allow(clippy::type_complexity)]
    oracle: OnceLock<(OraclePlot, Vec<usize>, OracleTimings)>,
    cutoff: OnceLock<Cutoff>,
    spotted: OnceLock<(SpottedMcs, Duration)>,
    scored: OnceLock<(Vec<Microcluster>, McScores, Duration)>,
    inlier_tree: OnceLock<Option<B::Index>>,
}

impl<P, M, B> Fitted<P, M, B>
where
    P: Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
{
    /// The reference dataset this detector was fitted to.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// A shared handle to the reference dataset. Refitting over the same
    /// data (e.g. with different hyperparameters) through this handle
    /// reuses the allocation instead of copying the points.
    pub fn points_arc(&self) -> Arc<[P]> {
        Arc::clone(&self.points)
    }

    /// Number of reference points `n`.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The diameter estimate `l` (Alg. 1 line 2).
    pub fn diameter(&self) -> f64 {
        self.grid.diameter()
    }

    /// The radius grid `R = {l/2^(a-1), …, l}` (Alg. 1 line 3).
    pub fn radii(&self) -> &[f64] {
        self.grid.radii()
    }

    /// The resolved hyperparameters (`c` and `threads` made absolute).
    pub fn resolved(&self) -> Resolved {
        self.resolved
    }

    /// Whether the fitted dataset has no usable geometry: empty, a single
    /// point, or all points identical (zero diameter). Degenerate fits
    /// report no microclusters and all-zero scores.
    pub fn is_degenerate(&self) -> bool {
        self.points.is_empty() || self.grid.is_degenerate()
    }

    /// The Oracle plot (Alg. 2): per point, 1NN Distance `x` vs Group 1NN
    /// Distance `y`. Computed on first call (the expensive counting
    /// joins), cached afterwards.
    pub fn oracle(&self) -> &OraclePlot {
        &self.oracle_entry().0
    }

    /// Active-set sizes before each counting join — the sparse-focused
    /// principle's diagnostic (length `a - 1`).
    pub fn active_per_radius(&self) -> &[usize] {
        &self.oracle_entry().1
    }

    /// The MDL cutoff `d` (Def. 6) over the histogram of 1NN distances.
    /// Lazily computed; `d` is infinite when no cut splits the histogram
    /// (degenerate or structureless data).
    pub fn cutoff(&self) -> &Cutoff {
        self.cutoff.get_or_init(|| {
            if self.is_degenerate() {
                Cutoff {
                    cut_index: None,
                    d: f64::INFINITY,
                    mode_index: None,
                }
            } else {
                compute_cutoff(self.oracle().histogram(), self.grid.radii())
            }
        })
    }

    /// Runs the remaining pipeline (spot, gel, score — Alg. 3 and 4) and
    /// assembles the full [`McCatchOutput`]. Every expensive stage runs
    /// once and is cached: repeat calls only clone the cached artifacts.
    /// Outputs are bit-identical on every call, and equal to a fresh
    /// one-shot configure-fit-detect run over the same data and
    /// parameters.
    pub fn detect(&self) -> McCatchOutput {
        let n = self.points.len();
        if self.is_degenerate() {
            let mut stats = RunStats {
                t_build: self.t_build,
                dist_build: self.d_build,
                ..RunStats::default()
            };
            stats.t_total = self.t_build;
            return McCatchOutput {
                microclusters: Vec::new(),
                point_scores: vec![0.0; n],
                outliers: Vec::new(),
                oracle: self.oracle().clone(),
                cutoff: self.cutoff().clone(),
                radii: self.grid.radii().to_vec(),
                diameter: self.grid.diameter(),
                stats,
            };
        }

        let timings = self.oracle_entry().2;
        let (spotted, t_spot) = self.spotted();
        let (microclusters, scores, t_score) = self.scored();

        let stats = RunStats {
            t_build: self.t_build,
            t_count: timings.t_count,
            t_plateaus: timings.t_plateaus,
            t_spot: *t_spot,
            t_score: *t_score,
            t_total: self.t_build + timings.t_count + timings.t_plateaus + *t_spot + *t_score,
            active_per_radius: self.active_per_radius().to_vec(),
            dist_build: self.d_build,
            dist_count: timings.d_count,
        };
        McCatchOutput {
            microclusters: microclusters.clone(),
            point_scores: scores.point_scores.clone(),
            outliers: spotted.outliers.clone(),
            oracle: self.oracle().clone(),
            cutoff: self.cutoff().clone(),
            radii: self.grid.radii().to_vec(),
            diameter: self.grid.diameter(),
            stats,
        }
    }

    /// Scores *new* points against the fitted reference set — the serving
    /// path. Each query gets the paper's per-point score `⟨1 + g/r₁⟩`
    /// (Alg. 4 lines 21–24), where `g` is the query's distance to its
    /// nearest reference **inlier**, quantized down to the radius grid
    /// exactly like the in-run outlier scores. A query that coincides
    /// with a reference inlier scores 0; queries far from every inlier —
    /// including ones sitting on a known microcluster — score high.
    ///
    /// Large batches are split into chunks scored in parallel using the
    /// fit's resolved thread count; queries are independent, so the output
    /// is bit-identical regardless of threading.
    ///
    /// Does not modify the fit: queries are not added to the reference
    /// set. Degenerate fits score everything 0.
    pub fn score_points(&self, queries: &[P]) -> Vec<f64> {
        if self.is_degenerate() {
            return vec![0.0; queries.len()];
        }
        let radii = self.grid.radii();
        let r1 = radii[0];
        let reference: &dyn RangeIndex<P> = match self.inlier_tree() {
            // All reference points are outliers (tiny pathological fits):
            // fall back to the full tree so scores stay meaningful.
            None => &self.tree,
            Some(t) => t,
        };
        let mut out = vec![0.0; queries.len()];
        let threads = self.resolved.threads.clamp(1, queries.len().max(1));
        if threads == 1 || queries.len() < 32 {
            for (slot, q) in out.iter_mut().zip(queries) {
                *slot = score_query(reference, radii, r1, q);
            }
            return out;
        }
        // Each worker fills a disjoint slice of the output, so the result
        // does not depend on the thread count.
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, q) in ochunk.iter_mut().zip(qchunk) {
                        *slot = score_query(reference, radii, r1, q);
                    }
                });
            }
        });
        out
    }

    /// Scores a single query against the fitted reference set without
    /// allocating a one-element batch — the per-event serving path used
    /// by streaming callers. Bit-identical to
    /// `score_points(&[query])[0]`: same inlier tree, same grid
    /// quantization, same `⟨1 + g/r₁⟩` code length.
    pub fn score_one(&self, query: &P) -> f64 {
        if self.is_degenerate() {
            return 0.0;
        }
        let radii = self.grid.radii();
        let reference: &dyn RangeIndex<P> = match self.inlier_tree() {
            None => &self.tree,
            Some(t) => t,
        };
        score_query(reference, radii, radii[0], query)
    }

    /// The serving-path score at the fitted MDL cutoff distance `d`:
    /// queries scoring **strictly above** this value lie farther than
    /// `d` from every reference inlier — they would have been flagged
    /// outliers had they been in the reference set. Infinite for
    /// degenerate fits or when no cut exists (nothing is flagged then).
    /// Streaming drift triggers compare per-event scores against it.
    pub fn score_cutoff(&self) -> f64 {
        if self.is_degenerate() {
            return f64::INFINITY;
        }
        let d = self.cutoff().d;
        if !d.is_finite() {
            return f64::INFINITY;
        }
        let radii = self.grid.radii();
        universal_code_length_f64(1.0 + quantize_down(d, radii) / radii[0])
    }

    /// The `k` highest-ranked (most strange) microclusters; `k = 0` means
    /// all of them. Runs the spot/gel/score stages on first use (cached).
    pub fn top_k(&self, k: usize) -> Vec<Microcluster> {
        if self.is_degenerate() {
            return Vec::new();
        }
        let ranked = &self.scored().0;
        let take = if k == 0 {
            ranked.len()
        } else {
            k.min(ranked.len())
        };
        ranked[..take].to_vec()
    }

    /// Summary of the fit and its detection results, for health endpoints
    /// and logs. Runs the detection stages on first use (cached).
    pub fn stats(&self) -> ModelStats {
        let degenerate = self.is_degenerate();
        let (num_outliers, num_microclusters) = if degenerate {
            (0, 0)
        } else {
            (self.spotted().0.outliers.len(), self.scored().0.len())
        };
        ModelStats {
            num_points: self.points.len(),
            diameter: self.grid.diameter(),
            num_radii: self.grid.radii().len(),
            cutoff_d: self.cutoff().d,
            num_outliers,
            num_microclusters,
            distance_evals: self.d_build + self.oracle_entry().2.d_count,
            degenerate,
        }
    }

    /// Live distance-evaluation totals of the fitted reference tree:
    /// everything Step I and the counting stage spent, plus any serving
    /// queries answered from the main tree since. For a number that is
    /// stable per fit (and comparable across replicas), use
    /// [`ModelStats::distance_evals`] from [`Fitted::stats`] instead.
    pub fn distance_stats(&self) -> DistanceStats {
        self.tree.distance_stats()
    }

    /// Everything needed to persist this fit and re-derive it exactly:
    /// the reference points, the resolved hyperparameters (re-resolving
    /// them against the same `n` reproduces [`Fitted::resolved`] field
    /// for field), and the index backend's stable name. See
    /// [`Model::export`].
    pub fn export(&self) -> ModelExport<P> {
        ModelExport {
            points: Arc::clone(&self.points),
            params: Params {
                num_radii: self.resolved.a,
                max_plateau_slope: self.resolved.b,
                max_mc_cardinality: Some(self.resolved.c),
                threads: self.resolved.threads,
            },
            backend: self.index_builder.backend_name(),
        }
    }

    /// Erases the metric and index types behind the object-safe
    /// [`Model`] trait, yielding a shareable serving handle. The `Arc`
    /// can be cloned into any number of threads; every clone answers
    /// from this one fit.
    pub fn into_model(self) -> Arc<dyn Model<P>>
    where
        P: Send + Sync + 'static,
        M: 'static,
        B: Send + Sync + 'static,
        B::Index: Send + Sync + 'static,
    {
        Arc::new(self)
    }

    fn oracle_entry(&self) -> &(OraclePlot, Vec<usize>, OracleTimings) {
        self.oracle.get_or_init(|| {
            if self.is_degenerate() {
                // Mirror the legacy degenerate branch: an empty counting
                // pass so the plot is well-formed with all-zero entries.
                let table = count_neighbors(&self.tree, &self.points, self.grid.radii(), 0, 1);
                let plot = OraclePlot::from_counts(
                    &table,
                    self.grid.radii(),
                    self.resolved.b,
                    self.resolved.c,
                );
                let timings = OracleTimings {
                    t_count: Duration::default(),
                    t_plateaus: Duration::default(),
                    d_count: 0,
                };
                return (plot, table.active_per_radius, timings);
            }
            let evals_before = self.tree.distance_stats().evals;
            let t0 = Instant::now();
            let table = count_neighbors(
                &self.tree,
                &self.points,
                self.grid.radii(),
                self.resolved.c,
                self.resolved.threads,
            );
            let t_count = t0.elapsed();
            mccatch_obs::record_stage("fit_counting", t_count);
            let d_count = self.tree.distance_stats().evals - evals_before;
            let t0 = Instant::now();
            let plot = OraclePlot::from_counts(
                &table,
                self.grid.radii(),
                self.resolved.b,
                self.resolved.c,
            );
            let t_plateaus = t0.elapsed();
            mccatch_obs::record_stage("fit_plotting", t_plateaus);
            (
                plot,
                table.active_per_radius,
                OracleTimings {
                    t_count,
                    t_plateaus,
                    d_count,
                },
            )
        })
    }

    fn spotted(&self) -> &(SpottedMcs, Duration) {
        self.spotted.get_or_init(|| {
            let t0 = Instant::now();
            let spotted = spot_microclusters(
                &self.points,
                &self.metric,
                &self.index_builder,
                self.oracle(),
                self.cutoff(),
                self.grid.radii(),
            );
            let t_spot = t0.elapsed();
            mccatch_obs::record_stage("fit_gelling", t_spot);
            (spotted, t_spot)
        })
    }

    /// Step IV (Alg. 4), run once: scores plus the ranked microcluster
    /// list. Later `detect()` calls only clone the cached results.
    fn scored(&self) -> &(Vec<Microcluster>, McScores, Duration) {
        self.scored.get_or_init(|| {
            let (spotted, _) = self.spotted();
            let t0 = Instant::now();
            let scores = score_microclusters(
                &self.points,
                &self.metric,
                &self.index_builder,
                &spotted.clusters,
                &spotted.outliers,
                self.oracle(),
                self.grid.radii(),
                self.resolved.threads,
            );
            let t_score = t0.elapsed();
            mccatch_obs::record_stage("fit_scoring", t_score);

            // Rank most-strange-first (Probl. 1); deterministic tie-breaks.
            let mut microclusters: Vec<Microcluster> = spotted
                .clusters
                .iter()
                .cloned()
                .zip(scores.mc_scores.iter().copied())
                .zip(scores.bridges.iter().copied())
                .zip(scores.mean_1nn.iter().copied())
                .map(
                    |(((members, score), bridge_length), mean_1nn)| Microcluster {
                        members,
                        score,
                        bridge_length,
                        mean_1nn,
                    },
                )
                .collect();
            microclusters.sort_by(|x, y| {
                y.score
                    .total_cmp(&x.score)
                    .then(x.members.len().cmp(&y.members.len()))
                    .then(x.members[0].cmp(&y.members[0]))
            });
            (microclusters, scores, t_score)
        })
    }

    /// The index over the reference inliers, built lazily for the serving
    /// path; `None` when every reference point is an outlier.
    fn inlier_tree(&self) -> Option<&B::Index> {
        self.inlier_tree
            .get_or_init(|| {
                let outliers = &self.spotted().0.outliers;
                let inliers = complement_of_sorted(self.points.len(), outliers);
                if inliers.is_empty() {
                    None
                } else {
                    Some(self.index_builder.build(
                        Arc::clone(&self.points),
                        inliers,
                        Arc::clone(&self.metric),
                    ))
                }
            })
            .as_ref()
    }
}

impl<P, M, B> Model<P> for Fitted<P, M, B>
where
    P: Send + Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M> + Send + Sync,
    B::Index: Send + Sync,
{
    fn detect_output(&self) -> McCatchOutput {
        self.detect()
    }

    fn score_batch(&self, queries: &[P]) -> Vec<f64> {
        self.score_points(queries)
    }

    fn score_one(&self, point: &P) -> f64 {
        Fitted::score_one(self, point)
    }

    fn score_cutoff(&self) -> f64 {
        Fitted::score_cutoff(self)
    }

    fn distance_stats(&self) -> DistanceStats {
        Fitted::distance_stats(self)
    }

    fn top_k(&self, k: usize) -> Vec<Microcluster> {
        Fitted::top_k(self, k)
    }

    fn stats(&self) -> ModelStats {
        Fitted::stats(self)
    }

    fn export(&self) -> Option<ModelExport<P>> {
        Some(Fitted::export(self))
    }
}

/// Scores one serving-path query: nearest reference neighbor, quantized
/// down to the grid, coded as `⟨1 + g/r₁⟩`. Free function so the parallel
/// chunks of [`Fitted::score_points`] can share it without capturing.
fn score_query<P>(reference: &dyn RangeIndex<P>, radii: &[f64], r1: f64, q: &P) -> f64 {
    let nn = reference.knn(q, 1);
    let exact = nn.first().map_or(f64::INFINITY, |p| p.dist);
    let g = quantize_down(exact, radii);
    universal_code_length_f64(1.0 + g / r1)
}

/// Quantizes an exact nearest-inlier distance down to the radius grid the
/// way Alg. 4 lines 1–12 do for in-run outliers: the largest grid radius
/// at which the inlier neighborhood is still empty (`r_0 = 0`; capped at
/// `r_a` when even the largest radius finds no inlier). Shared with the
/// default `Model::score_cutoff` impl in [`crate::model`].
pub(crate) fn quantize_down(exact: f64, radii: &[f64]) -> f64 {
    let a = radii.len();
    for (k, &r) in radii.iter().enumerate() {
        if r >= exact {
            return if k == 0 { 0.0 } else { radii[k - 1] };
        }
    }
    radii[a - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::{BruteForceBuilder, SlimTreeBuilder};
    use mccatch_metric::{Euclidean, Levenshtein};

    fn blob_with_strays() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
            .collect();
        pts.push(vec![30.0, 30.0]);
        pts.push(vec![30.1, 30.0]);
        pts.push(vec![-40.0, 15.0]);
        pts
    }

    #[test]
    fn builder_validates() {
        assert!(McCatch::builder().build().is_ok());
        assert_eq!(
            McCatch::builder().num_radii(1).build().unwrap_err(),
            McCatchError::InvalidNumRadii { got: 1 }
        );
        assert!(matches!(
            McCatch::builder().max_plateau_slope(-2.0).build(),
            Err(McCatchError::InvalidSlope { .. })
        ));
        // Explicit c = 0 is clamped at resolution (seed-compatible), not
        // rejected: the legacy shims accepted it and must keep doing so.
        assert!(McCatch::builder().max_mc_cardinality(0).build().is_ok());
    }

    #[test]
    fn builder_sets_every_knob() {
        let det = McCatch::builder()
            .num_radii(9)
            .max_plateau_slope(0.2)
            .max_mc_cardinality(7)
            .threads(2)
            .build()
            .unwrap();
        assert_eq!(
            det.params(),
            &Params {
                num_radii: 9,
                max_plateau_slope: 0.2,
                max_mc_cardinality: Some(7),
                threads: 2,
            }
        );
    }

    #[test]
    fn detect_twice_is_identical() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det.fit(pts, Euclidean, SlimTreeBuilder::default()).unwrap();
        let a = fitted.detect();
        let b = fitted.detect();
        assert_eq!(a.outliers, b.outliers);
        assert_eq!(a.point_scores, b.point_scores);
        assert_eq!(a.microclusters, b.microclusters);
    }

    #[test]
    fn lazy_artifacts_match_detect_output() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det.fit(pts.clone(), Euclidean, BruteForceBuilder).unwrap();
        // Observability accessors before any detect() call.
        assert!(fitted.cutoff().d.is_finite());
        assert_eq!(fitted.oracle().points().len(), pts.len());
        let out = fitted.detect();
        assert_eq!(out.cutoff, *fitted.cutoff());
        assert_eq!(out.radii, fitted.radii());
        assert_eq!(out.stats.active_per_radius, fitted.active_per_radius());
    }

    #[test]
    fn score_points_ranks_outlier_queries_high() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det.fit(pts, Euclidean, SlimTreeBuilder::default()).unwrap();
        let scores = fitted.score_points(&[
            vec![0.55, 0.55],   // inside the blob
            vec![-40.0, -40.0], // far from everything
            vec![30.05, 30.0],  // on the known microcluster
        ]);
        assert!(scores[1] > scores[0], "{scores:?}");
        assert!(scores[2] > scores[0], "{scores:?}");
    }

    #[test]
    fn score_points_matches_in_run_scores_for_reference_points() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det
            .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
            .unwrap();
        let out = fitted.detect();
        // Outlier queries that *are* reference outliers reproduce their
        // in-run per-point scores (same g quantization, same formula).
        for &i in &out.outliers {
            let q = fitted.score_points(std::slice::from_ref(&pts[i as usize]));
            assert_eq!(q[0], out.point_scores[i as usize], "point {i}");
        }
    }

    #[test]
    fn degenerate_fits_are_well_formed() {
        let det = McCatch::builder().build().unwrap();

        let empty: Vec<Vec<f64>> = Vec::new();
        let fitted = det
            .fit(empty, Euclidean, SlimTreeBuilder::default())
            .unwrap();
        assert!(fitted.is_degenerate());
        let out = fitted.detect();
        assert!(out.microclusters.is_empty());
        assert_eq!(fitted.score_points(&[vec![1.0, 1.0]]), vec![0.0]);
        assert!(fitted.top_k(0).is_empty());
        assert!(fitted.stats().degenerate);

        let same = vec![vec![5.0, 5.0]; 40];
        let fitted = det
            .fit(same, Euclidean, SlimTreeBuilder::default())
            .unwrap();
        assert!(fitted.is_degenerate());
        assert_eq!(fitted.detect().point_scores, vec![0.0; 40]);
    }

    #[test]
    fn nondimensional_fit_and_score() {
        let mut words: Vec<String> = ["smith", "smyth", "smithe", "smit", "smiths", "smythe"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        words.push("xylophonist".into());
        let det = McCatch::builder().build().unwrap();
        let fitted = det
            .fit(words, Levenshtein, SlimTreeBuilder::default())
            .unwrap();
        let out = fitted.detect();
        assert!(out.is_outlier(6));
        let scores = fitted.score_points(&["smyths".to_string(), "zzzzzzzzzzzz".to_string()]);
        assert!(scores[1] > scores[0], "{scores:?}");
    }

    #[test]
    fn score_one_matches_score_points() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det.fit(pts, Euclidean, SlimTreeBuilder::default()).unwrap();
        let queries = vec![
            vec![0.55, 0.55],
            vec![-40.0, -40.0],
            vec![30.05, 30.0],
            vec![0.0, 0.0],
        ];
        let batch = fitted.score_points(&queries);
        for (q, &expected) in queries.iter().zip(&batch) {
            assert_eq!(fitted.score_one(q), expected, "query {q:?}");
        }
        // Degenerate fits score 0 without panicking.
        let degenerate = det
            .fit(
                Vec::<Vec<f64>>::new(),
                Euclidean,
                SlimTreeBuilder::default(),
            )
            .unwrap();
        assert_eq!(degenerate.score_one(&vec![1.0, 2.0]), 0.0);
    }

    #[test]
    fn score_cutoff_separates_outlier_queries() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det
            .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
            .unwrap();
        let out = fitted.detect();
        let threshold = fitted.score_cutoff();
        assert!(threshold.is_finite());
        // Every in-run outlier sits beyond the cutoff distance from its
        // nearest inlier, so its serving score exceeds the threshold…
        for &i in &out.outliers {
            assert!(
                fitted.score_one(&pts[i as usize]) > threshold,
                "outlier {i}"
            );
        }
        // …while reference inliers score 0, well below it.
        let inlier = (0..pts.len() as u32)
            .find(|i| !out.outliers.contains(i))
            .unwrap();
        assert!(fitted.score_one(&pts[inlier as usize]) <= threshold);

        // Degenerate fits flag nothing.
        let degenerate = det
            .fit(vec![vec![1.0]; 10], Euclidean, SlimTreeBuilder::default())
            .unwrap();
        assert_eq!(degenerate.score_cutoff(), f64::INFINITY);
    }

    #[test]
    fn erased_score_one_and_cutoff_match_fitted() {
        // The trait's default impls (one-element batch; grid
        // reconstruction from stats) must agree bit for bit with the
        // overridden fast paths.
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det
            .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
            .unwrap();
        let expected_cutoff = fitted.score_cutoff();
        let q = vec![30.05, 30.0];
        let expected_score = fitted.score_one(&q);
        let model = fitted.into_model();
        assert_eq!(model.score_one(&q), expected_score);
        assert_eq!(model.score_cutoff(), expected_cutoff);
        // Default-impl path: a minimal Model that only forwards the four
        // required methods, so score_one/score_cutoff fall back to the
        // provided defaults.
        struct Minimal(Arc<dyn Model<Vec<f64>>>);
        impl Model<Vec<f64>> for Minimal {
            fn detect_output(&self) -> McCatchOutput {
                self.0.detect_output()
            }
            fn score_batch(&self, queries: &[Vec<f64>]) -> Vec<f64> {
                self.0.score_batch(queries)
            }
            fn top_k(&self, k: usize) -> Vec<Microcluster> {
                self.0.top_k(k)
            }
            fn stats(&self) -> ModelStats {
                self.0.stats()
            }
        }
        let minimal = Minimal(model);
        assert_eq!(minimal.score_one(&q), expected_score);
        assert_eq!(minimal.score_cutoff(), expected_cutoff);
    }

    #[test]
    fn quantize_down_matches_alg4_convention() {
        let radii = [1.0, 2.0, 4.0, 8.0];
        assert_eq!(quantize_down(0.0, &radii), 0.0);
        assert_eq!(quantize_down(0.5, &radii), 0.0); // within r_1 -> r_0 = 0
        assert_eq!(quantize_down(1.5, &radii), 1.0);
        assert_eq!(quantize_down(4.0, &radii), 2.0); // inclusive counts
        assert_eq!(quantize_down(5.0, &radii), 4.0);
        assert_eq!(quantize_down(100.0, &radii), 8.0); // beyond the grid
    }

    #[test]
    fn top_k_and_stats_match_detect() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let fitted = det.fit(pts, Euclidean, SlimTreeBuilder::default()).unwrap();
        let out = fitted.detect();
        let stats = fitted.stats();
        assert_eq!(stats.num_outliers, out.outliers.len());
        assert_eq!(stats.num_microclusters, out.microclusters.len());
        assert_eq!(stats.cutoff_d, out.cutoff.d);
        assert!(!stats.degenerate);
        assert_eq!(fitted.top_k(0), out.microclusters);
        assert_eq!(fitted.top_k(1).as_slice(), &out.microclusters[..1]);
        assert_eq!(fitted.top_k(usize::MAX), out.microclusters);
    }

    #[test]
    fn fit_ref_matches_owned_fit() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let owned = det
            .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
            .unwrap()
            .detect();
        let borrowed = det
            .fit_ref(&pts, &Euclidean, &SlimTreeBuilder::default())
            .unwrap()
            .detect();
        assert_eq!(owned.outliers, borrowed.outliers);
        assert_eq!(owned.point_scores, borrowed.point_scores);
        assert_eq!(owned.microclusters, borrowed.microclusters);
    }

    #[test]
    fn erased_model_answers_like_the_fitted_handle() {
        let pts = blob_with_strays();
        let queries = vec![vec![0.55, 0.55], vec![-40.0, -40.0], vec![30.05, 30.0]];
        let det = McCatch::builder().build().unwrap();
        let fitted = det
            .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
            .unwrap();
        let direct = fitted.detect();
        let direct_scores = fitted.score_points(&queries);
        let direct_stats = fitted.stats();

        let model = det
            .fit(pts, Euclidean, SlimTreeBuilder::default())
            .unwrap()
            .into_model();
        let erased = model.detect_output();
        assert_eq!(direct.outliers, erased.outliers);
        assert_eq!(direct.point_scores, erased.point_scores);
        assert_eq!(direct_scores, model.score_batch(&queries));
        assert_eq!(direct.microclusters, model.top_k(0));
        assert_eq!(direct_stats, model.stats());
    }

    #[test]
    fn distance_stats_are_deterministic_and_populated() {
        let pts = blob_with_strays();
        let det = McCatch::builder().build().unwrap();
        let run = |threads: usize| {
            let det = McCatch::builder().threads(threads).build().unwrap();
            let fitted = det
                .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
                .unwrap();
            let out = fitted.detect();
            (out.stats.dist_build, out.stats.dist_count, fitted.stats())
        };
        let (build1, count1, stats1) = run(1);
        let (build8, count8, stats8) = run(8);
        assert!(build1 > 0, "tree construction computes distances");
        assert!(count1 > 0, "the counting stage computes distances");
        // Thread count never changes what is computed, only where.
        assert_eq!((build1, count1), (build8, count8));
        assert_eq!(stats1, stats8);
        assert_eq!(stats1.distance_evals, build1 + count1);
        // The live tree counter covers at least the fit-time work.
        let fitted = det
            .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
            .unwrap();
        let _ = fitted.detect();
        assert!(fitted.distance_stats().evals >= build1 + count1);
    }

    #[test]
    fn score_points_parallel_matches_serial() {
        // Same data, different thread counts: bit-identical batch scores
        // even for batches large enough to trigger the parallel path.
        let pts = blob_with_strays();
        let queries: Vec<Vec<f64>> = (0..257)
            .map(|i| vec![(i % 40) as f64 * 0.7 - 5.0, (i / 40) as f64 * 0.9 - 3.0])
            .collect();
        let serial = McCatch::builder()
            .threads(1)
            .build()
            .unwrap()
            .fit(pts.clone(), Euclidean, SlimTreeBuilder::default())
            .unwrap()
            .score_points(&queries);
        let parallel = McCatch::builder()
            .threads(8)
            .build()
            .unwrap()
            .fit(pts, Euclidean, SlimTreeBuilder::default())
            .unwrap()
            .score_points(&queries);
        assert_eq!(serial, parallel);
    }
}
