//! Disjoint-set union for the microcluster gelling step (Alg. 3 line 14:
//! "connected components of G").

/// Union–find with path halving and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
        true
    }

    /// Groups `0..n` into components, each sorted ascending; components
    /// ordered by their smallest element. Deterministic by construction.
    pub fn components(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut by_root: Vec<(u32, u32)> = (0..n as u32).map(|x| (self.find(x), x)).collect();
        by_root.sort_unstable();
        let mut out: Vec<Vec<u32>> = Vec::new();
        let mut last_root = u32::MAX;
        for (root, x) in by_root {
            if root != last_root {
                out.push(Vec::new());
                last_root = root;
            }
            out.last_mut().expect("pushed above").push(x);
        }
        // Order components by smallest member (first element, already asc).
        out.sort_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn unions_merge_components() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 2));
        assert!(uf.union(2, 4));
        assert!(!uf.union(0, 4)); // already merged
        assert!(uf.union(1, 5));
        let comps = uf.components();
        assert_eq!(comps, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
    }

    #[test]
    fn chain_unions_form_single_component() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let comps = uf.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 100);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.components().is_empty());
    }
}
