//! The end-to-end MCCATCH pipeline (Alg. 1).
//!
//! ```text
//! I.   Build tree T; estimate diameter l; derive radii R.
//! II.  Count neighbors per radius (sparse-focused); find plateaus;
//!      mount the Oracle plot.
//! III. Compute the MDL cutoff d; spot and gel microclusters.
//! IV.  Compute compression-based scores per microcluster and per point.
//! ```

use crate::counts::count_neighbors;
use crate::cutoff::{compute_cutoff, Cutoff};
use crate::gel::spot_microclusters;
use crate::oracle::OraclePlot;
use crate::params::{Params, RadiusGrid};
use crate::result::{McCatchOutput, Microcluster, RunStats};
use crate::score::score_microclusters;
use mccatch_index::{IndexBuilder, RangeIndex};
use mccatch_metric::Metric;
use std::time::Instant;

/// Runs MCCATCH over `points` with the given metric, index builder and
/// hyperparameters. Deterministic: identical inputs produce identical
/// outputs regardless of `params.threads`.
pub fn mccatch<P, M, B>(points: &[P], metric: &M, builder: &B, params: &Params) -> McCatchOutput
where
    P: Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
{
    let t_start = Instant::now();
    let n = points.len();
    let resolved = params.resolve(n);
    let mut stats = RunStats::default();

    // ---- Step I: tree, diameter, radii (Alg. 1 lines 1-3) ----
    let t0 = Instant::now();
    let tree = builder.build_all(points, metric);
    let diameter = tree.diameter_estimate();
    let grid = RadiusGrid::new(diameter, resolved.a);
    stats.t_build = t0.elapsed();

    // Degenerate data (empty, single point, or all-identical points): no
    // geometry to analyse — report no microclusters, zero scores.
    if n == 0 || grid.is_degenerate() {
        stats.t_total = t_start.elapsed();
        let empty_table = count_neighbors(&tree, points, grid.radii(), 0, 1);
        let oracle = OraclePlot::from_counts(&empty_table, grid.radii(), resolved.b, resolved.c);
        return McCatchOutput {
            microclusters: Vec::new(),
            point_scores: vec![0.0; n],
            outliers: Vec::new(),
            oracle,
            cutoff: Cutoff {
                cut_index: None,
                d: f64::INFINITY,
                mode_index: None,
            },
            radii: grid.radii().to_vec(),
            diameter,
            stats,
        };
    }

    // ---- Step II: Oracle plot (Alg. 2) ----
    let t0 = Instant::now();
    let table = count_neighbors(&tree, points, grid.radii(), resolved.c, resolved.threads);
    stats.t_count = t0.elapsed();
    stats.active_per_radius = table.active_per_radius.clone();
    let t0 = Instant::now();
    let oracle = OraclePlot::from_counts(&table, grid.radii(), resolved.b, resolved.c);
    stats.t_plateaus = t0.elapsed();

    // ---- Step III: cutoff + gelling (Alg. 3) ----
    let t0 = Instant::now();
    let cutoff = compute_cutoff(oracle.histogram(), grid.radii());
    let spotted = spot_microclusters(points, metric, builder, &oracle, &cutoff, grid.radii());
    stats.t_spot = t0.elapsed();

    // ---- Step IV: scores (Alg. 4) ----
    let t0 = Instant::now();
    let scores = score_microclusters(
        points,
        metric,
        builder,
        &spotted.clusters,
        &spotted.outliers,
        &oracle,
        grid.radii(),
        resolved.threads,
    );
    stats.t_score = t0.elapsed();

    // Rank most-strange-first (Probl. 1); deterministic tie-breaks.
    let mut microclusters: Vec<Microcluster> = spotted
        .clusters
        .into_iter()
        .zip(scores.mc_scores)
        .zip(scores.bridges)
        .zip(scores.mean_1nn)
        .map(|(((members, score), bridge_length), mean_1nn)| Microcluster {
            members,
            score,
            bridge_length,
            mean_1nn,
        })
        .collect();
    microclusters.sort_by(|x, y| {
        y.score
            .total_cmp(&x.score)
            .then(x.members.len().cmp(&y.members.len()))
            .then(x.members[0].cmp(&y.members[0]))
    });

    stats.t_total = t_start.elapsed();
    McCatchOutput {
        microclusters,
        point_scores: scores.point_scores,
        outliers: spotted.outliers,
        oracle,
        cutoff,
        radii: grid.radii().to_vec(),
        diameter,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::{BruteForceBuilder, KdTreeBuilder, SlimTreeBuilder};
    use mccatch_metric::{Euclidean, Levenshtein};

    /// Fig. 3-style toy scenario in 2-d: a dense inlier blob ('A' points),
    /// a halo point 'B', an 8-point microcluster ('C' core, 'D' halo) and a
    /// far isolate 'E'.
    fn fig3_points() -> (Vec<Vec<f64>>, Vec<u32>, Vec<u32>, u32, u32) {
        let mut pts = Vec::new();
        // Blob: 20x10 grid with 0.1 spacing, 200 points around origin.
        for i in 0..20 {
            for j in 0..10 {
                pts.push(vec![i as f64 * 0.1, j as f64 * 0.1]);
            }
        }
        // Halo point 'B' a bit off the blob.
        let b = pts.len() as u32;
        pts.push(vec![4.0, 2.0]);
        // Microcluster: 8 points near (30, 30), spacing 0.08.
        let mc_start = pts.len() as u32;
        for k in 0..8 {
            pts.push(vec![30.0 + 0.08 * (k % 4) as f64, 30.0 + 0.08 * (k / 4) as f64]);
        }
        let mc: Vec<u32> = (mc_start..mc_start + 8).collect();
        // Halo of the microcluster 'D'.
        pts.push(vec![31.3, 30.0]);
        // Isolate 'E'.
        let e = pts.len() as u32;
        pts.push(vec![70.0, -40.0]);
        (pts, mc, vec![], b, e)
    }

    #[test]
    fn toy_scenario_end_to_end() {
        let (pts, mc, _, b, e) = fig3_points();
        let out = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &Params::default());
        assert!(out.cutoff.d.is_finite());
        // The isolate and the halo point must be flagged.
        assert!(out.is_outlier(e), "isolate missed");
        assert!(out.is_outlier(b), "halo missed");
        // The microcluster members must be flagged and gelled together.
        for &i in &mc {
            assert!(out.is_outlier(i), "mc member {i} missed");
        }
        let cluster = out.cluster_of(mc[0]).expect("mc found");
        assert!(cluster.cardinality() >= 8, "mc fragmented: {:?}", cluster);
        // No blob point may be flagged.
        assert!(out.outliers.iter().all(|&i| i >= 200), "{:?}", out.outliers);
    }

    #[test]
    fn ranking_is_most_strange_first() {
        let (pts, ..) = fig3_points();
        let out = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &Params::default());
        for w in out.microclusters.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn outlier_points_score_higher_than_inliers() {
        let (pts, mc, _, _, e) = fig3_points();
        let out = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &Params::default());
        let max_inlier = (0..200u32)
            .map(|i| out.point_scores[i as usize])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(out.point_scores[e as usize] > max_inlier);
        assert!(out.point_scores[mc[0] as usize] > max_inlier);
    }

    #[test]
    fn kd_and_slim_and_brute_agree_on_flags() {
        let (pts, ..) = fig3_points();
        let p = Params::default();
        let slim = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &p);
        let brute = mccatch(&pts, &Euclidean, &BruteForceBuilder, &p);
        let kd = mccatch(&pts, &Euclidean, &KdTreeBuilder::default(), &p);
        // Brute and kd share the exact diameter (kd's bbox diagonal equals
        // the exact diameter only for axis-extremal pairs), so compare
        // outlier decisions rather than bit-identical internals.
        assert_eq!(brute.outliers, kd.outliers);
        // The slim-tree's diameter estimate differs slightly; decisions on
        // this widely separated toy dataset must nonetheless agree.
        assert_eq!(brute.outliers, slim.outliers);
    }

    #[test]
    fn deterministic_across_runs_and_threads() {
        let (pts, ..) = fig3_points();
        let p1 = Params {
            threads: 1,
            ..Params::default()
        };
        let p8 = Params {
            threads: 8,
            ..Params::default()
        };
        let a = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &p1);
        let b = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &p8);
        assert_eq!(a.outliers, b.outliers);
        assert_eq!(a.point_scores, b.point_scores);
        let scores_a: Vec<f64> = a.microclusters.iter().map(|m| m.score).collect();
        let scores_b: Vec<f64> = b.microclusters.iter().map(|m| m.score).collect();
        assert_eq!(scores_a, scores_b);
    }

    #[test]
    fn empty_dataset() {
        let pts: Vec<Vec<f64>> = vec![];
        let out = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &Params::default());
        assert!(out.microclusters.is_empty());
        assert!(out.point_scores.is_empty());
        assert_eq!(out.num_outliers(), 0);
    }

    #[test]
    fn single_point_dataset() {
        let pts = vec![vec![1.0, 2.0]];
        let out = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &Params::default());
        assert!(out.microclusters.is_empty());
        assert_eq!(out.point_scores, vec![0.0]);
    }

    #[test]
    fn identical_points_dataset() {
        let pts = vec![vec![5.0, 5.0]; 50];
        let out = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &Params::default());
        assert!(out.microclusters.is_empty());
        assert!(out.point_scores.iter().all(|&s| s == 0.0));
        assert_eq!(out.diameter, 0.0);
    }

    #[test]
    fn two_point_dataset() {
        let pts = vec![vec![0.0], vec![10.0]];
        let out = mccatch(&pts, &Euclidean, &SlimTreeBuilder::default(), &Params::default());
        // With n = 2 everything is ambiguous; just require no panic and a
        // well-formed output.
        assert_eq!(out.point_scores.len(), 2);
    }

    #[test]
    fn string_dataset_end_to_end() {
        // Many similar English-ish words + 2 far outliers sharing a shape.
        let mut words: Vec<String> = Vec::new();
        for a in ["sm", "br", "cl", "tr", "gr"] {
            for b in ["ith", "own", "ark", "een", "ant"] {
                for c in ["", "s", "er", "ing"] {
                    words.push(format!("{a}{b}{c}"));
                }
            }
        }
        words.push("xxxxxxxxxxxxxxxxxxxxxx".to_string());
        words.push("xxxxxxxxxxxxxxxxxxxxxy".to_string());
        let n = words.len() as u32;
        let out = mccatch(
            &words,
            &Levenshtein,
            &SlimTreeBuilder::default(),
            &Params::default(),
        );
        assert!(out.is_outlier(n - 2), "outlier word missed");
        assert!(out.is_outlier(n - 1), "outlier word missed");
        // The two x-words are close to each other: they should gel.
        let mc = out.cluster_of(n - 1).expect("cluster");
        assert_eq!(mc.members, vec![n - 2, n - 1]);
    }
}
