//! Output types of a MCCATCH run.

use crate::cutoff::Cutoff;
use crate::oracle::OraclePlot;
use std::time::Duration;

/// A detected microcluster: a set of outliers ranked by anomalousness.
#[derive(Debug, Clone, PartialEq)]
pub struct Microcluster {
    /// Member ids (ascending) into the analysed dataset.
    pub members: Vec<u32>,
    /// Anomaly score `s_j` (Def. 7): bits-per-point to describe the cluster
    /// relative to its nearest inlier. Higher is weirder.
    pub score: f64,
    /// 'Bridge's Length': smallest member-to-nearest-inlier distance.
    pub bridge_length: f64,
    /// Mean quantized 1NN distance of the members.
    pub mean_1nn: f64,
}

impl Microcluster {
    /// Number of members.
    pub fn cardinality(&self) -> usize {
        self.members.len()
    }

    /// Whether this is a 'one-off' outlier.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }
}

/// Wall-clock breakdown of one run, mirroring Alg. 1's four steps.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Step I: tree construction plus diameter estimation.
    pub t_build: Duration,
    /// Step II: neighbor counting joins.
    pub t_count: Duration,
    /// Step II: plateau extraction / Oracle plot assembly.
    pub t_plateaus: Duration,
    /// Step III: cutoff + gelling.
    pub t_spot: Duration,
    /// Step IV: scoring.
    pub t_score: Duration,
    /// End-to-end time.
    pub t_total: Duration,
    /// Active-set size before each counting join (sparse-focused
    /// diagnostics; length `a - 1`).
    pub active_per_radius: Vec<usize>,
    /// Distance evaluations spent in Step I (tree construction plus the
    /// diameter estimate). Deterministic: identical for identical inputs,
    /// regardless of thread count.
    pub dist_build: u64,
    /// Distance evaluations spent in the counting stage (the
    /// single-traversal multi-radius join of Step II) — the term Lemma 1
    /// bounds, and the machine-independent way to observe the counting
    /// speedup. Deterministic across thread counts.
    pub dist_count: u64,
}

/// Everything MCCATCH returns: ranked microclusters, their scores, scores
/// per point, and the intermediate artifacts (Oracle plot, cutoff, radii)
/// that make results explainable.
#[derive(Debug, Clone)]
pub struct McCatchOutput {
    /// Microclusters ranked most-strange-first (score desc; ties: smaller
    /// cardinality first, then smaller first member id).
    pub microclusters: Vec<Microcluster>,
    /// Per-point scores `w_i` aligned with the dataset.
    pub point_scores: Vec<f64>,
    /// Ids of all outliers (ascending) — the union of microcluster members.
    pub outliers: Vec<u32>,
    /// The Oracle plot (x = 1NN Distance, y = Group 1NN Distance).
    pub oracle: OraclePlot,
    /// The MDL cutoff.
    pub cutoff: Cutoff,
    /// The radius grid used.
    pub radii: Vec<f64>,
    /// Diameter estimate `l` the grid was derived from.
    pub diameter: f64,
    /// Timings.
    pub stats: RunStats,
}

impl McCatchOutput {
    /// True if point `i` was flagged as an outlier.
    pub fn is_outlier(&self, i: u32) -> bool {
        self.outliers.binary_search(&i).is_ok()
    }

    /// The microcluster containing point `i`, if any.
    pub fn cluster_of(&self, i: u32) -> Option<&Microcluster> {
        self.microclusters
            .iter()
            .find(|mc| mc.members.binary_search(&i).is_ok())
    }

    /// Total number of flagged outlier points.
    pub fn num_outliers(&self) -> usize {
        self.outliers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microcluster_helpers() {
        let mc = Microcluster {
            members: vec![3, 7],
            score: 10.0,
            bridge_length: 2.0,
            mean_1nn: 0.5,
        };
        assert_eq!(mc.cardinality(), 2);
        assert!(!mc.is_singleton());
        let s = Microcluster {
            members: vec![9],
            score: 12.0,
            bridge_length: 4.0,
            mean_1nn: 1.0,
        };
        assert!(s.is_singleton());
    }
}
