//! The 'Oracle' plot (Alg. 2): per point, 1NN Distance `x` versus
//! Group 1NN Distance `y`.
//!
//! `x_i` is the length of the first plateau — approximately the distance
//! from `p_i` to its nearest neighbor. Because plateau ends live on the
//! radius grid, MCCATCH treats `x_i` as *quantized to a grid radius*
//! (Alg. 3 compares `x_i == r_e` when histogramming and `r_e == ↑x` when
//! gelling); we store the end index and expose both the quantized value
//! (`x`) and the raw plateau length (`x_raw`). `y_i` is the raw length of
//! the middle plateau.

use crate::counts::CountTable;
use crate::plateau::{find_plateaus, PointPlateaus};

/// One point of the Oracle plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OraclePoint {
    /// Quantized 1NN Distance: the grid radius at the end of the first
    /// plateau, or 0 when the point has no first plateau.
    pub x: f64,
    /// Group 1NN Distance: length of the middle plateau, or 0 without one.
    pub y: f64,
    /// The underlying plateau indices.
    pub plateaus: PointPlateaus,
}

/// The Oracle plot `O = ({x_1..x_n}, {y_1..y_n})` plus the histogram of 1NN
/// distances that the cutoff computation consumes (Def. 4).
#[derive(Debug, Clone)]
pub struct OraclePlot {
    points: Vec<OraclePoint>,
    histogram: Vec<u64>,
}

impl OraclePlot {
    /// Builds the plot from the neighbor-count table (Alg. 2 lines 4–10).
    pub fn from_counts(table: &CountTable, radii: &[f64], b: f64, c: usize) -> Self {
        let a = radii.len();
        debug_assert_eq!(a, table.num_radii());
        let log_radii: Vec<f64> = radii.iter().map(|&r| r.log2()).collect();
        let mut points = Vec::with_capacity(table.num_points());
        let mut histogram = vec![0u64; a];
        for i in 0..table.num_points() {
            let plateaus = find_plateaus(table.row(i), &log_radii, b, c);
            let x = plateaus.first_end.map_or(0.0, |e| radii[e as usize]);
            let y = plateaus
                .middle
                .map_or(0.0, |(s, e)| radii[e as usize] - radii[s as usize]);
            if let Some(e) = plateaus.first_end {
                histogram[e as usize] += 1;
            }
            points.push(OraclePoint { x, y, plateaus });
        }
        Self { points, histogram }
    }

    /// Per-point plot entries, aligned with the dataset.
    pub fn points(&self) -> &[OraclePoint] {
        &self.points
    }

    /// The Histogram of 1NN Distances (Def. 4): bin `e` counts points whose
    /// quantized 1NN distance is `r_e`. Points without a first plateau
    /// (`x = 0`) fall in no bin.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Raw (non-quantized) first-plateau length of point `i`:
    /// `r_end − r_1`, the paper's literal Def. 2 length. Exposed for
    /// plotting; all decisions use the quantized `x`.
    pub fn x_raw(&self, i: usize, radii: &[f64]) -> f64 {
        self.points[i]
            .plateaus
            .first_end
            .map_or(0.0, |e| radii[e as usize] - radii[0])
    }

    /// Largest quantized 1NN distance among `ids`, as a radius-grid index
    /// (Alg. 3 lines 10–11: `↑x`). `None` if no listed point has a first
    /// plateau.
    pub fn max_x_index(&self, ids: &[u32]) -> Option<u16> {
        ids.iter()
            .filter_map(|&i| self.points[i as usize].plateaus.first_end)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::count_neighbors;
    use mccatch_index::BruteForce;
    use mccatch_metric::Euclidean;

    /// 1-d toy: pair at {0, 0.4}, singleton at 10, far singleton at 127.
    fn plot() -> (Vec<f64>, OraclePlot) {
        let pts = vec![vec![0.0], vec![0.4], vec![10.0], vec![127.0]];
        let idx = BruteForce::new(pts.clone(), (0..4).collect(), Euclidean);
        let radii: Vec<f64> = (0..9).map(|k| 127.0 / (1 << (8 - k)) as f64).collect();
        let table = count_neighbors(&idx, &pts, &radii, 4, 1);
        let plot = OraclePlot::from_counts(&table, &radii, 0.1, 4);
        (radii, plot)
    }

    #[test]
    fn x_values_quantize_to_grid() {
        let (radii, plot) = plot();
        // Point 0 has its neighbor at 0.4: counts are 1 for r < 0.4 (radii
        // ~0.496 already contains it? r0 = 127/256 = 0.496 > 0.4), so point
        // 0 sees 2 neighbors at r0 -> no first plateau -> x = 0.
        assert_eq!(plot.points()[0].x, 0.0);
        // Point 2 (at 10): nearest neighbor is at distance 9.6; counts stay
        // 1 through radii 0.496..7.94 (indices 0..4), then 3 at 15.875.
        assert_eq!(plot.points()[2].x, radii[4]);
    }

    #[test]
    fn histogram_counts_first_plateau_ends() {
        let (_, plot) = plot();
        let hist = plot.histogram();
        // Points 0,1 have x = 0 -> no bin. Points 2,3 land in their bins.
        assert_eq!(hist.iter().sum::<u64>(), 2);
    }

    #[test]
    fn max_x_index_over_subset() {
        let (_, plot) = plot();
        let m = plot.max_x_index(&[2, 3]);
        assert!(m.is_some());
        assert_eq!(plot.max_x_index(&[0, 1]), None);
        assert_eq!(plot.max_x_index(&[]), None);
    }

    #[test]
    fn x_raw_subtracts_first_radius() {
        let (radii, plot) = plot();
        let i = 2;
        let e = plot.points()[i].plateaus.first_end.unwrap() as usize;
        assert!((plot.x_raw(i, &radii) - (radii[e] - radii[0])).abs() < 1e-12);
    }
}
