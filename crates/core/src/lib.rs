//! # mccatch-core — the MCCATCH microcluster detector
//!
//! A from-scratch Rust implementation of
//! *"MCCATCH: Scalable Microcluster Detection in Dimensional and
//! Nondimensional Datasets"* (Sánchez Vinces, Cordeiro, Faloutsos —
//! ICDE 2024).
//!
//! MCCATCH finds **microclusters** — singleton ('one-off') outliers *and*
//! small groups of mutually close outliers — in any metric dataset, ranks
//! them by a compression-based anomaly score, and needs no hyperparameter
//! tuning. The pipeline (Alg. 1):
//!
//! 1. **Radii** — build a metric tree, estimate the diameter `l`, derive a
//!    geometric radius grid `R = {l/2^(a-1), …, l}` ([`params::RadiusGrid`]).
//! 2. **'Oracle' plot** — count neighbors per radius with count-only
//!    spatial joins ([`counts`]), extract per-point *plateaus* of the
//!    count-vs-radius curve ([`plateau`]), and read off each point's
//!    1NN Distance `x` and Group 1NN Distance `y` ([`oracle`]).
//! 3. **Spot** — derive the cutoff `d` from the histogram of 1NN distances
//!    by minimum description length ([`cutoff`]), flag outliers, and gel
//!    the grouped ones into microclusters via connected components
//!    ([`gel`]).
//! 4. **Score** — rate each microcluster by the bits-per-point needed to
//!    describe it relative to its nearest inlier ([`score`]); the scores
//!    provably follow the paper's Isolation and Cardinality axioms.
//!
//! ## Quick start
//!
//! Configuration is validated up front ([`McCatch::builder`] returns
//! [`McCatchError`] values, never panics), fitting builds the tree and
//! radius grid once, and the [`Fitted`] handle answers any number of
//! detection and scoring requests:
//!
//! ```
//! use mccatch_core::McCatch;
//! use mccatch_index::SlimTreeBuilder;
//! use mccatch_metric::Euclidean;
//!
//! // A dense blob plus two nearby strays and one far isolate.
//! let mut points: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
//!     .collect();
//! points.push(vec![30.0, 30.0]);
//! points.push(vec![30.1, 30.0]);
//! points.push(vec![-40.0, 15.0]);
//!
//! let fitted = McCatch::builder()
//!     .build()?
//!     .fit(points, Euclidean, SlimTreeBuilder::default())?;
//! let out = fitted.detect();
//! assert!(out.is_outlier(100) && out.is_outlier(101) && out.is_outlier(102));
//! // The two strays gel into one 2-point microcluster.
//! assert_eq!(out.cluster_of(100).unwrap().cardinality(), 2);
//! // Serving path: rank new points against the fitted reference set.
//! let scores = fitted.score_points(&[vec![0.5, 0.5], vec![25.0, -30.0]]);
//! assert!(scores[1] > scores[0]);
//! # Ok::<(), mccatch_core::McCatchError>(())
//! ```
//!
//! The [`Fitted`] handle owns its data (`Arc<[P]>`), metric, and index
//! builder, so it is `Send + Sync + 'static` whenever its components are:
//! fit once, then move the handle into a server or share it across
//! threads. [`Fitted::into_model`] erases the metric and index types into
//! an `Arc<dyn Model<P>>` (see [`model`]) so services need no generics
//! plumbing; the `mccatch` facade crate builds a swappable `ModelStore`
//! on top of it.
//!
//! The one-shot `mccatch` free function from earlier releases was
//! removed in 0.4.0, as announced in its deprecation note; one-shot
//! callers use the borrowed-slice [`McCatch::fit_ref`] convenience,
//! which is not deprecated and stays.

#![deny(missing_docs)]

pub mod counts;
pub mod cutoff;
pub mod detector;
pub mod error;
pub mod gel;
pub mod model;
pub mod oracle;
pub mod params;
pub mod plateau;
pub mod result;
pub mod score;
pub mod serve;
pub mod unionfind;

pub use cutoff::{compression_cost, compute_cutoff, Cutoff};
pub use detector::{Fitted, McCatch, McCatchBuilder};
pub use error::McCatchError;
pub use model::{Model, ModelExport, ModelStats};
pub use oracle::{OraclePlot, OraclePoint};
pub use params::{Params, RadiusGrid, Resolved};
pub use result::{McCatchOutput, Microcluster, RunStats};
pub use score::def7_score;
pub use serve::ModelStore;
