//! Spotting microclusters (Alg. 3): cut the Oracle plot at the Cutoff `d`
//! and gel nearby outliers into microclusters.
//!
//! * Outliers: `A = {p_i : x_i ≥ d ∨ y_i ≥ d}`.
//! * Nonsingleton candidates: `M = {p_i ∈ A : y_i ≥ d}` — points whose
//!   middle plateau says "I belong to a small, isolated group".
//! * Gelling: every outlier in `M` must end up with its nearest neighbor,
//!   so edges connect pairs of `M` within the smallest grid radius strictly
//!   larger than the largest 1NN distance `↑x` seen in `M`; connected
//!   components become the nonsingleton microclusters.
//! * Everything in `A \ M` becomes a singleton microcluster.

use crate::cutoff::Cutoff;
use crate::oracle::OraclePlot;
use crate::unionfind::UnionFind;
use mccatch_index::{pair_join, IndexBuilder, RangeIndex};
use mccatch_metric::Metric;
use std::sync::Arc;

/// The result of Alg. 3: outlier sets and gelled microclusters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpottedMcs {
    /// All outliers `A`, ascending ids.
    pub outliers: Vec<u32>,
    /// Members of nonsingleton candidates `M ⊆ A`, ascending ids.
    pub grouped: Vec<u32>,
    /// The gelled microclusters: components of `M` first (ordered by their
    /// smallest member), then singletons from `A \ M` (ascending). Members
    /// within each cluster are ascending.
    pub clusters: Vec<Vec<u32>>,
    /// The radius-grid index used for the gelling join, if `M` was
    /// non-empty.
    pub gel_radius_index: Option<usize>,
}

/// Runs Alg. 3 given the Oracle plot and the Cutoff. Takes the dataset
/// and metric as shared `Arc` handles so the gelling join's subset tree
/// reuses the fit's allocations.
pub fn spot_microclusters<P, M, B>(
    points: &Arc<[P]>,
    metric: &Arc<M>,
    builder: &B,
    oracle: &OraclePlot,
    cutoff: &Cutoff,
    radii: &[f64],
) -> SpottedMcs
where
    P: Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
{
    let d = cutoff.d;
    let mut outliers = Vec::new();
    let mut grouped = Vec::new();
    if d.is_finite() {
        for (i, op) in oracle.points().iter().enumerate() {
            let is_outlier = op.x >= d || op.y >= d;
            if is_outlier {
                outliers.push(i as u32);
                if op.y >= d {
                    grouped.push(i as u32);
                }
            }
        }
    }
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    let mut gel_radius_index = None;
    if !grouped.is_empty() {
        // ↑x as a grid index; the join radius is the next-larger radius
        // (Alg. 3 line 12) so a point and its 1NN cannot be split apart.
        // With no finite ↑x in M (every member has a neighbor below r_1),
        // the smallest radius r_1 is already "larger than ↑x = 0".
        let a = radii.len();
        let join_idx = match oracle.max_x_index(&grouped) {
            Some(e) => ((e as usize) + 1).min(a - 1),
            None => 0,
        };
        gel_radius_index = Some(join_idx);
        let tree = builder.build(Arc::clone(points), grouped.clone(), Arc::clone(metric));
        let pairs = pair_join(&tree, points, &grouped, radii[join_idx]);
        debug_assert_eq!(tree.len(), grouped.len());
        // Union-find over positions within `grouped` (ids are sorted, so
        // binary search gives the position).
        let mut uf = UnionFind::new(grouped.len());
        for (u, v) in pairs {
            let pu = grouped.binary_search(&u).expect("member of M") as u32;
            let pv = grouped.binary_search(&v).expect("member of M") as u32;
            uf.union(pu, pv);
        }
        for comp in uf.components() {
            clusters.push(comp.into_iter().map(|p| grouped[p as usize]).collect());
        }
    }
    // Singletons: A \ M (both sorted; linear merge).
    let mut gi = grouped.iter().peekable();
    for &o in &outliers {
        if gi.peek() == Some(&&o) {
            gi.next();
        } else {
            clusters.push(vec![o]);
        }
    }
    SpottedMcs {
        outliers,
        grouped,
        clusters,
        gel_radius_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::count_neighbors;
    use crate::cutoff::compute_cutoff;
    use crate::oracle::OraclePlot;
    use crate::params::RadiusGrid;
    use mccatch_index::{IndexBuilder, SlimTreeBuilder};
    use mccatch_metric::Euclidean;

    /// 1-d scenario: a dense inlier blob, a 3-point microcluster far away,
    /// and one isolated point even farther.
    fn scenario() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.05]).collect(); // blob [0,3]
        pts.extend([vec![40.0], vec![40.05], vec![40.1]]); // microcluster
        pts.push(vec![90.0]); // isolate
        pts
    }

    fn run(pts: &[Vec<f64>]) -> (SpottedMcs, Cutoff) {
        let pts: Arc<[Vec<f64>]> = pts.to_vec().into();
        let metric = Arc::new(Euclidean);
        let builder = SlimTreeBuilder::default();
        let tree = builder.build_all(Arc::clone(&pts), Arc::clone(&metric));
        let grid = RadiusGrid::new(tree.diameter_estimate(), 15);
        let table = count_neighbors(&tree, &pts, grid.radii(), 7, 1);
        let oracle = OraclePlot::from_counts(&table, grid.radii(), 0.1, 7);
        let cut = compute_cutoff(oracle.histogram(), grid.radii());
        let spotted = spot_microclusters(&pts, &metric, &builder, &oracle, &cut, grid.radii());
        (spotted, cut)
    }

    #[test]
    fn finds_microcluster_and_isolate() {
        let pts = scenario();
        let (spotted, cut) = run(&pts);
        assert!(cut.d.is_finite());
        // The 3-point microcluster must gel into one cluster.
        assert!(
            spotted.clusters.contains(&vec![60, 61, 62]),
            "clusters: {:?}",
            spotted.clusters
        );
        // The isolate must be a singleton.
        assert!(spotted.clusters.contains(&vec![63]));
        // No inlier from the blob may be flagged.
        assert!(spotted.outliers.iter().all(|&i| i >= 60));
    }

    #[test]
    fn no_cutoff_means_no_outliers() {
        let cutoff = Cutoff {
            cut_index: None,
            d: f64::INFINITY,
            mode_index: None,
        };
        let pts: Arc<[Vec<f64>]> = scenario().into();
        let metric = Arc::new(Euclidean);
        let builder = SlimTreeBuilder::default();
        let tree = builder.build_all(Arc::clone(&pts), Arc::clone(&metric));
        let grid = RadiusGrid::new(tree.diameter_estimate(), 15);
        let table = count_neighbors(&tree, &pts, grid.radii(), 7, 1);
        let oracle = OraclePlot::from_counts(&table, grid.radii(), 0.1, 7);
        let spotted = spot_microclusters(&pts, &metric, &builder, &oracle, &cutoff, grid.radii());
        assert!(spotted.outliers.is_empty());
        assert!(spotted.clusters.is_empty());
        assert_eq!(spotted.gel_radius_index, None);
    }

    #[test]
    fn uniform_data_produces_few_or_no_outliers() {
        // A pure evenly-spaced line: no microclusters to find; allow a few
        // boundary artifacts but no grouped clusters away from the edge.
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let (spotted, _) = run(&pts);
        for cl in &spotted.clusters {
            assert!(cl.len() <= 2, "unexpected cluster {:?}", cl);
        }
    }
}
