//! The type-erased serving interface: [`Model`].
//!
//! [`crate::Fitted`] is generic over the point type, the metric, and the
//! index builder — three type parameters that every service struct holding
//! a fitted detector would otherwise have to thread through its own
//! signature. [`Model`] erases the metric and index choice behind an
//! object-safe trait: a server stores `Arc<dyn Model<P>>` and can swap in
//! a model fitted with a different metric or index without recompiling.
//!
//! The trait is `Send + Sync`, and [`crate::Fitted::into_model`] requires
//! `'static` components, so an `Arc<dyn Model<P>>` can be cloned into any
//! number of threads (`std::thread::spawn`, an async runtime, a request
//! pool) and every clone answers from the same one-time fit.
//!
//! ```
//! use mccatch_core::{McCatch, Model};
//! use mccatch_index::SlimTreeBuilder;
//! use mccatch_metric::Euclidean;
//! use std::sync::Arc;
//!
//! let mut points: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
//!     .collect();
//! points.push(vec![30.0, 30.0]);
//!
//! let fitted = McCatch::builder()
//!     .build()?
//!     .fit(points, Euclidean, SlimTreeBuilder::default())?;
//! let model: Arc<dyn Model<Vec<f64>>> = fitted.into_model();
//!
//! // The erased handle moves freely across threads.
//! let worker = {
//!     let model = Arc::clone(&model);
//!     std::thread::spawn(move || model.score_batch(&[vec![50.0, -50.0]]))
//! };
//! assert!(worker.join().unwrap()[0] > 0.0);
//! assert_eq!(model.stats().num_points, 101);
//! # Ok::<(), mccatch_core::McCatchError>(())
//! ```

use crate::params::{Params, RadiusGrid};
use crate::result::{McCatchOutput, Microcluster};
use mccatch_index::DistanceStats;
use mccatch_metric::universal_code_length_f64;
use std::sync::Arc;

/// An object-safe, thread-safe view of a fitted MCCATCH detector.
///
/// Obtained from [`crate::Fitted::into_model`]. All methods are `&self`
/// and answer from the one-time fit; expensive stages run on first use
/// and are cached, exactly like on the concrete [`crate::Fitted`] handle.
///
/// ```
/// use mccatch_core::{McCatch, Model};
/// use mccatch_index::KdTreeBuilder;
/// use mccatch_metric::Euclidean;
/// use std::sync::Arc;
///
/// let mut points: Vec<Vec<f64>> = (0..100)
///     .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
///     .collect();
/// points.push(vec![900.0, 900.0]);
///
/// // A service stores `Arc<dyn Model<P>>`: no metric or index generics.
/// let model: Arc<dyn Model<Vec<f64>>> = McCatch::builder()
///     .build()?
///     .fit(points, Euclidean, KdTreeBuilder::default())?
///     .into_model();
/// assert_eq!(model.detect_output().outliers, vec![100]);
/// assert_eq!(model.top_k(1).len(), 1);
/// let stats = model.stats();
/// assert_eq!((stats.num_points, stats.num_outliers), (101, 1));
/// assert!(stats.distance_evals > 0);
/// # Ok::<(), mccatch_core::McCatchError>(())
/// ```
pub trait Model<P>: Send + Sync {
    /// Runs the full pipeline and assembles the complete output — see
    /// [`crate::Fitted::detect`].
    fn detect_output(&self) -> McCatchOutput;

    /// Scores new points against the fitted reference set (the serving
    /// path) — see [`crate::Fitted::score_points`]. Large batches are
    /// scored in parallel chunks using the fit's resolved thread count;
    /// results are bit-identical regardless of threading.
    fn score_batch(&self, queries: &[P]) -> Vec<f64>;

    /// Scores a single query against the fitted reference set — the
    /// per-event serving path. Semantically identical to a one-element
    /// [`score_batch`](Self::score_batch); implementors should override
    /// it to skip the batch allocation (the [`crate::Fitted`] impl
    /// answers straight from the inlier tree), which matters when a
    /// streaming caller scores millions of individual events.
    fn score_one(&self, point: &P) -> f64 {
        self.score_batch(std::slice::from_ref(point))[0]
    }

    /// The serving-path score corresponding to the fitted MDL cutoff
    /// distance `d`: queries whose [`score_one`](Self::score_one) is
    /// **strictly above** this value sit farther than `d` from every
    /// reference inlier, i.e. they would have been flagged outliers had
    /// they been part of the reference set. Infinite when the fit is
    /// degenerate or no cut exists (then nothing is flagged).
    ///
    /// The default derives the value from [`stats`](Self::stats) by
    /// reconstructing the radius grid from the diameter and radius
    /// count; [`crate::Fitted`] overrides it with the fitted grid (the
    /// two agree bit for bit, since the grid is a pure function of
    /// those two numbers).
    fn score_cutoff(&self) -> f64 {
        let stats = self.stats();
        // `num_radii < 2` also guards RadiusGrid::new's `a >= 2`
        // contract against nonsensical third-party stats: invalid input
        // stays a value, never a panic.
        if stats.degenerate || !stats.cutoff_d.is_finite() || stats.num_radii < 2 {
            return f64::INFINITY;
        }
        let grid = RadiusGrid::new(stats.diameter, stats.num_radii);
        let radii = grid.radii();
        let g = crate::detector::quantize_down(stats.cutoff_d, radii);
        universal_code_length_f64(1.0 + g / radii[0])
    }

    /// Live distance-evaluation totals of the model's reference index:
    /// the fit cost **plus** every serving query answered from the main
    /// tree since — the number a `/metrics` endpoint exposes so serving
    /// load is observable per backend. Unlike
    /// [`ModelStats::distance_evals`] (stable per fit), this value grows
    /// with traffic.
    ///
    /// The default answers from [`stats`](Self::stats) (fit cost only);
    /// [`crate::Fitted`] overrides it with the live index counter.
    fn distance_stats(&self) -> DistanceStats {
        DistanceStats {
            evals: self.stats().distance_evals,
        }
    }

    /// The `k` highest-ranked (most strange) microclusters; `k = 0` means
    /// all of them.
    fn top_k(&self, k: usize) -> Vec<Microcluster>;

    /// Summary of the fit and its detection results, for health endpoints
    /// and logs.
    fn stats(&self) -> ModelStats;

    /// Everything needed to persist this model and re-derive it exactly:
    /// the reference points, the (fully resolved) hyperparameters, and
    /// the index backend's stable name. Because the whole pipeline is
    /// deterministic, refitting the exported points with the same
    /// parameters, metric, and backend reproduces the model bit for bit
    /// — so a snapshot never has to serialize tree internals.
    ///
    /// Returns `None` when the model cannot be exported (the default, so
    /// third-party [`Model`] impls keep compiling); [`crate::Fitted`]
    /// overrides it.
    fn export(&self) -> Option<ModelExport<P>> {
        None
    }
}

/// A persistable view of a fitted model, from [`Model::export`]: the
/// inputs from which a deterministic refit reproduces it exactly.
#[derive(Debug, Clone)]
pub struct ModelExport<P> {
    /// The reference points the model was fitted on, in fit order.
    pub points: Arc<[P]>,
    /// Hyperparameters with every data-dependent default already
    /// resolved (`max_mc_cardinality` is always `Some`, `threads`
    /// nonzero), so re-resolving them against the same `n` is exact.
    /// Thread count never changes results, only wall-clock time.
    pub params: Params,
    /// The index backend's stable name (see
    /// `IndexBuilder::backend_name`): a snapshot must be rebuilt with
    /// the same index family, since the diameter estimate — and hence
    /// the radius grid and every score — depends on the tree structure.
    pub backend: &'static str,
}

/// Summary statistics of a fitted model, as reported by [`Model::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelStats {
    /// Number of reference points `n`.
    pub num_points: usize,
    /// The diameter estimate `l` (Alg. 1 line 2).
    pub diameter: f64,
    /// Number of radii `a` in the grid.
    pub num_radii: usize,
    /// The MDL cutoff `d` (infinite when no cut exists).
    pub cutoff_d: f64,
    /// Number of flagged outliers.
    pub num_outliers: usize,
    /// Number of gelled microclusters.
    pub num_microclusters: usize,
    /// Distance evaluations spent fitting this model: tree construction,
    /// the diameter estimate, and the one-time counting stage. Stable for
    /// the lifetime of the fit (serving queries are not included) and
    /// identical across thread counts, so it is safe to compare between
    /// replicas or log from health endpoints.
    pub distance_evals: u64,
    /// Whether the fit was degenerate (empty, singleton, or zero-diameter
    /// data); degenerate models report no outliers and all-zero scores.
    pub degenerate: bool,
}
