//! Hyperparameters of MCCATCH (Alg. 1).
//!
//! The paper's point (goal G5, "Hands-Off") is that these never need
//! tuning: `a = 15`, `b = 0.1`, `c = ⌈n · 0.1⌉` were used in every
//! experiment, and Fig. 9 shows accuracy is flat in their neighborhood.

use crate::error::McCatchError;

/// MCCATCH hyperparameters with the paper's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Number of neighborhood radii `a` (default 15, must be ≥ 2). The
    /// radius grid is `{l/2^(a-1), …, l/2, l}` for diameter `l`.
    pub num_radii: usize,
    /// Maximum plateau slope `b` (default 0.1, must be ≥ 0): how fast the
    /// neighbor count may grow (in log-log space) within a plateau.
    pub max_plateau_slope: f64,
    /// Maximum microcluster cardinality `c`. `None` (default) means the
    /// paper's `⌈n · 0.1⌉`; `Some(k)` fixes an absolute bound.
    pub max_mc_cardinality: Option<usize>,
    /// Worker threads for neighbor counting; 0 means all available cores.
    /// Thread count never changes results, only wall-clock time.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_radii: 15,
            max_plateau_slope: 0.1,
            max_mc_cardinality: None,
            threads: 0,
        }
    }
}

impl Params {
    /// Checks the hyperparameter invariants without touching any data:
    /// `num_radii ≥ 2` and `max_plateau_slope ≥ 0` (and not NaN).
    ///
    /// An explicit `max_mc_cardinality` of 0 is *not* an error: it is
    /// clamped to 1 during resolution, exactly as the pre-staged-API
    /// releases did — the compatibility shims must keep their behavior.
    pub fn validate(&self) -> Result<(), McCatchError> {
        if self.num_radii < 2 {
            return Err(McCatchError::InvalidNumRadii {
                got: self.num_radii,
            });
        }
        if self.max_plateau_slope.is_nan() || self.max_plateau_slope < 0.0 {
            return Err(McCatchError::InvalidSlope {
                got: self.max_plateau_slope,
            });
        }
        Ok(())
    }

    /// Validates and resolves derived values for a dataset of `n` elements,
    /// reporting invalid hyperparameters as a [`McCatchError`] value.
    pub fn try_resolve(&self, n: usize) -> Result<Resolved, McCatchError> {
        self.validate()?;
        let c = self
            .max_mc_cardinality
            .unwrap_or_else(|| ((n as f64) * 0.1).ceil() as usize)
            .max(1);
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |t| t.get())
        } else {
            self.threads
        };
        Ok(Resolved {
            a: self.num_radii,
            b: self.max_plateau_slope,
            c,
            threads,
        })
    }

    /// Validates and resolves derived values for a dataset of `n` elements.
    ///
    /// # Panics
    /// Panics if the parameters are invalid; prefer [`Params::try_resolve`],
    /// which returns the failure as a [`McCatchError`].
    #[deprecated(since = "0.2.0", note = "use `Params::try_resolve` instead")]
    pub fn resolve(&self, n: usize) -> Resolved {
        self.try_resolve(n).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Parameters with data-dependent defaults resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resolved {
    /// Number of radii.
    pub a: usize,
    /// Maximum plateau slope.
    pub b: f64,
    /// Maximum microcluster cardinality (absolute).
    pub c: usize,
    /// Worker threads.
    pub threads: usize,
}

/// The geometric radius grid of Alg. 1 line 3:
/// `R = {l/2^(a-1), l/2^(a-2), …, l}` (ascending, 0-indexed here).
#[derive(Debug, Clone, PartialEq)]
pub struct RadiusGrid {
    radii: Vec<f64>,
    diameter: f64,
}

impl RadiusGrid {
    /// Builds the grid for estimated diameter `l` and `a` radii.
    pub fn new(diameter: f64, a: usize) -> Self {
        assert!(a >= 2);
        assert!(diameter >= 0.0);
        let radii = (0..a)
            .map(|k| diameter / (1u64 << (a - 1 - k)) as f64)
            .collect();
        Self { radii, diameter }
    }

    /// The ascending radii; `radii()[0]` is `r_1` of the paper and
    /// `radii()[a-1] == l`.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// The diameter estimate `l` the grid was derived from.
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// Number of radii `a`.
    pub fn len(&self) -> usize {
        self.radii.len()
    }

    /// Always false: a grid carries at least 2 radii by construction.
    pub fn is_empty(&self) -> bool {
        self.radii.is_empty()
    }

    /// True when the grid is degenerate (zero diameter): every radius is 0.
    pub fn is_degenerate(&self) -> bool {
        self.diameter <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = Params::default();
        assert_eq!(p.num_radii, 15);
        assert_eq!(p.max_plateau_slope, 0.1);
        assert_eq!(p.max_mc_cardinality, None);
    }

    #[test]
    fn resolve_derives_c_as_ten_percent_ceil() {
        let r = Params::default().try_resolve(1001).unwrap();
        assert_eq!(r.c, 101); // ceil(100.1)
        let r = Params::default().try_resolve(10).unwrap();
        assert_eq!(r.c, 1);
    }

    #[test]
    fn resolve_respects_explicit_c() {
        let p = Params {
            max_mc_cardinality: Some(42),
            ..Params::default()
        };
        assert_eq!(p.try_resolve(1_000_000).unwrap().c, 42);
    }

    #[test]
    fn resolve_clamps_c_to_one() {
        let r = Params::default().try_resolve(0).unwrap();
        assert_eq!(r.c, 1);
    }

    #[test]
    fn try_resolve_rejects_single_radius() {
        let p = Params {
            num_radii: 1,
            ..Params::default()
        };
        assert_eq!(
            p.try_resolve(10),
            Err(crate::error::McCatchError::InvalidNumRadii { got: 1 })
        );
    }

    #[test]
    fn try_resolve_rejects_negative_and_nan_slope() {
        for bad in [-0.1, f64::NAN] {
            let p = Params {
                max_plateau_slope: bad,
                ..Params::default()
            };
            assert!(matches!(
                p.try_resolve(10),
                Err(crate::error::McCatchError::InvalidSlope { .. })
            ));
        }
    }

    #[test]
    fn explicit_zero_cardinality_clamps_like_the_seed_releases() {
        let p = Params {
            max_mc_cardinality: Some(0),
            ..Params::default()
        };
        assert_eq!(p.try_resolve(10).unwrap().c, 1);
    }

    #[test]
    #[should_panic(expected = "num_radii")]
    fn legacy_resolve_still_panics() {
        let p = Params {
            num_radii: 1,
            ..Params::default()
        };
        #[allow(deprecated)]
        let _ = p.resolve(10);
    }

    #[test]
    fn radius_grid_is_geometric_and_ends_at_diameter() {
        let g = RadiusGrid::new(64.0, 7);
        assert_eq!(g.radii(), &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]);
        assert_eq!(g.len(), 7);
        assert!(!g.is_degenerate());
    }

    #[test]
    fn radius_grid_matches_paper_formula() {
        // r_e = l / 2^(a-e), e = 1..a (1-indexed).
        let (l, a) = (100.0, 15);
        let g = RadiusGrid::new(l, a);
        for e in 1..=a {
            let want = l / 2f64.powi((a - e) as i32);
            assert!((g.radii()[e - 1] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_grid() {
        let g = RadiusGrid::new(0.0, 15);
        assert!(g.is_degenerate());
        assert!(g.radii().iter().all(|&r| r == 0.0));
    }
}
