//! Typed errors for MCCATCH configuration.
//!
//! Invalid hyperparameters are *caller* conditions, not programming
//! errors: a service that accepts detection requests must be able to
//! reject a bad configuration as a value. Every public constructor
//! (`McCatch::new`, `McCatch::builder().build()`, `Params::try_resolve`)
//! returns `Result<_, McCatchError>`; only the deprecated legacy entry
//! points still panic, and they do so by unwrapping these errors.

use std::fmt;

/// Everything that can be wrong with a MCCATCH configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum McCatchError {
    /// `num_radii` (the paper's `a`) was below 2 — the radius grid needs
    /// at least `{l/2, l}`.
    InvalidNumRadii {
        /// The rejected value.
        got: usize,
    },
    /// `max_plateau_slope` (the paper's `b`) was negative or NaN.
    InvalidSlope {
        /// The rejected value.
        got: f64,
    },
}

impl fmt::Display for McCatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidNumRadii { got } => {
                write!(f, "num_radii (a) must be at least 2, got {got}")
            }
            Self::InvalidSlope { got } => {
                write!(f, "max_plateau_slope (b) must be non-negative, got {got}")
            }
        }
    }
}

impl std::error::Error for McCatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_parameter() {
        assert!(McCatchError::InvalidNumRadii { got: 1 }
            .to_string()
            .contains("num_radii"));
        assert!(McCatchError::InvalidSlope { got: -0.5 }
            .to_string()
            .contains("max_plateau_slope"));
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(McCatchError::InvalidNumRadii { got: 0 });
        assert!(e.to_string().contains("at least 2"));
    }
}
