//! Sparse-focused neighbor counting (Alg. 2 lines 1–3 plus the
//! implementation principles of Sec. IV-G).
//!
//! For each point and each radius of the grid we need the count of
//! neighbors *including self*, but only while the count is still at most
//! the maximum microcluster cardinality `c`:
//!
//! * **Sparse-focused principle** — radius `r_1` is counted for everyone;
//!   each subsequent radius is counted only for points whose previous count
//!   was `≤ c`. A point's first count above `c` is recorded exactly (it is
//!   needed to locate the end of its last unexcused plateau), after which
//!   the point leaves the active set and its remaining cells hold
//!   [`OVER`].
//! * **Small-radii-only principle** — no join runs for `r_a = l`: every
//!   point is a neighbor of every other at the diameter, so the last column
//!   is filled with `n` directly.
//! * **Count-only principle** — the underlying joins return counts, never
//!   pairs (see `mccatch_index::batch_multi_range_count`).
//!
//! Since the radius grid is known up front, [`count_neighbors`] runs **one
//! single-traversal join** over all `a - 1` joined radii: every point
//! descends the tree once and fills all of its columns simultaneously
//! (`RangeIndex::multi_range_count`), instead of re-descending once per
//! radius. The historical per-radius formulation is kept as
//! [`count_neighbors_per_radius`] — it is the executable specification the
//! single-traversal path is tested (and benchmarked) against, and the two
//! produce bit-identical [`CountTable`]s.

use mccatch_index::{batch_multi_range_count_into, batch_range_count, RangeIndex};

pub use mccatch_index::OVER;

/// Dense `n × a` table of neighbor counts, row per point, column per radius.
#[derive(Debug, Clone)]
pub struct CountTable {
    counts: Vec<u32>,
    n: usize,
    a: usize,
    /// Size of the active set before each radius' join — diagnostic for the
    /// sparse-focused principle (and for benchmarks).
    pub active_per_radius: Vec<usize>,
}

impl CountTable {
    /// The count row for point `i` (length `a`, entries may be [`OVER`]).
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.counts[i * self.a..(i + 1) * self.a]
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// Number of radii.
    pub fn num_radii(&self) -> usize {
        self.a
    }
}

/// Runs the counting stage for every radius except the last, applying the
/// sparse-focused cutoff `c`. `index` must contain all `n` points of
/// `points`; counts include the query point itself.
///
/// This is the **single-traversal** path (the hot loop of the whole
/// system): the active set is partitioned across threads once, and each
/// point fills all of its `a - 1` joined columns in one tree descent via
/// `RangeIndex::multi_range_count` — subtrees wholly inside a suffix of
/// the grid are bulk-added through their stored cardinality, subtrees out
/// of reach of every radius are skipped, and columns that can only end
/// [`OVER`] stop being refined as soon as a running count crosses `c`.
/// The output is bit-identical to [`count_neighbors_per_radius`].
pub fn count_neighbors<P, I>(
    index: &I,
    points: &[P],
    radii: &[f64],
    c: usize,
    threads: usize,
) -> CountTable
where
    P: Sync,
    I: RangeIndex<P>,
{
    let n = points.len();
    let a = radii.len();
    debug_assert!(a >= 2);
    let m = a - 1; // joined radii; r_a is filled directly
    let cap = c as u32;
    let queries: Vec<u32> = (0..n as u32).collect();
    // The join writes each point's m joined columns straight into its
    // a-wide row of the final table — no intermediate n × m buffer.
    let mut counts = vec![OVER; n * a];
    batch_multi_range_count_into(
        index,
        points,
        &queries,
        &radii[..m],
        cap,
        threads,
        &mut counts,
        a,
    );

    let mut active_per_radius = vec![0usize; m];
    for row in counts.chunks_mut(a) {
        // A point is active at radius k iff every earlier count stayed
        // <= c, i.e. its column k was computed at all (row semantics of
        // multi_range_count). Radius 0 is counted for everyone.
        active_per_radius[0] += 1;
        for (k, &q) in row[..m - 1].iter().enumerate() {
            if q == OVER || q > cap {
                break;
            }
            active_per_radius[k + 1] += 1;
        }
        // Small-radii-only principle: q_a = n without a join, for points
        // whose counts were still being tracked (the rest stay OVER, which
        // is equally informative: their count exceeded c earlier).
        let last = row[m - 1];
        if last != OVER && last <= cap {
            row[m] = n as u32;
        }
    }
    CountTable {
        counts,
        n,
        a,
        active_per_radius,
    }
}

/// The historical per-radius formulation of the counting stage: one
/// count-only join per radius, each re-descending the tree for every
/// still-active point. Kept as the executable specification of
/// [`count_neighbors`] (property tests assert bit-identical
/// [`CountTable`]s) and as the baseline the `bench_stages` benchmark
/// measures the single-traversal path against. Prefer
/// [`count_neighbors`] everywhere else.
pub fn count_neighbors_per_radius<P, I>(
    index: &I,
    points: &[P],
    radii: &[f64],
    c: usize,
    threads: usize,
) -> CountTable
where
    P: Sync,
    I: RangeIndex<P>,
{
    let n = points.len();
    let a = radii.len();
    debug_assert!(a >= 2);
    let mut counts = vec![OVER; n * a];
    let mut active: Vec<u32> = (0..n as u32).collect();
    let mut active_per_radius = Vec::with_capacity(a);
    let cap = c as u32;
    for (k, &r) in radii.iter().enumerate().take(a - 1) {
        active_per_radius.push(active.len());
        if active.is_empty() {
            break;
        }
        let batch = batch_range_count(index, points, &active, r, threads);
        let mut next_active = Vec::with_capacity(active.len());
        for (&i, &q) in active.iter().zip(&batch) {
            counts[i as usize * a + k] = q as u32;
            if q as u32 <= cap {
                next_active.push(i);
            }
        }
        active = next_active;
    }
    for &i in &active {
        counts[i as usize * a + (a - 1)] = n as u32;
    }
    while active_per_radius.len() < a - 1 {
        active_per_radius.push(0);
    }
    CountTable {
        counts,
        n,
        a,
        active_per_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::BruteForce;
    use mccatch_metric::Euclidean;

    /// 1-d layout: a tight pair {0, 0.001}, a mid point at 1, far point at 100.
    fn pts() -> Vec<Vec<f64>> {
        vec![vec![0.0], vec![0.001], vec![1.0], vec![100.0]]
    }

    fn table(c: usize) -> CountTable {
        let p = pts();
        let idx = BruteForce::new(p.clone(), (0..4).collect(), Euclidean);
        // Radii: 12.5, 25, 50, 100 won't see the structure; use a denser grid.
        let radii = vec![0.01, 0.1, 1.0, 10.0, 100.0];
        count_neighbors(&idx, &p, &radii, c, 1)
    }

    #[test]
    fn counts_match_manual_computation() {
        let t = table(100);
        // Point 0 (at 0.0): r=0.01 -> {0,1}; r=0.1 -> {0,1}; r=1 -> {0,1,2};
        // r=10 -> {0,1,2}; r=100 -> all (filled as n).
        assert_eq!(t.row(0), &[2, 2, 3, 3, 4]);
        // Point 2 (at 1.0): r=0.01 -> self; r=0.1 -> self; r=1 -> {0,1,2}.
        assert_eq!(t.row(2), &[1, 1, 3, 3, 4]);
        // Point 3 (at 100): alone until the final radius.
        assert_eq!(t.row(3), &[1, 1, 1, 1, 4]);
    }

    #[test]
    fn sparse_focus_drops_points_above_c() {
        let t = table(2);
        // Point 0 crosses c=2 at radius index 2 (count 3): that value is
        // recorded exactly, later cells are OVER.
        assert_eq!(t.row(0), &[2, 2, 3, OVER, OVER]);
        // Point 3 never crosses, so its last column is n.
        assert_eq!(t.row(3), &[1, 1, 1, 1, 4]);
    }

    #[test]
    fn active_set_shrinks() {
        let t = table(2);
        // Radii joins: all 4 active at first three radii (counts <= 2 until
        // index 2), then points 0,1,2 (counts 3) drop out, leaving 1 active.
        assert_eq!(t.active_per_radius, vec![4, 4, 4, 1]);
    }

    #[test]
    fn last_radius_never_joined() {
        // With c = n the last column must be n for every point even though
        // no join ran at r_a.
        let t = table(4);
        for i in 0..4 {
            assert_eq!(t.row(i)[4], 4);
        }
    }

    #[test]
    fn counts_are_non_decreasing_until_over() {
        let t = table(3);
        for i in 0..4 {
            let row = t.row(i);
            let mut prev = 0;
            for &q in row.iter().take_while(|&&q| q != OVER) {
                assert!(q >= prev);
                prev = q;
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let p: Vec<Vec<f64>> = (0..500).map(|i| vec![(i % 71) as f64]).collect();
        let idx = BruteForce::new(p.clone(), (0..500).collect(), Euclidean);
        let radii = vec![0.5, 2.0, 8.0, 32.0, 128.0];
        let a = count_neighbors(&idx, &p, &radii, 50, 1);
        let b = count_neighbors(&idx, &p, &radii, 50, 8);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn single_traversal_matches_per_radius_reference() {
        let p: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 53) % 89) as f64])
            .collect();
        let idx = BruteForce::new(p.clone(), (0..300).collect(), Euclidean);
        let radii = vec![0.5, 2.0, 8.0, 32.0, 128.0, 512.0];
        for c in [1usize, 5, 30, 300] {
            for threads in [1usize, 4] {
                let new = count_neighbors(&idx, &p, &radii, c, threads);
                let old = count_neighbors_per_radius(&idx, &p, &radii, c, 1);
                assert_eq!(new.counts, old.counts, "c={c} threads={threads}");
                assert_eq!(
                    new.active_per_radius, old.active_per_radius,
                    "c={c} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn both_paths_handle_empty_input() {
        let p: Vec<Vec<f64>> = vec![];
        let idx = BruteForce::new(p.clone(), vec![], Euclidean);
        let radii = vec![1.0, 2.0];
        let new = count_neighbors(&idx, &p, &radii, 3, 1);
        let old = count_neighbors_per_radius(&idx, &p, &radii, 3, 1);
        assert_eq!(new.counts, old.counts);
        assert_eq!(new.active_per_radius, old.active_per_radius);
        assert_eq!(new.num_points(), 0);
    }
}
