//! Compression-based anomaly scores (Alg. 4 / Def. 7, Fig. 5).
//!
//! A microcluster's score is the *cost per point* of describing it in terms
//! of its nearest inlier: cardinality ①, nearest-inlier identifier ②, the
//! 'Bridge's Length' ③, and one average-1NN-distance delta per remaining
//! member ④. Farther microclusters cost more per point (Isolation axiom);
//! bigger microclusters dilute the fixed costs (Cardinality axiom).

use crate::oracle::OraclePlot;
use mccatch_index::{batch_range_count, IndexBuilder, RangeIndex};
use mccatch_metric::{universal_code_length, universal_code_length_f64, Metric};
use std::sync::Arc;

/// Scores for the microclusters and every point.
#[derive(Debug, Clone, PartialEq)]
pub struct McScores {
    /// Score per microcluster, aligned with the input cluster list.
    pub mc_scores: Vec<f64>,
    /// 'Bridge's Length' per microcluster: the smallest distance from any
    /// member to its nearest inlier.
    pub bridges: Vec<f64>,
    /// Mean (quantized) 1NN distance per microcluster.
    pub mean_1nn: Vec<f64>,
    /// Per-point scores `w_i = ⟨1 + g_i/r_1⟩` (Alg. 4 line 22), for full
    /// rankings and for AUROC comparisons against per-point baselines.
    pub point_scores: Vec<f64>,
    /// `g_i`: distance to the nearest inlier (outliers) or the quantized
    /// 1NN distance (inliers).
    pub nearest_inlier_dist: Vec<f64>,
}

/// Ids in `0..n` not present in `sorted` (which must be ascending) —
/// the inlier set as the complement of the outlier set. Shared by the
/// scoring joins here and the serving path's inlier index.
pub(crate) fn complement_of_sorted(n: usize, sorted: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(n - sorted.len());
    let mut si = sorted.iter().peekable();
    for i in 0..n as u32 {
        if si.peek() == Some(&&i) {
            si.next();
        } else {
            out.push(i);
        }
    }
    out
}

/// Def. 7 applied to one microcluster.
///
/// `t` is the transformation cost of the metric space; `r1` the smallest
/// grid radius. The `⟨·⟩` arguments are clamped to ≥ 1 per the paper's
/// "add ones to account for zeros" note.
pub fn def7_score(cardinality: usize, n: usize, bridge: f64, mean_x: f64, r1: f64, t: f64) -> f64 {
    debug_assert!(cardinality >= 1);
    debug_assert!(r1 > 0.0);
    let m = cardinality as f64;
    let c1 = universal_code_length(cardinality.max(1) as u64); // ① cardinality
    let c2 = universal_code_length(n.max(1) as u64); // ② nearest inlier id (worst case)
    let c3 = t * universal_code_length_f64(bridge / r1); // ③ Bridge's Length
    let c4 = t * universal_code_length_f64(1.0 + (mean_x / r1).ceil()); // ④ avg 1NN dist
    (c1 + c2 + c3 + (m - 1.0) * c4) / m
}

/// Runs Alg. 4: nearest-inlier distances via per-radius count joins between
/// the outliers and an inlier tree, then Def. 7 per microcluster and the
/// per-point scores.
#[allow(clippy::too_many_arguments)]
pub fn score_microclusters<P, M, B>(
    points: &Arc<[P]>,
    metric: &Arc<M>,
    builder: &B,
    clusters: &[Vec<u32>],
    outliers: &[u32],
    oracle: &OraclePlot,
    radii: &[f64],
    threads: usize,
) -> McScores
where
    P: Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
{
    let n = points.len();
    let a = radii.len();
    let r1 = radii[0];
    debug_assert!(r1 > 0.0, "degenerate grids are handled by the pipeline");
    let t = metric.transformation_cost(points);

    // g_i: inliers use their quantized 1NN distance (Alg. 4 lines 13-15).
    let mut g: Vec<f64> = oracle.points().iter().map(|p| p.x).collect();

    // Outliers: the largest radius with zero inlier neighbors, found by
    // joining the unresolved outliers against the inlier tree per radius,
    // smallest first (Alg. 4 lines 1-12). r_0 is defined as 0.
    let inliers = complement_of_sorted(n, outliers);
    if !outliers.is_empty() && !inliers.is_empty() {
        let inlier_tree = builder.build(Arc::clone(points), inliers, Arc::clone(metric));
        let mut unresolved: Vec<u32> = outliers.to_vec();
        for (k, &r) in radii.iter().enumerate().take(a) {
            if unresolved.is_empty() {
                break;
            }
            let counts = batch_range_count(&inlier_tree, points, &unresolved, r, threads);
            let mut still = Vec::with_capacity(unresolved.len());
            for (&i, &q) in unresolved.iter().zip(&counts) {
                if q > 0 {
                    g[i as usize] = if k == 0 { 0.0 } else { radii[k - 1] };
                } else {
                    still.push(i);
                }
            }
            unresolved = still;
        }
        // No inlier within the largest radius: the diameter estimate was
        // short; use the largest radius as the (lower-bound) distance.
        for i in unresolved {
            g[i as usize] = radii[a - 1];
        }
        debug_assert!(inlier_tree.len() + outliers.len() == n);
    }

    // Per-microcluster scores (Alg. 4 lines 16-20).
    let mut mc_scores = Vec::with_capacity(clusters.len());
    let mut bridges = Vec::with_capacity(clusters.len());
    let mut mean_1nn = Vec::with_capacity(clusters.len());
    for members in clusters {
        debug_assert!(!members.is_empty());
        let bridge = members
            .iter()
            .map(|&i| g[i as usize])
            .fold(f64::INFINITY, f64::min);
        let mean_x = members
            .iter()
            .map(|&i| oracle.points()[i as usize].x)
            .sum::<f64>()
            / members.len() as f64;
        bridges.push(bridge);
        mean_1nn.push(mean_x);
        mc_scores.push(def7_score(members.len(), n, bridge, mean_x, r1, t));
    }

    // Per-point scores (Alg. 4 lines 21-24): w_i = <1 + g_i/r1>.
    let point_scores: Vec<f64> = g
        .iter()
        .map(|&gi| universal_code_length_f64(1.0 + gi / r1))
        .collect();

    McScores {
        mc_scores,
        bridges,
        mean_1nn,
        point_scores,
        nearest_inlier_dist: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R1: f64 = 1.0;
    const T: f64 = 2.0;
    const N: usize = 1000;

    #[test]
    fn isolation_axiom_on_def7() {
        // Same cardinality, larger bridge => larger score.
        let near = def7_score(10, N, 8.0, 1.0, R1, T);
        let far = def7_score(10, N, 64.0, 1.0, R1, T);
        assert!(far > near, "far={far} near={near}");
    }

    #[test]
    fn cardinality_axiom_on_def7() {
        // Same bridge, fewer members => larger score.
        let small = def7_score(10, N, 32.0, 1.0, R1, T);
        let large = def7_score(100, N, 32.0, 1.0, R1, T);
        assert!(small > large, "small={small} large={large}");
    }

    #[test]
    fn singleton_score_is_fixed_costs_only() {
        // m = 1: no ④ term; score = ① + ② + ③ (all divided by 1).
        let s = def7_score(1, N, 16.0, 0.0, R1, T);
        let want = universal_code_length(1)
            + universal_code_length(N as u64)
            + T * universal_code_length(16);
        assert!((s - want).abs() < 1e-12);
    }

    #[test]
    fn zero_bridge_is_clamped_not_nan() {
        let s = def7_score(3, N, 0.0, 0.5, R1, T);
        assert!(s.is_finite());
        assert!(s > 0.0);
    }

    #[test]
    fn score_monotone_in_bridge() {
        let mut prev = f64::NEG_INFINITY;
        for b in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            let s = def7_score(5, N, b, 1.0, R1, T);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn transformation_cost_scales_distance_terms() {
        let s1 = def7_score(4, N, 32.0, 2.0, R1, 1.0);
        let s3 = def7_score(4, N, 32.0, 2.0, R1, 3.0);
        // Only ③ and ④ scale with t, so s3 - s1 = 2 * (③ + 3·④)/4 with
        // t=1 deltas; just assert strict growth.
        assert!(s3 > s1);
    }
}
