//! The streaming subsystem's correctness contract: a paused stream is
//! bit-for-bit a batch run.
//!
//! For random event sequences, freezing the stream (no more ingest),
//! refitting, and scoring must equal a fresh `McCatch::fit` +
//! `score_points` on the frozen window — same scores, same detection
//! output — on at least the kd and Slim-tree backends (the brute-force
//! ground truth rides along for free). Eviction order, window
//! snapshotting, and the background swap machinery must never perturb a
//! single bit.

use mccatch_core::McCatch;
use mccatch_index::{BruteForceBuilder, IndexBuilder, KdTreeBuilder, SlimTreeBuilder};
use mccatch_metric::Euclidean;
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use proptest::prelude::*;
use std::sync::Arc;

fn events() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0..50.0f64, 2), 4..120)
}

/// Streams `events` through a window of `capacity`, freezes, refits, and
/// checks the served model against a fresh batch fit on the same window.
fn assert_frozen_stream_matches_batch<B>(
    builder: B,
    events: &[Vec<f64>],
    capacity: usize,
) -> Result<(), TestCaseError>
where
    B: IndexBuilder<Vec<f64>, Euclidean> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let detector = McCatch::builder().build().expect("defaults are valid");
    let stream = StreamDetector::new(
        StreamConfig {
            capacity,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        detector.clone(),
        Euclidean,
        builder.clone(),
        Vec::<Vec<f64>>::new(),
    )
    .expect("valid config");
    for e in events {
        stream.ingest(e.clone());
    }

    // Freeze: no more ingest. Pin the model to the window.
    stream.refit_now().expect("refit");
    let window = stream.window_points();
    prop_assert_eq!(window.len(), events.len().min(capacity));
    prop_assert_eq!(&window[..], &events[events.len() - window.len()..]);

    // The reference: an ordinary batch fit on the same points.
    let batch = detector
        .fit(window.clone(), Euclidean, builder)
        .expect("batch fit");

    // Scoring the frozen window (and some probes beyond it) must agree
    // bit for bit.
    let mut probes = window.clone();
    probes.push(vec![1000.0, -1000.0]);
    probes.push(vec![0.05, 0.05]);
    let model = stream.model();
    prop_assert_eq!(model.score_batch(&probes), batch.score_points(&probes));
    for p in probes.iter().take(8) {
        prop_assert_eq!(model.score_one(p), batch.score_one(p));
    }
    prop_assert_eq!(model.score_cutoff(), batch.score_cutoff());

    // So must the full detection output on the window.
    let stream_out = model.detect_output();
    let batch_out = batch.detect();
    prop_assert_eq!(&stream_out.outliers, &batch_out.outliers);
    prop_assert_eq!(&stream_out.point_scores, &batch_out.point_scores);
    prop_assert_eq!(&stream_out.microclusters, &batch_out.microclusters);
    prop_assert_eq!(stream_out.cutoff, batch_out.cutoff);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn frozen_stream_equals_batch_fit_kd(evs in events(), cap in 4usize..80) {
        assert_frozen_stream_matches_batch(KdTreeBuilder::default(), &evs, cap)?;
    }

    #[test]
    fn frozen_stream_equals_batch_fit_slim(evs in events(), cap in 4usize..80) {
        assert_frozen_stream_matches_batch(SlimTreeBuilder::default(), &evs, cap)?;
    }

    #[test]
    fn frozen_stream_equals_batch_fit_brute(evs in events(), cap in 4usize..80) {
        assert_frozen_stream_matches_batch(BruteForceBuilder, &evs, cap)?;
    }

    // (No cross-backend score equality test on purpose: the diameter
    // estimate — and with it the radius grid — is derived from the index
    // structure, so kd and Slim-tree fits legitimately quantize to
    // different grids. The contract is stream == batch *per backend*.)
}

/// Scoring while a swap lands must never observe a torn model: the
/// `(model, generation)` pair is read atomically, generation tags are
/// monotone per ingesting thread, and every score matches what that
/// tagged model produces.
#[test]
fn concurrent_scoring_never_observes_a_torn_model() {
    let reference: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
        .collect();
    let stream = Arc::new(
        StreamDetector::new(
            StreamConfig {
                capacity: 4096,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            McCatch::builder().build().unwrap(),
            Euclidean,
            SlimTreeBuilder::default(),
            reference,
        )
        .unwrap(),
    );

    const REFITS: u64 = 6;
    const EVENTS_PER_THREAD: usize = 300;
    let ingesters: Vec<_> = (0..4)
        .map(|t| {
            let stream = Arc::clone(&stream);
            std::thread::spawn(move || {
                let mut last_gen = 0u64;
                for i in 0..EVENTS_PER_THREAD {
                    let p = vec![(i % 25) as f64 * 0.4, t as f64 + (i / 25) as f64 * 0.2];
                    let e = stream.ingest(p);
                    // Generation tags never go backwards within a thread.
                    assert!(
                        e.generation >= last_gen,
                        "generation regressed: {} after {last_gen}",
                        e.generation
                    );
                    assert!(e.generation <= REFITS, "tag beyond any completed swap");
                    assert!(e.score.is_finite());
                    last_gen = e.generation;
                }
                last_gen
            })
        })
        .collect();

    // Meanwhile, keep swapping models in via synchronous refits.
    for expected_gen in 1..=REFITS {
        assert_eq!(stream.refit_now().unwrap(), expected_gen);
    }
    let final_gens: Vec<u64> = ingesters.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(final_gens.iter().all(|&g| g <= REFITS));
    assert_eq!(stream.generation(), REFITS);
    let stats = stream.stats();
    assert_eq!(stats.generation, REFITS);
    assert_eq!(stats.refits_completed, REFITS);
    assert_eq!(stats.events_scored, 4 * EVENTS_PER_THREAD as u64);
}
