//! Configuration of the streaming detector: window shape and refit
//! scheduling.

use crate::error::StreamError;

/// When the background worker rebuilds the model on the current window.
///
/// Whatever the policy, an explicit
/// [`request_refit`](crate::StreamDetector::request_refit) (asynchronous)
/// or [`refit_now`](crate::StreamDetector::refit_now) (synchronous) is
/// always available — `Manual` simply means *only* those.
#[derive(Debug, Clone, PartialEq)]
pub enum RefitPolicy {
    /// Never refit automatically; only on explicit request.
    Manual,
    /// Request a refit after every `n` ingested events (`n >= 1`).
    EveryN(u64),
    /// Request a refit when, among the last `recent` scored events, the
    /// fraction scoring above the serving model's
    /// [`score_cutoff`](mccatch_core::Model::score_cutoff) reaches
    /// `threshold` — the signal that the reference set no longer
    /// describes the traffic (concept drift). The tracker needs `recent`
    /// events of history before it can fire and is reset after each
    /// trigger, so refit requests are at least `recent` events apart.
    ///
    /// A model whose cutoff is infinite (degenerate cold start, or no
    /// MDL cut in the reference set) cannot discriminate at all; every
    /// event counts as drift against it, so a cold-started Drift stream
    /// earns its first refit after `recent` events instead of scoring
    /// zero forever.
    Drift {
        /// How many of the most recent events vote (`>= 1`).
        recent: usize,
        /// Flagged fraction in `(0, 1]` that triggers the refit.
        threshold: f64,
    },
}

impl Default for RefitPolicy {
    /// Refit every 256 events — a conservative cadence that keeps the
    /// model fresh without dominating throughput for typical windows.
    fn default() -> Self {
        Self::EveryN(256)
    }
}

/// Configuration of a [`StreamDetector`](crate::StreamDetector): the
/// sliding window's shape and the refit schedule.
///
/// ```
/// use mccatch_stream::{RefitPolicy, StreamConfig};
///
/// let config = StreamConfig {
///     capacity: 4096,
///     max_age_ticks: Some(60_000), // drop events older than a minute
///     policy: RefitPolicy::Drift { recent: 512, threshold: 0.2 },
///     ..StreamConfig::default()
/// };
/// assert!(config.validate().is_ok());
/// assert!(StreamConfig { capacity: 0, ..StreamConfig::default() }
///     .validate()
///     .is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Maximum number of events the sliding window retains (count-based
    /// eviction; must be `>= 1`). Ingesting into a full window evicts
    /// the oldest event.
    pub capacity: usize,
    /// Optional age horizon in ticks: after ingesting an event at tick
    /// `t`, events with tick `< t - max_age_ticks` are evicted even if
    /// the window has room. Ticks are logical time — [`ingest`] assigns
    /// the event sequence number, [`ingest_at`] accepts caller-supplied
    /// (non-decreasing) ticks such as epoch millis.
    ///
    /// [`ingest`]: crate::StreamDetector::ingest
    /// [`ingest_at`]: crate::StreamDetector::ingest_at
    pub max_age_ticks: Option<u64>,
    /// When the background worker refits on the current window.
    pub policy: RefitPolicy,
    /// Windows smaller than this are not refit by the background worker
    /// (the request is counted as skipped and the current model stays).
    /// Explicit [`refit_now`](crate::StreamDetector::refit_now) ignores
    /// this and fits whatever the window holds, down to an empty
    /// (degenerate) model.
    pub min_refit_points: usize,
    /// Bounded capacity of the refit command queue between ingest and
    /// the worker (`>= 1`). Requests arriving while the queue is full
    /// are *coalesced* — the pending refit will already see their
    /// events — not queued up; the default of 1 therefore means "at
    /// most one refit pending at any time".
    pub refit_queue: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            max_age_ticks: None,
            policy: RefitPolicy::default(),
            min_refit_points: 2,
            refit_queue: 1,
        }
    }
}

impl StreamConfig {
    /// Checks every knob, returning the first violation as a typed
    /// [`StreamError`]. Called by
    /// [`StreamDetector::new`](crate::StreamDetector::new), so an
    /// invalid configuration can never start a worker.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.capacity == 0 {
            return Err(StreamError::InvalidCapacity { got: 0 });
        }
        if self.refit_queue == 0 {
            return Err(StreamError::InvalidRefitQueue { got: 0 });
        }
        match self.policy {
            RefitPolicy::Manual => {}
            RefitPolicy::EveryN(n) => {
                if n == 0 {
                    return Err(StreamError::InvalidRefitEvery);
                }
            }
            RefitPolicy::Drift { recent, threshold } => {
                if recent == 0 {
                    return Err(StreamError::InvalidDriftRecent { got: recent });
                }
                if !(threshold > 0.0 && threshold <= 1.0) {
                    return Err(StreamError::InvalidDriftThreshold { got: threshold });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(StreamConfig::default().validate().is_ok());
    }

    #[test]
    fn each_knob_is_checked() {
        let base = StreamConfig::default();
        assert_eq!(
            StreamConfig {
                capacity: 0,
                ..base.clone()
            }
            .validate(),
            Err(StreamError::InvalidCapacity { got: 0 })
        );
        assert_eq!(
            StreamConfig {
                refit_queue: 0,
                ..base.clone()
            }
            .validate(),
            Err(StreamError::InvalidRefitQueue { got: 0 })
        );
        assert_eq!(
            StreamConfig {
                policy: RefitPolicy::EveryN(0),
                ..base.clone()
            }
            .validate(),
            Err(StreamError::InvalidRefitEvery)
        );
        assert_eq!(
            StreamConfig {
                policy: RefitPolicy::Drift {
                    recent: 0,
                    threshold: 0.5
                },
                ..base.clone()
            }
            .validate(),
            Err(StreamError::InvalidDriftRecent { got: 0 })
        );
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(
                StreamConfig {
                    policy: RefitPolicy::Drift {
                        recent: 8,
                        threshold: bad
                    },
                    ..base.clone()
                }
                .validate()
                .is_err(),
                "threshold {bad}"
            );
        }
    }
}
