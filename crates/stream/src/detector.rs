//! The streaming detector: per-event scoring over a sliding window with
//! a background refit worker.

use crate::config::{RefitPolicy, StreamConfig};
use crate::error::StreamError;
use crate::stats::StreamStats;
use crate::window::Window;
use mccatch_core::serve::ModelStore;
use mccatch_core::{McCatch, McCatchError, Model};
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// One scored event, as returned by
/// [`StreamDetector::ingest`] / [`StreamDetector::ingest_at`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEvent {
    /// The event's position in the stream (0-based, seed points
    /// included).
    pub seq: u64,
    /// The event's logical time: the caller-supplied tick
    /// ([`ingest_at`](StreamDetector::ingest_at)) or the sequence number
    /// ([`ingest`](StreamDetector::ingest)).
    pub tick: u64,
    /// The serving-path score `⟨1 + g/r₁⟩` against the model snapshot
    /// taken at arrival (see `Fitted::score_points` in `mccatch-core`).
    pub score: f64,
    /// Generation of the model the score was computed against — 0 for
    /// the initial fit, +1 per completed refit. Tags are monotone
    /// **per ingesting thread**; with multiple concurrent ingesters, an
    /// event with a higher `seq` can carry a lower generation (its
    /// snapshot was taken just before a swap another thread already
    /// observed), so order by generation, not by `seq`, when attributing
    /// scores to reference sets.
    pub generation: u64,
    /// Whether the score exceeds the model's
    /// [`score_cutoff`](mccatch_core::Model::score_cutoff): the event
    /// sits farther from every reference inlier than the fitted MDL
    /// cutoff distance — it would have been flagged an outlier had it
    /// been part of the reference set.
    pub flagged: bool,
}

/// Commands the ingest path sends to the background refit worker over
/// the bounded queue.
enum Cmd {
    Refit,
    Shutdown,
}

/// A point-in-time capture of everything a restarted process needs to
/// resume a stream where this one left off, as returned by
/// [`StreamDetector::checkpoint`] and consumed by
/// [`StreamDetector::restore`]. The capture is taken under the refit
/// lock, so the model, its generation, and the window are mutually
/// consistent (no refit swaps in between the reads).
///
/// The `mccatch-persist` crate serializes the model half of a checkpoint
/// as a versioned snapshot and the window half as an NDJSON replay log;
/// this struct itself is plain in-memory data, so the streaming crate
/// stays codec-free.
pub struct StreamCheckpoint<P> {
    /// The model being served at capture time.
    pub model: Arc<dyn Model<P>>,
    /// The model's generation (0 for the initial fit, +1 per refit). A
    /// restore resumes the counter here, so generation tags never
    /// regress across a restart.
    pub generation: u64,
    /// Events accepted so far (seed included) — the stream position a
    /// restored detector continues numbering [`ScoredEvent::seq`] from.
    pub seq: u64,
    /// The retained window as `(tick, point)` in arrival order, ticks
    /// non-decreasing.
    pub entries: Vec<(u64, P)>,
    /// Whether `entries` are a seed snapshot "at stream start" (all at
    /// one fabricated tick) rather than real ingested events: a restore
    /// then re-marks them as seeds, so the first real tick re-adopts the
    /// stream's time base exactly as [`StreamDetector::new`] seeds do.
    /// [`StreamDetector::checkpoint`] sets this to `false`; it is for
    /// restores that rebuild the window from the model's reference
    /// points because no replay log survived.
    pub entries_are_seed: bool,
}

impl<P> std::fmt::Debug for StreamCheckpoint<P> {
    // Skips the model (not `Debug`, and its `stats()` runs pipeline
    // stages) and the raw entries; counters identify the capture.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamCheckpoint")
            .field("generation", &self.generation)
            .field("seq", &self.seq)
            .field("entries", &self.entries.len())
            .field("entries_are_seed", &self.entries_are_seed)
            .finish_non_exhaustive()
    }
}

/// Ring of the most recent flagged/unflagged verdicts, driving
/// [`RefitPolicy::Drift`]. `recent == 0` disables tracking (non-drift
/// policies).
#[derive(Debug)]
struct DriftRing {
    flags: VecDeque<bool>,
    flagged: usize,
    recent: usize,
}

impl DriftRing {
    fn new(recent: usize) -> Self {
        Self {
            flags: VecDeque::with_capacity(recent.min(4096)),
            flagged: 0,
            recent,
        }
    }

    fn push(&mut self, flag: bool) {
        if self.recent == 0 {
            return;
        }
        self.flags.push_back(flag);
        self.flagged += flag as usize;
        while self.flags.len() > self.recent {
            let old = self.flags.pop_front().expect("non-empty");
            self.flagged -= old as usize;
        }
    }

    fn is_full(&self) -> bool {
        self.recent > 0 && self.flags.len() == self.recent
    }

    fn fraction(&self) -> f64 {
        self.flagged as f64 / self.recent as f64
    }

    fn clear(&mut self) {
        self.flags.clear();
        self.flagged = 0;
    }
}

/// Everything the ingest path mutates per event, under one brief mutex:
/// the window itself, the stream counters, and the policy trackers.
/// Scoring and refitting never hold this lock.
struct StreamState<P> {
    window: Window<P>,
    /// Events accepted so far (seed included); doubles as the auto tick.
    seq: u64,
    /// Events scored so far (seed points are seeded, not scored).
    scored: u64,
    /// Events since the last `EveryN` trigger.
    since_refit: u64,
    drift: DriftRing,
}

/// State shared between the `StreamDetector` handle and its worker.
struct Shared<P, M, B> {
    config: StreamConfig,
    mccatch: McCatch,
    metric: M,
    builder: B,
    store: ModelStore<P>,
    state: Mutex<StreamState<P>>,
    /// Serializes whole refits (snapshot → fit → swap) across the
    /// worker and `refit_now`: without it, a slower in-flight refit
    /// fitted on an **older** window snapshot could swap in *after* a
    /// newer one and regress the served model while still advancing the
    /// generation. The scoring hot path never touches this lock.
    refit_lock: Mutex<()>,
    refits_requested: AtomicU64,
    refits_coalesced: AtomicU64,
    refits_completed: AtomicU64,
    refits_skipped: AtomicU64,
    refits_failed: AtomicU64,
    queue_depth: AtomicUsize,
    fit_distance_evals: AtomicU64,
    shutdown: AtomicBool,
}

impl<P, M, B> Shared<P, M, B> {
    fn state(&self) -> MutexGuard<'_, StreamState<P>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A continuously-operating MCCATCH detector: a sliding window over the
/// most recent events, immediate per-event scoring against the current
/// model snapshot, and a background worker that refits the model on the
/// window and swaps it in atomically.
///
/// Built entirely from the batch primitives — `McCatch::fit`,
/// `Fitted::into_model`, `ModelStore::swap` — so a refit on a frozen
/// window produces **bit-identical** scores to a fresh batch fit on the
/// same points (property-tested across index backends). Scoring is
/// lock-free on a model snapshot; the window mutex is held only for the
/// push and the policy bookkeeping.
///
/// All methods take `&self`: share a `StreamDetector` across ingest
/// threads via `Arc` (it is `Send + Sync` whenever its components are).
/// Dropping the handle shuts the worker down and joins it.
///
/// ```
/// use mccatch_core::McCatch;
/// use mccatch_index::KdTreeBuilder;
/// use mccatch_metric::Euclidean;
/// use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
///
/// // Seed the window with reference traffic (plus one known isolate so
/// // the cutoff is finite)…
/// let mut seed: Vec<Vec<f64>> = (0..100)
///     .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
///     .collect();
/// seed.push(vec![500.0, 500.0]);
///
/// let config = StreamConfig {
///     capacity: 256,
///     policy: RefitPolicy::EveryN(64),
///     ..StreamConfig::default()
/// };
/// let stream = StreamDetector::new(
///     config,
///     McCatch::builder().build()?,
///     Euclidean,
///     KdTreeBuilder::default(),
///     seed,
/// )?;
///
/// // …then score each arriving event immediately.
/// let ok = stream.ingest(vec![4.5, 4.5]);
/// let bad = stream.ingest(vec![900.0, 900.0]);
/// assert!(bad.score > ok.score);
/// assert!(bad.flagged && !ok.flagged);
/// assert_eq!((ok.generation, bad.generation), (0, 0));
/// assert_eq!(stream.stats().events_scored, 2);
/// # Ok::<(), mccatch_stream::StreamError>(())
/// ```
pub struct StreamDetector<P, M, B> {
    shared: Arc<Shared<P, M, B>>,
    tx: SyncSender<Cmd>,
    worker: Option<JoinHandle<()>>,
}

impl<P, M, B> StreamDetector<P, M, B>
where
    P: Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    /// Validates `config`, seeds the sliding window with `seed` (oldest
    /// first; if `seed` exceeds the capacity only the newest events are
    /// retained), fits the initial model on the seeded window
    /// (generation 0 — an empty seed yields a degenerate model that
    /// scores everything 0 until the first refit), and starts the
    /// background refit worker.
    ///
    /// Seeds are a snapshot "at stream start": they all carry the same
    /// logical tick, so `max_age_ticks` never evicts within the seed
    /// itself, and they age out together once later events move the
    /// horizon past the start (in whatever time base the stream adopts
    /// — see [`ingest_at`](Self::ingest_at)).
    ///
    /// `detector`, `metric`, and `index_builder` are stored and reused
    /// for every refit, exactly as a batch caller would pass them to
    /// [`McCatch::fit`].
    pub fn new(
        config: StreamConfig,
        detector: McCatch,
        metric: M,
        index_builder: B,
        seed: impl IntoIterator<Item = P>,
    ) -> Result<Self, StreamError> {
        config.validate()?;
        let mut window = Window::new(config.capacity, config.max_age_ticks);
        let mut seq = 0u64;
        for p in seed {
            // All seeds are stamped at tick 0 — "at stream start" — so
            // the age horizon never applies within the seed itself
            // (capacity eviction still keeps only the newest); they age
            // out together once real events pass the horizon. The first
            // caller-supplied tick re-stamps them into the caller's
            // time base (see `Window::adopt_time_base`).
            window.push(0, p);
            seq += 1;
        }
        window.mark_seeded();
        let (model, evals) =
            fit_and_warm(&detector, &metric, &index_builder, window.points_in_order())?;
        let drift_recent = match config.policy {
            RefitPolicy::Drift { recent, .. } => recent,
            _ => 0,
        };
        let refit_queue = config.refit_queue;
        let shared = Arc::new(Shared {
            config,
            mccatch: detector,
            metric,
            builder: index_builder,
            store: ModelStore::new(model),
            refit_lock: Mutex::new(()),
            state: Mutex::new(StreamState {
                window,
                seq,
                scored: 0,
                since_refit: 0,
                drift: DriftRing::new(drift_recent),
            }),
            refits_requested: AtomicU64::new(0),
            refits_coalesced: AtomicU64::new(0),
            refits_completed: AtomicU64::new(0),
            refits_skipped: AtomicU64::new(0),
            refits_failed: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            fit_distance_evals: AtomicU64::new(evals),
            shutdown: AtomicBool::new(false),
        });
        Ok(Self::start(shared, refit_queue))
    }

    /// Rebuilds a detector from a [`StreamCheckpoint`] — the warm
    /// restart path. Unlike [`new`](Self::new) this performs **no
    /// initial fit**: the checkpoint's model starts serving immediately
    /// at its original generation, the window is rebuilt from the
    /// checkpoint's `(tick, point)` entries (capacity and age eviction
    /// apply under the *new* `config`, so a restore may legitimately
    /// retain fewer events than were captured), and `seq` resumes the
    /// stream position. Counters (`events_scored`, refit totals,
    /// `fit_distance_evals`) restart at zero — they are per-process
    /// observability, not stream state.
    ///
    /// Entries with a decreasing tick are rejected with
    /// [`StreamError::NonMonotonicTick`] — a corrupt or hand-edited
    /// replay log must not violate the window's tick invariant.
    pub fn restore(
        config: StreamConfig,
        detector: McCatch,
        metric: M,
        index_builder: B,
        checkpoint: StreamCheckpoint<P>,
    ) -> Result<Self, StreamError> {
        config.validate()?;
        let StreamCheckpoint {
            model,
            generation,
            seq,
            entries,
            entries_are_seed,
        } = checkpoint;
        let mut window = Window::new(config.capacity, config.max_age_ticks);
        let mut last: Option<u64> = None;
        for (tick, point) in entries {
            if let Some(l) = last {
                if tick < l {
                    return Err(StreamError::NonMonotonicTick { last: l, got: tick });
                }
            }
            last = Some(tick);
            window.push(tick, point);
        }
        if entries_are_seed {
            window.mark_seeded();
        }
        let drift_recent = match config.policy {
            RefitPolicy::Drift { recent, .. } => recent,
            _ => 0,
        };
        let refit_queue = config.refit_queue;
        let shared = Arc::new(Shared {
            config,
            mccatch: detector,
            metric,
            builder: index_builder,
            store: ModelStore::with_generation(model, generation),
            refit_lock: Mutex::new(()),
            state: Mutex::new(StreamState {
                window,
                seq,
                scored: 0,
                since_refit: 0,
                drift: DriftRing::new(drift_recent),
            }),
            refits_requested: AtomicU64::new(0),
            refits_coalesced: AtomicU64::new(0),
            refits_completed: AtomicU64::new(0),
            refits_skipped: AtomicU64::new(0),
            refits_failed: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            fit_distance_evals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        Ok(Self::start(shared, refit_queue))
    }

    /// Spawns the background refit worker over a fresh bounded queue and
    /// assembles the handle — the tail shared by [`new`](Self::new) and
    /// [`restore`](Self::restore).
    fn start(shared: Arc<Shared<P, M, B>>, refit_queue: usize) -> Self {
        let (tx, rx) = mpsc::sync_channel(refit_queue);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mccatch-stream-refit".to_owned())
                .spawn(move || worker_loop(shared, rx))
                .expect("spawn refit worker thread")
        };
        Self {
            shared,
            tx,
            worker: Some(worker),
        }
    }

    /// Captures a [`StreamCheckpoint`]: the served model, its
    /// generation, the stream position, and the window's `(tick,
    /// point)` entries — taken under the refit lock so no swap lands
    /// between the reads and the pieces are mutually consistent. Ingest
    /// can proceed concurrently; events landing after the capture are
    /// simply not part of it (persist them through a replay log to close
    /// the gap).
    pub fn checkpoint(&self) -> StreamCheckpoint<P> {
        let _serialized = self
            .shared
            .refit_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let (model, generation) = self.shared.store.snapshot_tagged();
        let st = self.shared.state();
        StreamCheckpoint {
            model,
            generation,
            seq: st.seq,
            entries: st.window.entries_in_order(),
            entries_are_seed: false,
        }
    }

    /// Ingests one event: scores it immediately against the current
    /// model snapshot (tagging the result with the model generation),
    /// slides it into the window, and lets the refit policy decide
    /// whether to wake the background worker. The event's tick advances
    /// one past the newest tick in the window (0 for the very first
    /// event of an unseeded stream), so plain `ingest` streams are
    /// always tick-monotone, one tick per event — and seeds, which all
    /// sit at the stream-start tick, age out `max_age_ticks` events
    /// after the start rather than immediately.
    ///
    /// The score is **prequential** (test-then-train): the event is
    /// scored against the model fitted *before* its arrival, then
    /// becomes part of the window future refits learn from.
    pub fn ingest(&self, point: P) -> ScoredEvent {
        self.ingest_inner(None, point)
            .expect("auto ticks are always monotone")
    }

    /// Like [`ingest`](Self::ingest), with a caller-supplied logical
    /// tick (e.g. epoch millis) driving age-based eviction. Ticks must
    /// be non-decreasing; a smaller tick is rejected with
    /// [`StreamError::NonMonotonicTick`] and the event is not ingested.
    ///
    /// The first caller-supplied tick establishes the stream's time
    /// base: seed points (which carry fabricated sequence-number ticks)
    /// are re-stamped to it, so an epoch-scale first tick does not
    /// age-evict the whole seeded reference window, and a small-unit
    /// tick is not spuriously rejected against seed sequence numbers.
    pub fn ingest_at(&self, tick: u64, point: P) -> Result<ScoredEvent, StreamError> {
        self.ingest_inner(Some(tick), point)
    }

    fn ingest_inner(&self, tick: Option<u64>, point: P) -> Result<ScoredEvent, StreamError> {
        if let Some(t) = tick {
            // Adopt the time base and reject stale ticks *before*
            // paying for the scoring query below; the authoritative
            // re-check under the same lock as the push still guards
            // against concurrent producers advancing the clock
            // meanwhile.
            let mut st = self.shared.state();
            st.window.adopt_time_base(t);
            let last_tick = st.window.last_tick().unwrap_or(0);
            if t < last_tick {
                return Err(StreamError::NonMonotonicTick {
                    last: last_tick,
                    got: t,
                });
            }
        }

        // Score outside any lock, on a consistent (model, generation)
        // pair: a concurrent swap can land before or after, never "mid".
        let (model, generation) = self.shared.store.snapshot_tagged();
        let mut score_span = mccatch_obs::trace::current().map(|h| h.child("score"));
        let score = model.score_one(&point);
        let cutoff = model.score_cutoff();
        let flagged = score > cutoff;
        if let Some(sp) = score_span.as_mut() {
            sp.attr("flagged", flagged.to_string());
        }
        drop(score_span);
        // An infinite cutoff means the model cannot discriminate at all
        // (degenerate cold start, or no MDL cut in the reference set).
        // The event itself is not flagged, but for the drift tracker
        // that *is* drift — otherwise a Drift-policy stream seeded cold
        // would score 0 forever and never earn its first refit.
        let drift_vote = flagged || cutoff.is_infinite();

        let mut want_refit = false;
        let (seq, tick) = {
            let mut st = self.shared.state();
            let last_tick = st.window.last_tick().unwrap_or(0);
            let tick = match tick {
                Some(t) => {
                    if t < last_tick {
                        return Err(StreamError::NonMonotonicTick {
                            last: last_tick,
                            got: t,
                        });
                    }
                    t
                }
                // Auto ticks advance one per event from the newest tick
                // in the window, not from the global sequence number:
                // seeds all sit at the stream-start tick, so counting
                // from `seq` (which includes the seed count) would jump
                // the clock by that count at the first event and
                // age-evict the whole seeded window at once.
                None => {
                    if st.window.last_tick().is_none() {
                        0
                    } else {
                        last_tick.saturating_add(1)
                    }
                }
            };
            let seq = st.seq;
            st.seq += 1;
            st.scored += 1;
            st.window.push(tick, point);
            match self.shared.config.policy {
                RefitPolicy::Manual => {}
                RefitPolicy::EveryN(n) => {
                    st.since_refit += 1;
                    if st.since_refit >= n {
                        st.since_refit = 0;
                        want_refit = true;
                    }
                }
                RefitPolicy::Drift { threshold, .. } => {
                    st.drift.push(drift_vote);
                    if st.drift.is_full() && st.drift.fraction() >= threshold {
                        st.drift.clear();
                        want_refit = true;
                    }
                }
            }
            (seq, tick)
        };
        if want_refit {
            self.request_refit();
        }
        Ok(ScoredEvent {
            seq,
            tick,
            score,
            generation,
            flagged,
        })
    }

    /// Asks the background worker to refit on the current window,
    /// without blocking. Returns `true` if the request was enqueued and
    /// `false` if it *coalesced* into a refit already pending (which
    /// will see this caller's events anyway — the worker snapshots the
    /// window when it starts fitting, not when the request was made).
    pub fn request_refit(&self) -> bool {
        self.shared.refits_requested.fetch_add(1, Ordering::AcqRel);
        // Increment *before* sending: the worker decrements as soon as
        // it pops the command, so incrementing after a successful send
        // could race it and wrap the counter below zero.
        self.shared.queue_depth.fetch_add(1, Ordering::AcqRel);
        match self.tx.try_send(Cmd::Refit) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                self.shared.refits_coalesced.fetch_add(1, Ordering::AcqRel);
                false
            }
            // The worker is gone (it only exits early if a fit
            // panicked): nothing is pending to merge into, so this is a
            // dropped refit, not a coalesced one — count it as failed
            // so a stale-model situation is visible in `StreamStats`.
            Err(TrySendError::Disconnected(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                self.shared.refits_failed.fetch_add(1, Ordering::AcqRel);
                false
            }
        }
    }

    /// Refits on the current window **synchronously**, on the calling
    /// thread, and swaps the new model in. Returns the generation this
    /// refit produced. Unlike worker refits this ignores
    /// `min_refit_points` and fits whatever the window holds (an empty
    /// window yields a degenerate model) — it is the "freeze the stream
    /// and pin the model to the window" primitive the equivalence tests
    /// are built on.
    ///
    /// Refits are serialized: if a background refit is mid-fit, this
    /// call waits for it, then fits the current window — so after it
    /// returns, the served model is never older than the window this
    /// call saw. (A refit request still *queued* at that point will
    /// re-fit the then-current window afterwards; on a frozen stream
    /// that reproduces the identical model.)
    pub fn refit_now(&self) -> Result<u64, StreamError> {
        self.shared.refits_requested.fetch_add(1, Ordering::AcqRel);
        run_refit(&self.shared).map_err(StreamError::from)
    }

    /// Scores a query against the current model **without** ingesting
    /// it (a read-only tap — the window does not change).
    pub fn score(&self, query: &P) -> f64 {
        self.shared.store.score_one(query)
    }

    /// Scores a batch against one consistent snapshot of the current
    /// model, without ingesting (see `ModelStore::score_batch`).
    pub fn score_batch(&self, queries: &[P]) -> Vec<f64> {
        self.shared.store.score_batch(queries)
    }

    /// A consistent snapshot of the currently served model. The handle
    /// stays valid (and keeps its fit alive) across later refits.
    pub fn model(&self) -> Arc<dyn Model<P>> {
        self.shared.store.snapshot()
    }

    /// The underlying [`ModelStore`] this detector serves from — for
    /// serving tiers (e.g. an HTTP frontend) that need the store's
    /// atomic tagged snapshots (`snapshot_tagged`) or consistent batch
    /// scoring without going through ingest.
    ///
    /// Swapping models into the store directly is safe (swaps are
    /// atomic and snapshots drain) but bypasses the refit
    /// serialization this detector's own refits go through; prefer
    /// [`refit_now`](Self::refit_now) / [`request_refit`](Self::request_refit)
    /// to change the served model.
    pub fn store(&self) -> &ModelStore<P> {
        &self.shared.store
    }

    /// Generation of the currently served model: 0 for the initial fit,
    /// +1 per completed refit.
    pub fn generation(&self) -> u64 {
        self.shared.store.generation()
    }

    /// Number of events currently retained in the sliding window.
    pub fn window_len(&self) -> usize {
        self.shared.state().window.len()
    }

    /// The retained window contents in arrival order — exactly the
    /// dataset the next refit will fit.
    pub fn window_points(&self) -> Vec<P> {
        self.shared.state().window.points_in_order()
    }

    /// The configuration this detector was built with.
    pub fn config(&self) -> &StreamConfig {
        &self.shared.config
    }

    /// A consistent snapshot of the subsystem's counters plus the
    /// currently served model's summary.
    pub fn stats(&self) -> StreamStats {
        let (model, generation) = self.shared.store.snapshot_tagged();
        let model_stats = model.stats();
        let sh = &self.shared;
        let st = sh.state();
        StreamStats {
            events_ingested: st.seq,
            events_scored: st.scored,
            events_evicted: st.window.evicted(),
            window_len: st.window.len(),
            window_capacity: sh.config.capacity,
            generation,
            refits_requested: sh.refits_requested.load(Ordering::Acquire),
            refits_coalesced: sh.refits_coalesced.load(Ordering::Acquire),
            refits_completed: sh.refits_completed.load(Ordering::Acquire),
            refits_skipped: sh.refits_skipped.load(Ordering::Acquire),
            refits_failed: sh.refits_failed.load(Ordering::Acquire),
            refit_queue_depth: sh.queue_depth.load(Ordering::Acquire),
            fit_distance_evals: sh.fit_distance_evals.load(Ordering::Acquire),
            model: model_stats,
        }
    }
}

impl<P, M, B> Drop for StreamDetector<P, M, B> {
    /// Signals the worker to stop (any still-queued refit is popped and
    /// skipped), then joins it. A worker mid-fit finishes that fit
    /// first — swaps stay atomic even during shutdown.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl<P, M, B> std::fmt::Debug for StreamDetector<P, M, B> {
    // Cheap on purpose: counters only, never the model (whose `stats()`
    // runs pipeline stages on first use).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamDetector")
            .field("generation", &self.shared.store.generation())
            .field("window_capacity", &self.shared.config.capacity)
            .finish_non_exhaustive()
    }
}

/// Fits a model on `points` and warms every serving artifact (counting,
/// spotting, scoring, the inlier tree) *before* the model is swapped in,
/// so the first event scored against a fresh generation pays no lazy
/// initialization. Returns the erased model plus the fit's deterministic
/// distance-evaluation cost.
fn fit_and_warm<P, M, B>(
    mccatch: &McCatch,
    metric: &M,
    builder: &B,
    points: Vec<P>,
) -> Result<(Arc<dyn Model<P>>, u64), McCatchError>
where
    P: Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let fitted = mccatch.fit(points, metric.clone(), builder.clone())?;
    let stats = fitted.stats();
    if let Some(first) = fitted.points().first() {
        // Builds the lazy inlier tree off the hot path.
        let _ = fitted.score_one(first);
    }
    Ok((fitted.into_model(), stats.distance_evals))
}

/// Snapshots the window, fits, warms, and swaps. Shared by the worker
/// and [`StreamDetector::refit_now`]; both paths keep the old model on
/// failure. The whole cycle runs under `refit_lock`, so concurrent
/// refits serialize: window snapshots are taken in swap order, a swap
/// never installs a model fitted on an older window than the one it
/// replaces, and the returned generation is the one *this* swap
/// produced.
fn run_refit<P, M, B>(shared: &Shared<P, M, B>) -> Result<u64, McCatchError>
where
    P: Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    use mccatch_obs::trace;
    let _serialized = shared.refit_lock.lock().unwrap_or_else(|e| e.into_inner());
    let points = shared.state().window.points_in_order();
    let refit_start = Instant::now();
    // A refit inside an already-traced request (synchronous
    // `refit_now`) nests its `stream_refit` span there; a background
    // refit gets a standalone trace when the process sampler is on, so
    // slow or failing worker-thread refits are tail-sampled too. The
    // span is made current so the five `fit_*` stages inside
    // `fit_and_warm` attach as its children; the stage histograms are
    // recorded directly (not via the free `record_stage`) because the
    // explicit spans here replace the flat stage attach.
    let background = (trace::current().is_none() && trace::sampler().enabled())
        .then(|| trace::Trace::start("refit", None));
    let refit_span = match &background {
        Some(t) => Some(t.root_span("stream_refit")),
        None => trace::current().map(|h| h.child("stream_refit")),
    };
    let cur = refit_span.as_ref().map(trace::TraceSpan::make_current);
    let outcome = fit_and_warm(&shared.mccatch, &shared.metric, &shared.builder, points);
    let result = match outcome {
        Ok((model, evals)) => {
            mccatch_obs::global()
                .record_stage_id(mccatch_obs::StageId::StreamRefit, refit_start.elapsed());
            shared.fit_distance_evals.fetch_add(evals, Ordering::AcqRel);
            let swap_start = Instant::now();
            let swap_span = refit_span.as_ref().map(|sp| sp.child("stream_swap"));
            shared.store.swap(model);
            drop(swap_span);
            mccatch_obs::global()
                .record_stage_id(mccatch_obs::StageId::StreamSwap, swap_start.elapsed());
            // Still under the refit lock, so this is our swap's
            // generation, not a later one's.
            let generation = shared.store.generation();
            shared.refits_completed.fetch_add(1, Ordering::AcqRel);
            Ok(generation)
        }
        Err(e) => {
            shared.refits_failed.fetch_add(1, Ordering::AcqRel);
            Err(e)
        }
    };
    drop(cur);
    drop(refit_span);
    if let Some(t) = background {
        // Correlate the standalone trace with the generation the swap
        // published (the same number `/metrics` and the stats endpoint
        // report), and tail-sample it like any request trace.
        let attrs = match &result {
            Ok(generation) => vec![("generation", generation.to_string())],
            Err(e) => {
                t.set_error();
                vec![("error", e.to_string())]
            }
        };
        let _ = trace::sampler().offer(t.finish(attrs));
    }
    result
}

/// The background worker: pops refit commands off the bounded queue and
/// rebuilds the model on the current window. Exits on `Shutdown` or when
/// every sender is gone.
fn worker_loop<P, M, B>(shared: Arc<Shared<P, M, B>>, rx: Receiver<Cmd>)
where
    P: Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Shutdown => break,
            Cmd::Refit => {
                shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                if shared.shutdown.load(Ordering::Acquire) {
                    continue;
                }
                if shared.state().window.len() < shared.config.min_refit_points {
                    shared.refits_skipped.fetch_add(1, Ordering::AcqRel);
                    continue;
                }
                // Failures are counted inside; the old model keeps
                // serving.
                let _ = run_refit(&shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::{KdTreeBuilder, SlimTreeBuilder};
    use mccatch_metric::Euclidean;
    use std::time::{Duration, Instant};

    fn grid_with_isolate() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        pts.push(vec![500.0, 500.0]);
        pts
    }

    fn manual_config(capacity: usize) -> StreamConfig {
        StreamConfig {
            capacity,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        }
    }

    fn stream_over(
        config: StreamConfig,
        seed: Vec<Vec<f64>>,
    ) -> StreamDetector<Vec<f64>, Euclidean, KdTreeBuilder> {
        StreamDetector::new(
            config,
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn checkpoint_restore_resumes_generation_window_and_seq() {
        let stream = stream_over(manual_config(64), grid_with_isolate());
        stream.ingest(vec![4.5, 4.5]);
        stream.ingest(vec![700.0, 700.0]);
        stream.refit_now().unwrap();
        stream.ingest(vec![5.5, 5.5]);
        let probe = vec![333.0, -21.0];
        let before = stream.score(&probe);

        let cp = stream.checkpoint();
        assert_eq!(cp.generation, 1);
        assert_eq!(cp.seq, 104); // 101 seeds + 3 events
        assert_eq!(cp.entries.len(), 64);
        assert!(!cp.entries_are_seed);
        drop(stream);

        let restored = StreamDetector::restore(
            manual_config(64),
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            cp,
        )
        .unwrap();
        // Same model, same generation, same window, same stream position.
        assert_eq!(restored.score(&probe), before);
        assert_eq!(restored.generation(), 1);
        assert_eq!(restored.window_len(), 64);
        let e = restored.ingest(vec![6.5, 6.5]);
        assert_eq!(e.seq, 104);
        assert_eq!(e.generation, 1);
        // Refits keep working after a restore and bump from the resumed
        // generation, not from zero.
        assert_eq!(restored.refit_now().unwrap(), 2);
    }

    #[test]
    fn restore_rejects_non_monotonic_entries() {
        let stream = stream_over(manual_config(16), grid_with_isolate());
        let mut cp = stream.checkpoint();
        cp.entries = vec![(5, vec![0.0, 0.0]), (3, vec![1.0, 1.0])];
        drop(stream);
        let err = StreamDetector::restore(
            manual_config(16),
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            cp,
        )
        .unwrap_err();
        assert_eq!(err, StreamError::NonMonotonicTick { last: 5, got: 3 });
    }

    /// Polls until `cond` holds or the deadline passes; background
    /// refits finish in well under a second on these tiny windows.
    fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn scores_and_tags_events_against_initial_fit() {
        let stream = stream_over(manual_config(512), grid_with_isolate());
        let ok = stream.ingest(vec![4.0, 4.0]);
        let bad = stream.ingest(vec![-300.0, 250.0]);
        assert_eq!(ok.score, 0.0, "a reference inlier scores 0");
        assert!(bad.score > 0.0);
        assert!(bad.flagged && !ok.flagged);
        assert_eq!((ok.generation, bad.generation), (0, 0));
        assert_eq!((ok.seq, bad.seq), (101, 102));
        let stats = stream.stats();
        assert_eq!(stats.events_ingested, 103);
        assert_eq!(stats.events_scored, 2);
        assert_eq!(stats.generation, 0);
        assert!(stats.fit_distance_evals > 0);
        assert_eq!(stats.model.num_points, 101);
    }

    #[test]
    fn prequential_scoring_matches_batch_model() {
        // Each event's score equals what the *current* batch model says,
        // and ingesting does not change the model until a refit.
        let stream = stream_over(manual_config(512), grid_with_isolate());
        let model = stream.model();
        for q in [vec![4.2, 4.2], vec![70.0, -3.0], vec![500.0, 499.0]] {
            let expected = model.score_one(&q);
            assert_eq!(stream.ingest(q).score, expected);
        }
        assert_eq!(stream.generation(), 0);
    }

    #[test]
    fn refit_now_pins_model_to_window() {
        let stream = stream_over(manual_config(64), grid_with_isolate());
        // Slide the window completely onto fresh traffic.
        for i in 0..64 {
            stream.ingest(vec![(i % 8) as f64 + 1000.0, (i / 8) as f64]);
        }
        assert_eq!(stream.window_len(), 64);
        let gen = stream.refit_now().unwrap();
        assert_eq!(gen, 1);
        // The new reference set is the shifted grid: its members are
        // inliers now, the old grid is far away.
        assert_eq!(stream.score(&vec![1003.0, 2.0]), 0.0);
        assert!(stream.score(&vec![3.0, 2.0]) > 0.0);
        let stats = stream.stats();
        assert_eq!(stats.refits_completed, 1);
        assert_eq!(stats.generation, 1);
    }

    #[test]
    fn every_n_policy_drives_background_refits() {
        let config = StreamConfig {
            capacity: 128,
            policy: RefitPolicy::EveryN(32),
            ..StreamConfig::default()
        };
        let stream = stream_over(config, grid_with_isolate());
        for i in 0..96 {
            stream.ingest(vec![(i % 10) as f64, (i / 10) as f64]);
        }
        // 96 events at EveryN(32) fire exactly 3 requests. Requests that
        // arrive while one is still queued coalesce into it (the refit
        // snapshots the window when it starts, so it sees their events);
        // every non-coalesced request is eventually processed.
        let requested = stream.stats().refits_requested;
        assert_eq!(requested, 3);
        assert!(
            wait_until(|| {
                let s = stream.stats();
                s.refits_completed + s.refits_skipped + s.refits_coalesced == requested
                    && s.refit_queue_depth == 0
            }),
            "worker never drained the EveryN refits: {:?}",
            stream.stats()
        );
        let stats = stream.stats();
        assert!(stats.refits_completed >= 1, "{stats:?}");
        assert_eq!(stats.refits_skipped, 0, "window is always large enough");
        assert_eq!(stats.generation, stats.refits_completed);
    }

    #[test]
    fn drift_policy_triggers_on_flagged_fraction() {
        let config = StreamConfig {
            capacity: 256,
            policy: RefitPolicy::Drift {
                recent: 16,
                threshold: 0.5,
            },
            ..StreamConfig::default()
        };
        let stream = stream_over(config, grid_with_isolate());
        // Healthy traffic: near-grid points (jittered off the reference
        // positions, well within the cutoff) never fill the drift ring
        // with flags.
        for i in 0..32 {
            stream.ingest(vec![(i % 10) as f64 + 0.3, (i / 10) as f64 + 0.3]);
        }
        assert_eq!(stream.stats().refits_requested, 0);
        // A tight burst of far-away traffic: every event is flagged, so
        // the ring fills and fires. The burst is denser than the grid
        // and larger than the microcluster cap `c`, so once refit onto
        // the window it becomes ordinary reference inliers.
        let burst: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![2000.0 + (i % 6) as f64 * 0.1, 2000.0 + (i / 6) as f64 * 0.1])
            .collect();
        for p in &burst {
            stream.ingest(p.clone());
        }
        let stats = stream.stats();
        assert!(stats.refits_requested >= 1, "{stats:?}");
        assert!(
            wait_until(|| stream.stats().refits_completed >= 1),
            "drift-triggered refit never completed: {:?}",
            stream.stats()
        );
        // After the refit the (early) burst is part of the reference set.
        assert!(
            wait_until(|| stream.score(&burst[2]) == 0.0),
            "burst member still scores {} at generation {}",
            stream.score(&burst[2]),
            stream.generation()
        );
    }

    #[test]
    fn drift_policy_escapes_a_cold_start() {
        // An empty-seed Drift stream serves a degenerate model (cutoff
        // infinite, every score 0). It must still earn its first refit:
        // an undiscriminating model counts every event as drift.
        let config = StreamConfig {
            capacity: 256,
            policy: RefitPolicy::Drift {
                recent: 12,
                threshold: 0.5,
            },
            ..StreamConfig::default()
        };
        let stream = stream_over(config, vec![]);
        assert_eq!(stream.score_batch(&[vec![9.0, 9.0]]), vec![0.0]);
        for i in 0..12 {
            let e = stream.ingest(vec![(i % 4) as f64, (i / 4) as f64]);
            assert!(!e.flagged, "cold-start events are not themselves flagged");
        }
        assert!(stream.stats().refits_requested >= 1, "{:?}", stream.stats());
        assert!(
            wait_until(|| stream.stats().refits_completed >= 1),
            "cold-start drift refit never completed: {:?}",
            stream.stats()
        );
        assert!(!stream.stats().model.degenerate);
    }

    #[test]
    fn window_capacity_and_age_evict() {
        let config = StreamConfig {
            capacity: 8,
            max_age_ticks: Some(3),
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        };
        let stream = stream_over(config, vec![]);
        for t in 0..10u64 {
            stream.ingest_at(t * 2, vec![t as f64, 0.0]).unwrap();
        }
        // Age horizon of 3 ticks at tick 18 keeps ticks 16 and 18 only.
        assert_eq!(stream.window_len(), 2);
        assert_eq!(stream.window_points(), vec![vec![8.0, 0.0], vec![9.0, 0.0]]);
        assert_eq!(stream.stats().events_evicted, 8);
        // Regressing ticks are rejected without ingesting.
        let err = stream.ingest_at(5, vec![0.0, 0.0]).unwrap_err();
        assert_eq!(err, StreamError::NonMonotonicTick { last: 18, got: 5 });
        assert_eq!(stream.window_len(), 2);
    }

    #[test]
    fn seeding_is_never_age_evicted_at_construction() {
        // A seed longer than the age horizon must survive construction
        // intact: seeds are a snapshot at stream start, not a sequence
        // spread across fabricated time.
        let config = StreamConfig {
            capacity: 10_000,
            max_age_ticks: Some(10),
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        };
        let stream = stream_over(config, grid_with_isolate());
        assert_eq!(stream.window_len(), 101);
        assert_eq!(stream.stats().events_evicted, 0);
        assert_eq!(stream.stats().model.num_points, 101);
    }

    #[test]
    fn regressing_ticks_stay_rejected_after_seeds_rotate_out() {
        // Capacity eviction can keep the window length equal to the
        // seed count; the time base must still not be re-adopted over
        // real events, so a regressing ingest_at stays an error.
        let config = StreamConfig {
            capacity: 4,
            policy: RefitPolicy::Manual,
            min_refit_points: 2,
            ..StreamConfig::default()
        };
        let stream = stream_over(config, vec![vec![0.0, 0.0]; 4]);
        for _ in 0..3 {
            stream.ingest(vec![1.0, 1.0]); // auto ticks 1..=3
        }
        let err = stream.ingest_at(1, vec![2.0, 2.0]).unwrap_err();
        assert_eq!(err, StreamError::NonMonotonicTick { last: 3, got: 1 });
    }

    #[test]
    fn auto_tick_streams_age_seeds_gradually() {
        // With auto ticks (one per event), seeds at the stream-start
        // tick must survive until max_age_ticks events have passed —
        // not vanish at the first event because the clock jumped by the
        // seed count.
        let config = StreamConfig {
            capacity: 10_000,
            max_age_ticks: Some(50),
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        };
        let stream = stream_over(config, grid_with_isolate());
        for i in 0..50 {
            let e = stream.ingest(vec![i as f64, 0.0]);
            assert_eq!(e.tick, i + 1, "one tick per event");
        }
        // Horizon is still at the start: seeds survive 50 events in.
        assert_eq!(stream.window_len(), 151);
        // One more event pushes the horizon past the start: the seed
        // snapshot ages out together.
        stream.ingest(vec![0.0, 0.0]);
        assert_eq!(stream.window_len(), 51);
        assert_eq!(stream.stats().events_evicted, 101);
    }

    #[test]
    fn first_real_tick_adopts_the_time_base_for_seeds() {
        let config = StreamConfig {
            capacity: 256,
            max_age_ticks: Some(60_000),
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        };
        // Epoch-scale ticks: the 101 seeds must survive the first real
        // event's age horizon instead of being mass-evicted.
        let stream = stream_over(config.clone(), grid_with_isolate());
        let epoch = 1_700_000_000_000u64;
        stream.ingest_at(epoch, vec![4.0, 4.0]).unwrap();
        assert_eq!(stream.window_len(), 102);
        assert_eq!(stream.stats().events_evicted, 0);
        // The adopted base still drives aging afterwards: everything at
        // the base tick (seeds and the first event) falls off the
        // horizon together.
        stream.ingest_at(epoch + 60_001, vec![5.0, 5.0]).unwrap();
        assert_eq!(stream.window_len(), 1, "seeds aged out in caller units");

        // Small-unit ticks: not rejected against seed sequence numbers.
        let stream = stream_over(config, grid_with_isolate());
        let e = stream.ingest_at(3, vec![4.0, 4.0]).unwrap();
        assert_eq!(e.tick, 3);
        assert_eq!(stream.window_len(), 102);
    }

    #[test]
    fn empty_seed_cold_start_is_degenerate_until_refit() {
        let stream = stream_over(manual_config(32), vec![]);
        let e = stream.ingest(vec![1.0, 1.0]);
        assert_eq!(e.score, 0.0);
        assert!(!e.flagged);
        assert!(stream.stats().model.degenerate);
        for i in 0..31 {
            stream.ingest(vec![(i % 8) as f64, (i / 8) as f64]);
        }
        stream.refit_now().unwrap();
        assert!(!stream.stats().model.degenerate);
        assert!(stream.score(&vec![900.0, 900.0]) > 0.0);
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let err = StreamDetector::<Vec<f64>, _, _>::new(
            StreamConfig {
                capacity: 0,
                ..StreamConfig::default()
            },
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            vec![],
        )
        .err()
        .unwrap();
        assert_eq!(err, StreamError::InvalidCapacity { got: 0 });
    }

    #[test]
    fn works_on_the_slim_tree_general_path() {
        let stream = StreamDetector::new(
            manual_config(256),
            McCatch::builder().build().unwrap(),
            Euclidean,
            SlimTreeBuilder::default(),
            grid_with_isolate(),
        )
        .unwrap();
        let ok = stream.ingest(vec![5.0, 5.0]);
        let bad = stream.ingest(vec![-400.0, 0.0]);
        assert!(bad.score > ok.score);
    }

    #[test]
    fn request_refit_coalesces_when_queue_is_full() {
        let stream = stream_over(manual_config(64), grid_with_isolate());
        let mut enqueued = 0u32;
        let mut coalesced = 0u32;
        // Fire many requests back to back; the bounded queue (depth 1)
        // must coalesce most of them rather than pile them up.
        for _ in 0..50 {
            if stream.request_refit() {
                enqueued += 1;
            } else {
                coalesced += 1;
            }
        }
        assert!(enqueued >= 1);
        let stats = stream.stats();
        assert_eq!(stats.refits_requested, 50);
        assert_eq!(stats.refits_coalesced as u32, coalesced);
        assert!(wait_until(|| {
            let s = stream.stats();
            s.refits_completed + s.refits_skipped == enqueued as u64 && s.refit_queue_depth == 0
        }));
    }
}
