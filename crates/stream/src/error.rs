//! Typed errors of the streaming subsystem.

use mccatch_core::McCatchError;

/// Everything that can go wrong configuring or driving a
/// [`StreamDetector`](crate::StreamDetector). Mirrors the core crate's
/// convention: invalid input is a value, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The sliding window must hold at least one event.
    InvalidCapacity {
        /// The rejected capacity.
        got: usize,
    },
    /// `RefitPolicy::EveryN` needs a positive event count.
    InvalidRefitEvery,
    /// `RefitPolicy::Drift` needs a positive recent-event window.
    InvalidDriftRecent {
        /// The rejected recent-window length.
        got: usize,
    },
    /// `RefitPolicy::Drift` needs a threshold in `(0, 1]`.
    InvalidDriftThreshold {
        /// The rejected flagged-fraction threshold.
        got: f64,
    },
    /// The refit command queue must hold at least one pending request.
    InvalidRefitQueue {
        /// The rejected queue capacity.
        got: usize,
    },
    /// `ingest_at` was given a tick smaller than an already-ingested one;
    /// event time must be non-decreasing for age-based eviction to be
    /// well defined.
    NonMonotonicTick {
        /// The newest tick already in the window.
        last: u64,
        /// The rejected, smaller tick.
        got: u64,
    },
    /// A refit failed inside `McCatch::fit` (e.g. unresolvable
    /// hyperparameters); the previously served model stays in place.
    Fit(McCatchError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidCapacity { got } => {
                write!(f, "window capacity must be >= 1, got {got}")
            }
            Self::InvalidRefitEvery => {
                write!(f, "RefitPolicy::EveryN needs a positive event count")
            }
            Self::InvalidDriftRecent { got } => {
                write!(
                    f,
                    "RefitPolicy::Drift recent window must be >= 1, got {got}"
                )
            }
            Self::InvalidDriftThreshold { got } => {
                write!(
                    f,
                    "RefitPolicy::Drift threshold must be in (0, 1], got {got}"
                )
            }
            Self::InvalidRefitQueue { got } => {
                write!(f, "refit queue capacity must be >= 1, got {got}")
            }
            Self::NonMonotonicTick { last, got } => {
                write!(
                    f,
                    "event ticks must be non-decreasing: got {got} after {last}"
                )
            }
            Self::Fit(e) => write!(f, "refit failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<McCatchError> for StreamError {
    fn from(e: McCatchError) -> Self {
        Self::Fit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            StreamError::InvalidCapacity { got: 0 }.to_string(),
            StreamError::NonMonotonicTick { last: 7, got: 3 }.to_string(),
            StreamError::InvalidDriftThreshold { got: 1.5 }.to_string(),
        ];
        assert!(msgs[0].contains("capacity"));
        assert!(msgs[1].contains('7') && msgs[1].contains('3'));
        assert!(msgs[2].contains("1.5"));
    }
}
