//! # mccatch-stream — sliding-window streaming microcluster detection
//!
//! MCCATCH's staged design (fit the expensive tree/diameter/radius-grid
//! stages of Alg. 1 once, then score new points cheaply against the
//! fitted model) is exactly the shape a continuously-operating anomaly
//! service needs. This crate adds the piece that drives it over an
//! evolving stream: a [`StreamDetector`] that
//!
//! * maintains a **sliding window** of the most recent events —
//!   count-based eviction (a bounded ring) plus optional logical-time
//!   eviction ([`StreamConfig::max_age_ticks`]);
//! * **scores every arriving event immediately** against the current
//!   model snapshot, without locks on the hot path, tagging each
//!   [`ScoredEvent`] with the model generation it was scored by
//!   (prequential, test-then-train);
//! * runs a **background refit worker** that rebuilds the model on the
//!   current window with the ordinary batch `McCatch::fit`, warms it,
//!   and swaps it in atomically via `mccatch_core::serve::ModelStore` —
//!   readers never block, old snapshots drain naturally;
//! * schedules refits by a [`RefitPolicy`]: every `N` events, explicit
//!   request only, or a **drift trigger** that fires when too large a
//!   fraction of recent events score beyond the fitted MDL cutoff;
//! * exposes the whole machine through [`StreamStats`] — ingest and
//!   eviction volume, refit pipeline counters, queue depth, and the
//!   deterministic distance-evaluation cost of every fit.
//!
//! Because refits *are* batch fits on the window contents, a paused
//! stream is bit-for-bit a batch run: refit, and the served model equals
//! a fresh `McCatch::fit` on [`StreamDetector::window_points`] —
//! property-tested across index backends.
//!
//! ## Quickstart
//!
//! ```
//! use mccatch_core::McCatch;
//! use mccatch_index::KdTreeBuilder;
//! use mccatch_metric::Euclidean;
//! use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
//!
//! // Seed the window with reference traffic (one known isolate keeps
//! // the MDL cutoff finite, so flagging is active from generation 0).
//! let mut seed: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
//!     .collect();
//! seed.push(vec![500.0, 500.0]);
//!
//! let stream = StreamDetector::new(
//!     StreamConfig {
//!         capacity: 512,
//!         policy: RefitPolicy::EveryN(128),
//!         ..StreamConfig::default()
//!     },
//!     McCatch::builder().build()?,
//!     Euclidean,
//!     KdTreeBuilder::default(),
//!     seed,
//! )?;
//!
//! // Score each event as it arrives; refits happen in the background.
//! let ok = stream.ingest(vec![4.0, 4.0]);
//! let bad = stream.ingest(vec![900.0, 900.0]);
//! assert!(bad.score > ok.score);
//! assert!(bad.flagged && !ok.flagged);
//! assert_eq!(stream.stats().events_scored, 2);
//! # Ok::<(), mccatch_stream::StreamError>(())
//! ```
//!
//! The `mccatch` facade re-exports this crate as `mccatch::stream`, and
//! the CLI's `--stream` mode wraps it for line-delimited stdin events.

#![deny(missing_docs)]

mod config;
mod detector;
mod error;
mod stats;
mod window;

pub use config::{RefitPolicy, StreamConfig};
pub use detector::{ScoredEvent, StreamCheckpoint, StreamDetector};
pub use error::StreamError;
pub use stats::StreamStats;
