//! Observability: a consistent snapshot of the streaming subsystem's
//! counters.

use mccatch_core::ModelStats;

/// A point-in-time summary of a
/// [`StreamDetector`](crate::StreamDetector), as returned by
/// [`stats`](crate::StreamDetector::stats) — everything a health
/// endpoint or log line needs: ingest volume, window occupancy, the
/// refit pipeline's throughput, and the currently served model.
///
/// Counter semantics: `refits_requested` counts every trigger (policy
/// or explicit); of those, `refits_coalesced` found a refit already
/// pending and merged into it; the rest were enqueued, and each
/// enqueued request ends up exactly one of completed, skipped (window
/// below `min_refit_points`), or failed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Events accepted into the window so far (seed points included).
    pub events_ingested: u64,
    /// Events scored so far (seed points are not scored).
    pub events_scored: u64,
    /// Events evicted from the window (by capacity or age).
    pub events_evicted: u64,
    /// Current number of events in the sliding window.
    pub window_len: usize,
    /// The window's configured capacity.
    pub window_capacity: usize,
    /// Generation of the currently served model: 0 for the initial fit,
    /// +1 per completed refit (monotone; event scores carry the
    /// generation they were computed against).
    pub generation: u64,
    /// Refits triggered so far — by policy, drift, or explicit request.
    pub refits_requested: u64,
    /// Requests that found a refit already pending and merged into it.
    pub refits_coalesced: u64,
    /// Refits the worker (or `refit_now`) actually completed.
    pub refits_completed: u64,
    /// Worker refits skipped because the window held fewer than
    /// `min_refit_points` events.
    pub refits_skipped: u64,
    /// Refits that failed inside `McCatch::fit`, plus requests dropped
    /// because the worker was gone (a prior fit panicked); the previous
    /// model stayed in place either way.
    pub refits_failed: u64,
    /// Refit requests currently waiting in the bounded command queue.
    pub refit_queue_depth: usize,
    /// Distance evaluations spent across **all** completed fits so far
    /// (initial fit included) — the cumulative modeling cost, via each
    /// fit's `ModelStats::distance_evals` (deterministic, see the index
    /// crate's `DistanceStats`). Serving-path queries are not included.
    pub fit_distance_evals: u64,
    /// Summary of the currently served model (its own
    /// `distance_evals` covers just that fit).
    pub model: ModelStats,
}
