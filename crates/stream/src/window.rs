//! The sliding window: a bounded, tick-aware ring of the most recent
//! events, in arrival order.

use std::collections::VecDeque;

/// A bounded buffer of `(tick, point)` events, oldest first. Eviction is
/// count-based (capacity) and, optionally, age-based (a tick horizon
/// relative to the newest event). Not thread-safe on its own — the
/// [`StreamDetector`](crate::StreamDetector) guards it with a mutex and
/// keeps lock hold times to pushes and clones.
#[derive(Debug)]
pub(crate) struct Window<P> {
    events: VecDeque<(u64, P)>,
    capacity: usize,
    max_age: Option<u64>,
    evicted: u64,
    last_tick: Option<u64>,
    /// Number of retained events still carrying fabricated (sequence-
    /// number) ticks from seeding, before any caller-supplied tick has
    /// established the stream's real time base. See
    /// [`adopt_time_base`](Self::adopt_time_base).
    fabricated: usize,
}

impl<P> Window<P> {
    pub(crate) fn new(capacity: usize, max_age: Option<u64>) -> Self {
        debug_assert!(capacity >= 1);
        Self {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            max_age,
            evicted: 0,
            last_tick: None,
            fabricated: 0,
        }
    }

    /// Marks every currently retained event as carrying a fabricated
    /// seed tick. Called once after seeding, before any real ingest.
    pub(crate) fn mark_seeded(&mut self) {
        self.fabricated = self.events.len();
    }

    /// Establishes the stream's time base on the first caller-supplied
    /// tick: if **every** retained event still carries a fabricated
    /// seed tick, re-stamp them all to `tick`, so seeds behave as "at
    /// stream start" in the caller's own units — a seed stamped
    /// `0..n-1` would otherwise be mass-evicted by an epoch-millis
    /// tick's age horizon, or make a small-unit tick look
    /// non-monotone. A no-op (beyond clearing the flag) once any real
    /// event is in the window.
    pub(crate) fn adopt_time_base(&mut self, tick: u64) {
        if self.fabricated > 0 && self.fabricated == self.events.len() {
            for e in &mut self.events {
                e.0 = tick;
            }
            self.last_tick = Some(tick);
        }
        self.fabricated = 0;
    }

    /// Number of retained events.
    pub(crate) fn len(&self) -> usize {
        self.events.len()
    }

    /// Total events evicted (by capacity or age) since creation.
    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The newest tick, if any event was ever pushed.
    pub(crate) fn last_tick(&self) -> Option<u64> {
        self.last_tick
    }

    /// Appends an event and applies both eviction rules. The caller must
    /// have validated that `tick` is non-decreasing.
    pub(crate) fn push(&mut self, tick: u64, point: P) {
        debug_assert!(self.last_tick.is_none_or(|t| tick >= t));
        self.last_tick = Some(tick);
        self.events.push_back((tick, point));
        while self.events.len() > self.capacity {
            self.pop_oldest();
        }
        if let Some(max_age) = self.max_age {
            // Retain events with `tick >= newest - max_age`; saturating
            // keeps everything while ticks are still below the horizon.
            let horizon = tick.saturating_sub(max_age);
            while self.events.front().is_some_and(|&(t, _)| t < horizon) {
                self.pop_oldest();
            }
        }
    }

    /// Evicts the oldest event. Seeds are always the window's prefix
    /// (every post-seed push appends a real event at the back), so a
    /// front pop consumes a fabricated seed tick first — keeping
    /// `fabricated == len` a faithful "window is still pure seed" test
    /// even when capacity eviction holds the length constant.
    fn pop_oldest(&mut self) {
        self.events.pop_front();
        self.evicted += 1;
        self.fabricated = self.fabricated.saturating_sub(1);
    }

    /// The retained points in arrival order — the dataset a refit runs
    /// on. Clones so the fit owns its snapshot and the window mutex can
    /// be released before the expensive tree build starts.
    pub(crate) fn points_in_order(&self) -> Vec<P>
    where
        P: Clone,
    {
        self.events.iter().map(|(_, p)| p.clone()).collect()
    }

    /// The retained `(tick, point)` events in arrival order — what a
    /// checkpoint captures so a restore can rebuild the window with its
    /// real time base intact (unlike
    /// [`points_in_order`](Self::points_in_order), which drops ticks).
    pub(crate) fn entries_in_order(&self) -> Vec<(u64, P)>
    where
        P: Clone,
    {
        self.events.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_eviction_keeps_newest() {
        let mut w = Window::new(3, None);
        for i in 0..5u64 {
            w.push(i, i as i32);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.evicted(), 2);
        assert_eq!(w.points_in_order(), vec![2, 3, 4]);
        assert_eq!(w.last_tick(), Some(4));
    }

    #[test]
    fn age_eviction_drops_stale_events() {
        let mut w = Window::new(100, Some(10));
        w.push(0, 'a');
        w.push(5, 'b');
        w.push(11, 'c'); // horizon 1: drops tick 0
        assert_eq!(w.points_in_order(), vec!['b', 'c']);
        w.push(40, 'd'); // horizon 30: drops ticks 5 and 11
        assert_eq!(w.points_in_order(), vec!['d']);
        assert_eq!(w.evicted(), 3);
    }

    #[test]
    fn age_boundary_is_inclusive() {
        let mut w = Window::new(100, Some(10));
        w.push(0, 'a');
        w.push(10, 'b'); // exactly max_age apart: 'a' survives
        assert_eq!(w.points_in_order(), vec!['a', 'b']);
        w.push(11, 'c');
        assert_eq!(w.points_in_order(), vec!['b', 'c']);
    }

    #[test]
    fn adopt_time_base_restamps_pure_seed_windows() {
        let mut w = Window::new(10, Some(100));
        w.push(0, 'a');
        w.push(1, 'b');
        w.mark_seeded();
        // First real tick is epoch-scale: seeds move to it instead of
        // being age-evicted.
        w.adopt_time_base(1_000_000);
        assert_eq!(w.last_tick(), Some(1_000_000));
        w.push(1_000_050, 'c');
        assert_eq!(w.points_in_order(), vec!['a', 'b', 'c']);
        // ...and age out max_age after the adopted base, not before.
        w.push(1_000_101, 'd');
        assert_eq!(w.points_in_order(), vec!['c', 'd']);
    }

    #[test]
    fn adopt_time_base_accepts_ticks_below_seed_count() {
        let mut w = Window::new(10, None);
        for i in 0..5u64 {
            w.push(i, i as u8);
        }
        w.mark_seeded();
        // A small-unit time base (e.g. seconds since start) is fine
        // even though the seed count exceeds it.
        w.adopt_time_base(2);
        assert_eq!(w.last_tick(), Some(2));
        w.push(3, 9);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn adopt_time_base_is_inert_after_seeds_rotate_out_at_capacity() {
        // Seed to capacity, then push real events: eviction keeps the
        // length equal to the seed count, but the window is no longer
        // pure seed, so the time base must NOT be re-adopted (that
        // would re-stamp real events and break tick monotonicity).
        let mut w = Window::new(4, None);
        for i in 0..4u64 {
            w.push(0, i as u8);
        }
        w.mark_seeded();
        for t in 1..=3u64 {
            w.push(t, 10 + t as u8); // evicts one seed each
        }
        assert_eq!(w.len(), 4);
        w.adopt_time_base(1);
        assert_eq!(w.last_tick(), Some(3), "real ticks are not re-stamped");
    }

    #[test]
    fn adopt_time_base_is_inert_once_real_events_exist() {
        let mut w = Window::new(10, None);
        w.push(0, 'a');
        w.mark_seeded();
        w.adopt_time_base(100); // establishes the base
        w.push(100, 'b'); // a real event
        w.adopt_time_base(7); // later adoptions change nothing
        assert_eq!(w.last_tick(), Some(100));
    }

    #[test]
    fn duplicate_ticks_are_allowed() {
        let mut w = Window::new(10, Some(5));
        w.push(7, 1);
        w.push(7, 2);
        w.push(7, 3);
        assert_eq!(w.points_in_order(), vec![1, 2, 3]);
    }
}
