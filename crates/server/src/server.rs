//! The listener, the bounded worker pool, request routing, and graceful
//! shutdown.
//!
//! ```text
//!                    accept()        bounded queue         workers (N threads)
//! client ──TCP──►  acceptor ──try_send──► [conn|conn] ──recv──► parse → route →
//!                     │ full?                                   respond (keep-alive
//!                     ▼                                         until close/shutdown)
//!               503 + Retry-After
//!               (explicit backpressure — never unbounded buffering)
//! ```
//!
//! Shutdown is cooperative and drains in-flight work: the flag flips,
//! a self-connection wakes the acceptor, the queue sender drops, each
//! worker finishes the request it is serving (answering it with
//! `Connection: close`), drains any already-accepted connections, and
//! exits; `shutdown()` then joins every thread.

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::http::{self, Request, Response};
use crate::metrics::{render_prometheus, Counters, Endpoint, TenantScrape};
use crate::ndjson::{json_escape, LineParser};
use crate::obs::{request_id, ServerObs};
use crate::service::{
    MapRegistry, NdjsonOutcome, Service, SnapshotInfoOutcome, SnapshotOutcome, StreamService,
    TenantRegistry,
};
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use mccatch_obs::trace;
use mccatch_obs::{Fields, Histogram, Level};
use mccatch_persist::{FsyncPolicy, PersistPoint, ReplayWriter};
use mccatch_stream::StreamDetector;
use mccatch_tenant::{valid_tenant_name, RouteKey, TenantMap};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the acceptor and workers share.
struct Shared {
    config: ServerConfig,
    /// The default (unnamed) tenant: bare `/score`, `/ingest`, … serve
    /// it, exactly as before multi-tenancy existed.
    service: Arc<dyn Service>,
    /// Named tenants, when started via [`serve_tenants`]; `None` makes
    /// every `/t/{tenant}/…` and `/admin/tenants` route answer `404`.
    registry: Option<Arc<dyn TenantRegistry>>,
    counters: Counters,
    /// Latency histograms, the access logger, and the slow-request
    /// ring.
    obs: ServerObs,
    index_label: String,
    shutdown: AtomicBool,
    /// When the server started, for the `/metrics` uptime gauge and the
    /// `/healthz` body.
    start: Instant,
}

/// A running HTTP scoring service, returned by [`serve`].
///
/// The handle owns the acceptor and worker threads. [`shutdown`]
/// (also invoked on drop) stops accepting, drains in-flight requests,
/// and joins every thread; [`local_addr`] reports the bound address —
/// ask for port `0` and read it back for ephemeral test servers.
///
/// [`shutdown`]: ServerHandle::shutdown
/// [`local_addr`]: ServerHandle::local_addr
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the real port even
    /// when bound to port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown, drains in-flight requests, and joins every
    /// thread. Idempotent; called automatically on drop.
    pub fn shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::AcqRel) {
            // Wake the acceptor out of its blocking accept(); the
            // connection itself is discarded by the shutdown check.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(acceptor) = self
            .acceptor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = acceptor.join();
        }
        let workers: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
    }

    /// Blocks the calling thread until the server shuts down (from
    /// another thread's [`shutdown`](Self::shutdown) or process exit) —
    /// the `--serve` CLI's main-thread parking spot.
    pub fn wait(&self) {
        if let Some(acceptor) = self
            .acceptor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("shutdown", &self.shared.shutdown.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

/// Starts the HTTP scoring service over a shared [`StreamDetector`].
///
/// Validates `config`, binds `addr` (use port `0` for an ephemeral
/// port), spawns the acceptor and `config.workers` worker threads, and
/// returns the running [`ServerHandle`]. `parser` decodes one NDJSON
/// request line into a point (see [`crate::ndjson::parse_vector_line`]
/// and [`crate::ndjson::parse_string_line`]); `index_label` names the
/// index backend in the `/metrics` distance-evaluation series.
///
/// The detector is shared, not consumed: the process can keep calling
/// `ingest`/`refit_now`/`stats` on its own clone of the `Arc` while the
/// server runs — both go through the same `ModelStore` snapshots.
///
/// ```no_run
/// use mccatch_core::McCatch;
/// use mccatch_index::KdTreeBuilder;
/// use mccatch_metric::Euclidean;
/// use mccatch_server::{ndjson, serve, ServerConfig};
/// use mccatch_stream::{StreamConfig, StreamDetector};
/// use std::sync::Arc;
///
/// let seed: Vec<Vec<f64>> = (0..100)
///     .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
///     .collect();
/// let detector = Arc::new(StreamDetector::new(
///     StreamConfig::default(),
///     McCatch::builder().build()?,
///     Euclidean,
///     KdTreeBuilder::default(),
///     seed,
/// )?);
/// let server = serve(
///     "127.0.0.1:0",
///     ServerConfig::default(),
///     detector,
///     Arc::new(ndjson::parse_vector_line),
///     "kd",
/// )?;
/// println!("listening on http://{}", server.local_addr());
/// server.wait();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn serve<P, M, B>(
    addr: impl ToSocketAddrs + std::fmt::Debug,
    config: ServerConfig,
    detector: Arc<StreamDetector<P, M, B>>,
    parser: LineParser<P>,
    index_label: impl Into<String>,
) -> Result<ServerHandle, ServerError>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    serve_with_registry(addr, config, detector, parser, index_label, None)
}

/// Starts the HTTP scoring service with **multi-tenant serving** on top
/// of the default detector: everything [`serve`] does, plus a
/// [`TenantMap`] registry behind `/t/{tenant}/…` routing (or the
/// `X-Mccatch-Tenant` header) and the `/admin/tenants` lifecycle
/// endpoints.
///
/// The bare endpoints (`/score`, `/ingest`, …) keep serving `detector`
/// — the default, unnamed tenant — byte-for-byte as before; named
/// tenants are fully isolated shard sets created either up front (via
/// `tenants`) or dynamically with `PUT /admin/tenants/{name}`.
/// Per-tenant snapshots are written next to
/// `ServerConfig::snapshot_path` as `{path}.{tenant}.{shard}` (plus a
/// `{path}.{tenant}.manifest` written last). The `ServerConfig`
/// replay log covers the default tenant; named tenants keep their own
/// `{log}.{tenant}.{shard}` logs when the map's
/// [`TenantSpec::replay`](mccatch_tenant::TenantSpec) is set. To warm
/// restart the whole fleet, call
/// [`TenantMap::restore_tenants`](mccatch_tenant::TenantMap::restore_tenants)
/// on `tenants` *before* this function binds the socket.
pub fn serve_tenants<P, M, B>(
    addr: impl ToSocketAddrs + std::fmt::Debug,
    config: ServerConfig,
    detector: Arc<StreamDetector<P, M, B>>,
    parser: LineParser<P>,
    index_label: impl Into<String>,
    tenants: Arc<TenantMap<P, M, B>>,
) -> Result<ServerHandle, ServerError>
where
    P: PersistPoint + RouteKey + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let registry: Arc<dyn TenantRegistry> = Arc::new(MapRegistry::new(
        tenants,
        Arc::clone(&parser),
        config.snapshot_path.clone(),
    ));
    serve_with_registry(addr, config, detector, parser, index_label, Some(registry))
}

/// The shared boot path of [`serve`] and [`serve_tenants`].
fn serve_with_registry<P, M, B>(
    addr: impl ToSocketAddrs + std::fmt::Debug,
    config: ServerConfig,
    detector: Arc<StreamDetector<P, M, B>>,
    parser: LineParser<P>,
    index_label: impl Into<String>,
    registry: Option<Arc<dyn TenantRegistry>>,
) -> Result<ServerHandle, ServerError>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    config.validate()?;
    let obs = ServerObs::open(&config)?;
    let replay = match &config.replay_log {
        None => None,
        Some(path) => Some(
            ReplayWriter::open(path, FsyncPolicy::EveryN(config.replay_fsync_every)).map_err(
                |e| ServerError::ReplayLog {
                    path: path.display().to_string(),
                    message: e.to_string(),
                },
            )?,
        ),
    };
    let bind_err = |e: &std::io::Error| ServerError::Bind {
        addr: format!("{addr:?}"),
        kind: e.kind(),
        message: e.to_string(),
    };
    let listener = TcpListener::bind(&addr).map_err(|e| bind_err(&e))?;
    let local = listener.local_addr().map_err(|e| bind_err(&e))?;

    let shared = Arc::new(Shared {
        service: Arc::new(StreamService::new(
            detector,
            parser,
            config.snapshot_path.clone(),
            replay,
        )),
        registry,
        index_label: index_label.into(),
        counters: Counters::default(),
        obs,
        shutdown: AtomicBool::new(false),
        start: Instant::now(),
        config,
    });
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(shared.config.queue);
    let rx = Arc::new(Mutex::new(rx));

    let workers = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("mccatch-http-{i}"))
                .spawn(move || worker_loop(shared, rx))
                .expect("spawn http worker thread")
        })
        .collect();
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("mccatch-http-accept".to_owned())
            .spawn(move || accept_loop(shared, listener, tx))
            .expect("spawn http acceptor thread")
    };

    Ok(ServerHandle {
        addr: local,
        shared,
        acceptor: Mutex::new(Some(acceptor)),
        workers: Mutex::new(workers),
    })
}

/// Accepts connections and hands them to the pool, answering `503`
/// directly when the queue is full. The `tx` sender drops on exit,
/// which is what lets idle workers notice the shutdown.
fn accept_loop(shared: Arc<Shared>, listener: TcpListener, tx: SyncSender<TcpStream>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let conn = match conn {
            Ok(c) => c,
            // Transient accept errors (EMFILE, aborted handshakes) must
            // not kill the listener.
            Err(_) => continue,
        };
        let _ = conn.set_nodelay(true);
        // Increment before sending, exactly like the stream crate's
        // refit queue: the worker decrements as soon as it pops, so the
        // other order could race the gauge below zero.
        shared.counters.queue_depth.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(conn) {
            Ok(()) => {
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::AcqRel);
            }
            Err(TrySendError::Full(conn)) => {
                shared.counters.queue_depth.fetch_sub(1, Ordering::AcqRel);
                shared
                    .counters
                    .connections_rejected
                    .fetch_add(1, Ordering::AcqRel);
                reject_with_503(&shared, conn);
            }
            Err(TrySendError::Disconnected(_)) => {
                shared.counters.queue_depth.fetch_sub(1, Ordering::AcqRel);
                break;
            }
        }
    }
}

/// Writes the backpressure `503` (with `Retry-After`) and drops the
/// connection. Runs on the acceptor thread; the write is a handful of
/// bytes, but a write timeout guards against a client with a zero
/// receive window wedging the accept loop.
fn reject_with_503(shared: &Shared, mut conn: TcpStream) {
    let _ = conn.set_write_timeout(Some(Duration::from_millis(200)));
    let resp = Response::text(503, "server is at capacity, retry shortly\n")
        .with_header("retry-after", shared.config.retry_after_secs.to_string());
    shared.counters.count_response(503);
    if shared.obs.logger.enabled(Level::Warn) {
        shared.obs.logger.log(
            Level::Warn,
            "backpressure",
            &Fields::new()
                .u64("status", 503)
                .u64("queue", shared.config.queue as u64),
        );
    }
    let _ = http::write_response(&mut conn, &resp, false);
}

/// One worker: pops connections and serves them to completion
/// (keep-alive included). Exits when the acceptor is gone and the
/// queue is drained.
fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Hold the receiver lock only for the pop; serving runs
        // unlocked so workers drain the queue concurrently.
        let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match conn {
            Ok(conn) => {
                shared.counters.queue_depth.fetch_sub(1, Ordering::AcqRel);
                serve_connection(&shared, conn);
            }
            Err(_) => break,
        }
    }
}

/// Serves every request on one connection until the client closes, a
/// parse error poisons the stream, or shutdown asks for a drain.
fn serve_connection(shared: &Shared, conn: TcpStream) {
    let _ = conn.set_read_timeout(shared.config.read_timeout);
    let _ = conn.set_write_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(conn);
    loop {
        match http::read_request_head(
            &mut reader,
            shared.config.max_header_bytes,
            shared.config.max_body_bytes,
        ) {
            Ok(None) => break,
            Ok(Some(head)) => {
                // Clock-zero of the request (and of its trace, when
                // tracing is on): the head is parsed, the body is not
                // yet read. Keep-alive idle time is deliberately
                // excluded.
                let t_head = Instant::now();
                // Clients like curl hold large uploads back until they
                // see `100 Continue` (or a 1-second timeout expires);
                // answering the expectation keeps big in-contract
                // batches at wire speed. The head is already past the
                // 413 check here, so continuing is always correct.
                if head.expects_continue()
                    && head.content_length > 0
                    && reader
                        .get_mut()
                        .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                        .is_err()
                {
                    break;
                }
                let req = match http::read_request_body(&mut reader, head.content_length) {
                    Ok(body) => head.into_request(body),
                    Err(e) => {
                        let resp = e.to_response();
                        shared.counters.count_response(resp.status);
                        let _ = http::write_response(reader.get_mut(), &resp, false);
                        break;
                    }
                };
                let t0 = Instant::now();
                // Per-request tracing. The fast path when tracing is
                // off is this single branch on one relaxed atomic
                // load; everything below the `then` is skipped.
                let trace = trace::sampler().enabled().then(|| {
                    let ctx = req.header("traceparent").and_then(trace::parse_traceparent);
                    trace::Trace::start_at("request", ctx, t_head)
                });
                let mut root_span_id = 0u64;
                // A handler panic (e.g. a query the model cannot digest)
                // must cost one request, not a worker thread: the pool
                // would otherwise bleed capacity until the server
                // wedges with no visible failure.
                let (resp, endpoint, tenant) = {
                    let root = trace.as_ref().map(|t| {
                        let root = t.root_span("request");
                        root_span_id = root.id();
                        // The parse span is timed before the trace
                        // object exists; record it retroactively.
                        t.add_span(
                            "parse",
                            root.id(),
                            t_head,
                            t0.saturating_duration_since(t_head),
                        );
                        root
                    });
                    let _cur = root.as_ref().map(trace::TraceSpan::make_current);
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, &req)))
                        .unwrap_or_else(|_| (Response::text(500, "internal error\n"), None, None))
                };
                let elapsed = t0.elapsed();
                // Every response carries a request id — echoed when the
                // client supplied a sane one, generated otherwise.
                let id = request_id(req.header("x-mccatch-request-id"));
                let resp = resp.with_header("x-mccatch-request-id", id.clone());
                // …and a W3C traceparent: the inbound trace id when a
                // valid one was sent (fresh otherwise), with our root
                // span id as the parent for any downstream hop. Flag
                // 01 means the trace was collected (a tail-sampling
                // candidate), 00 that tracing was off.
                let resp = match &trace {
                    Some(t) => resp.with_header(
                        "traceparent",
                        trace::render_traceparent(t.trace_id(), root_span_id, true),
                    ),
                    None => {
                        let ctx = req.header("traceparent").and_then(trace::parse_traceparent);
                        let trace_id = ctx.map(|c| c.trace_id).unwrap_or_else(trace::gen_trace_id);
                        resp.with_header(
                            "traceparent",
                            trace::render_traceparent(trace_id, trace::gen_span_id(), false),
                        )
                    }
                };
                if let Some(endpoint) = endpoint {
                    shared
                        .obs
                        .record_request(tenant.as_deref(), endpoint, elapsed);
                }
                log_request(
                    shared,
                    &req,
                    &resp,
                    endpoint,
                    tenant.as_deref(),
                    &id,
                    elapsed,
                );
                finish_trace(shared, trace, &req, &resp, tenant.as_deref(), &id);
                // Drain on shutdown: answer the in-flight request, then
                // ask the client to reconnect elsewhere.
                let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::Acquire);
                shared.counters.count_response(resp.status);
                if http::write_response(reader.get_mut(), &resp, keep_alive).is_err() || !keep_alive
                {
                    break;
                }
            }
            Err(e) => {
                // After a malformed request the byte stream can no
                // longer be framed; answer and close.
                let resp = e.to_response();
                shared.counters.count_response(resp.status);
                let _ = http::write_response(reader.get_mut(), &resp, false);
                break;
            }
        }
    }
}

/// Emits the structured access-log line for one served request, and
/// captures the same rendered line in the slow-request ring when the
/// request crossed the `slow_request_ms` threshold. Renders nothing
/// when neither applies, so the default configuration costs one float
/// compare per request.
fn log_request(
    shared: &Shared,
    req: &Request,
    resp: &Response,
    endpoint: Option<Endpoint>,
    tenant: Option<&str>,
    id: &str,
    elapsed: Duration,
) {
    let duration_ms = elapsed.as_secs_f64() * 1e3;
    let slow = duration_ms >= shared.obs.slow_ms as f64;
    if !slow && !shared.obs.logger.enabled(Level::Info) {
        return;
    }
    let mut fields = Fields::new()
        .str("id", id)
        .str("method", &req.method)
        .str("path", &req.target)
        .u64("status", resp.status as u64)
        .f64("duration_ms", duration_ms)
        .str("endpoint", endpoint.map_or("-", Endpoint::name))
        .u64("bytes_in", req.body.len() as u64)
        .u64("bytes_out", resp.body.len() as u64);
    if let Some(tenant) = tenant {
        fields = fields.str("tenant", tenant);
    }
    if slow {
        fields = fields.bool("slow", true);
    }
    let line = shared.obs.logger.render(Level::Info, "request", &fields);
    shared.obs.logger.write_line(Level::Info, &line);
    if slow {
        shared.obs.slow.push(line);
    }
}

/// Closes a request's trace and offers it to the process-global tail
/// sampler: only traces at least `--trace-slow-ms` long — or ending in
/// a 5xx — are kept for `GET /admin/debug/trace`. A kept trace also
/// lands in the access log as one NDJSON `"trace"` line with the full
/// span array inline.
fn finish_trace(
    shared: &Shared,
    trace: Option<trace::Trace>,
    req: &Request,
    resp: &Response,
    tenant: Option<&str>,
    id: &str,
) {
    let Some(t) = trace else { return };
    if resp.status >= 500 {
        t.set_error();
    }
    let mut attrs = vec![
        ("id", id.to_owned()),
        ("method", req.method.clone()),
        ("path", req.target.clone()),
        ("status", resp.status.to_string()),
    ];
    if let Some(tenant) = tenant {
        attrs.push(("tenant", tenant.to_owned()));
    }
    let data = t.finish(attrs);
    if let Some(kept) = trace::sampler().offer(data) {
        if shared.obs.logger.enabled(Level::Info) {
            shared.obs.logger.log(
                Level::Info,
                "trace",
                &Fields::new()
                    .str("trace", &format!("{:032x}", kept.trace_id))
                    .str("id", id)
                    .f64("duration_ms", kept.dur_ns as f64 / 1e6)
                    .u64("status", resp.status as u64)
                    .bool("error", kept.error)
                    .u64("spans", kept.spans.len() as u64)
                    .raw("span_tree", &trace::spans_json(&kept)),
            );
        }
    }
}

/// Records the amortized per-line latency of one NDJSON batch: `lines`
/// observations at the batch's mean per-line cost. Two atomics per
/// batch, not per line.
fn record_line_latency(hist: &Histogram, total: Duration, lines: u64) {
    if lines > 0 {
        hist.record_many((total.as_nanos() / lines as u128) as u64, lines);
    }
}

/// The tenant scope of a request: `/t/{tenant}/{endpoint}` paths and
/// the `X-Mccatch-Tenant` header both select a named tenant (and must
/// agree when both are present); bare paths serve the default tenant.
/// Returns `(tenant, endpoint_target)` or the error response.
fn tenant_scope(req: &Request) -> Result<(Option<&str>, &str), Response> {
    let (path_tenant, target) = match req.target.strip_prefix("/t/") {
        None => (None, req.target.as_str()),
        Some(rest) => match rest.split_once('/') {
            // `&rest[name.len()..]` keeps the leading slash, so the
            // scoped endpoint matches the same literals as bare paths.
            Some((name, _tail)) => (Some(name), &rest[name.len()..]),
            None => {
                return Err(Response::text(
                    404,
                    format!(
                        "no such endpoint: {} (expected /t/{{tenant}}/score, \
                         /t/{{tenant}}/ingest, ...)\n",
                        req.target
                    ),
                ))
            }
        },
    };
    match (path_tenant, req.header("x-mccatch-tenant")) {
        (Some(p), Some(h)) if p != h => Err(Response::text(
            400,
            format!("tenant mismatch: path says {p:?}, X-Mccatch-Tenant says {h:?}\n"),
        )),
        (Some(p), _) => Ok((Some(p), target)),
        (None, h) => Ok((h, target)),
    }
}

/// The `400` for a name outside `[a-zA-Z0-9_-]{1,64}`.
fn invalid_name_response(name: &str) -> Response {
    Response::text(
        400,
        format!("invalid tenant name {name:?}: must match [a-zA-Z0-9_-]{{1,64}}\n"),
    )
}

const NO_TENANCY: &str = "multi-tenant serving is not enabled on this server\n";

/// The `/admin/tenants` lifecycle routes: `GET /admin/tenants` lists,
/// `PUT /admin/tenants/{name}` creates (idempotently; the body is an
/// optional NDJSON seed), `DELETE /admin/tenants/{name}` unlinks.
fn route_tenants_admin(shared: &Shared, req: &Request) -> Response {
    let list = req.target == "/admin/tenants";
    let allow = if list { "GET" } else { "PUT, DELETE" };
    if !allow.split(", ").any(|m| m == req.method) {
        return Response::text(405, format!("{} requires {allow}\n", req.target))
            .with_header("allow", allow.to_owned());
    }
    shared.counters.count_request(Endpoint::Tenants);
    let Some(registry) = &shared.registry else {
        return Response::text(404, NO_TENANCY);
    };
    if list {
        let names = registry
            .names()
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", ");
        return Response::json(200, format!("{{\"tenants\": [{names}]}}\n"));
    }
    let name = req
        .target
        .strip_prefix("/admin/tenants/")
        .expect("caller matched the prefix");
    if !valid_tenant_name(name) {
        return invalid_name_response(name);
    }
    match req.method.as_str() {
        "PUT" => match registry.create(name, &req.body) {
            Ok(created) => Response::json(
                200,
                format!(
                    "{{\"tenant\": \"{}\", \"created\": {created}, \"shards\": {}}}\n",
                    json_escape(name),
                    registry.shards()
                ),
            ),
            Err(e) => Response::json(400, format!("{{\"error\": \"{}\"}}\n", json_escape(&e))),
        },
        "DELETE" => {
            if registry.delete(name) {
                Response::json(
                    200,
                    format!(
                        "{{\"tenant\": \"{}\", \"deleted\": true}}\n",
                        json_escape(name)
                    ),
                )
            } else {
                Response::text(404, format!("no such tenant: {name}\n"))
            }
        }
        _ => unreachable!("method checked above"),
    }
}

/// Maps one parsed request to its response, also reporting the
/// [`Endpoint`] it resolved to (`None` until routing succeeded — only
/// resolved requests are counted, so only they record latency) and the
/// tenant scope, for the worker's histogram recording and access log.
fn route(shared: &Shared, req: &Request) -> (Response, Option<Endpoint>, Option<String>) {
    if req.target == "/admin/debug/slow" {
        if req.method != "GET" {
            let resp = Response::text(405, format!("{} requires GET\n", req.target))
                .with_header("allow", "GET".to_owned());
            return (resp, None, None);
        }
        shared.counters.count_request(Endpoint::DebugSlow);
        let mut body = shared.obs.slow.lines().join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        return (Response::ndjson(200, body), Some(Endpoint::DebugSlow), None);
    }
    if req.target == "/admin/debug/trace" {
        if req.method != "GET" {
            let resp = Response::text(405, format!("{} requires GET\n", req.target))
                .with_header("allow", "GET".to_owned());
            return (resp, None, None);
        }
        shared.counters.count_request(Endpoint::DebugTrace);
        let traces = trace::sampler().traces();
        let body = trace::chrome_trace_json(traces.iter().map(|t| &**t));
        return (Response::json(200, body), Some(Endpoint::DebugTrace), None);
    }
    if req.target == "/admin/tenants" || req.target.starts_with("/admin/tenants/") {
        // The 405 path inside does not count the request; mirror that
        // by only reporting the endpoint for counted methods.
        let counted = ["GET", "PUT", "DELETE"].contains(&req.method.as_str());
        let resp = route_tenants_admin(shared, req);
        return (resp, counted.then_some(Endpoint::Tenants), None);
    }
    // The `route` span covers tenant-scope resolution, service lookup,
    // and the endpoint/method match; an early return (404/405/bad
    // tenant) closes it on the way out, correctly charging the whole
    // request to routing.
    let route_span = trace::current().map(|h| h.child("route"));
    let (tenant, target) = match tenant_scope(req) {
        Ok(scope) => scope,
        Err(resp) => return (resp, None, None),
    };
    let tenant_owned = tenant.map(str::to_owned);
    // Resolve the serving backend: the default service for bare
    // requests, the tenant's facade otherwise. Process-wide endpoints
    // (`/healthz`, `/metrics`) have no tenant-scoped form.
    let service: Arc<dyn Service> = match tenant {
        None => Arc::clone(&shared.service),
        Some(name) => {
            if !valid_tenant_name(name) {
                return (invalid_name_response(name), None, tenant_owned);
            }
            let Some(registry) = &shared.registry else {
                return (Response::text(404, NO_TENANCY), None, tenant_owned);
            };
            match registry.get(name) {
                Some(svc) => svc,
                None => {
                    let resp = Response::text(404, format!("no such tenant: {name}\n"));
                    return (resp, None, tenant_owned);
                }
            }
        }
    };
    let endpoint = match target {
        "/score" => Endpoint::Score,
        "/ingest" => Endpoint::Ingest,
        "/admin/refit" => Endpoint::Refit,
        "/admin/snapshot" => Endpoint::Snapshot,
        "/admin/snapshot/info" => Endpoint::SnapshotInfo,
        "/healthz" if tenant.is_none() => Endpoint::Healthz,
        "/metrics" if tenant.is_none() => Endpoint::Metrics,
        _ => {
            let resp = Response::text(404, format!("no such endpoint: {}\n", req.target));
            return (resp, None, tenant_owned);
        }
    };
    let expected = match endpoint {
        Endpoint::Healthz | Endpoint::Metrics | Endpoint::SnapshotInfo => "GET",
        _ => "POST",
    };
    if req.method != expected {
        let resp = Response::text(405, format!("{} requires {expected}\n", req.target))
            .with_header("allow", expected.to_owned());
        return (resp, None, tenant_owned);
    }
    drop(route_span);
    shared.counters.count_request(endpoint);
    // The `handle` span brackets the endpoint dispatch and is the
    // thread-current parent while it runs, so the per-batch spans
    // below — and anything deeper (tenant fan-out, stream scoring,
    // fit stages) — nest under it.
    let handle_span = trace::current().map(|h| {
        h.child("handle")
            .with_attr("endpoint", endpoint.name().to_owned())
    });
    let _handle_cur = handle_span.as_ref().map(trace::TraceSpan::make_current);
    let resp = match endpoint {
        Endpoint::Healthz => {
            // Generation and uptime in the body let probes tell a
            // healthy server from one whose swap loop wedged (a stuck
            // generation under ingest load is the tell).
            Response::json(
                200,
                format!(
                    "{{\"status\": \"ok\", \"generation\": {}, \"uptime_seconds\": {:.3}}}\n",
                    service.generation(),
                    shared.start.elapsed().as_secs_f64()
                ),
            )
        }
        Endpoint::Metrics => {
            let scrapes: Option<Vec<TenantScrape>> = shared.registry.as_ref().map(|r| {
                r.names()
                    .into_iter()
                    .filter_map(|n| r.get(&n).map(|s| TenantScrape::collect(n, &*s)))
                    .collect()
            });
            Response::text(
                200,
                render_prometheus(
                    &shared.counters,
                    &shared.obs,
                    &*shared.service,
                    &shared.index_label,
                    shared.start.elapsed(),
                    scrapes.as_deref(),
                ),
            )
        }
        Endpoint::Score => {
            let t0 = Instant::now();
            let outcome = {
                let mut span = trace::current().map(|h| h.child("score_batch"));
                let _cur = span.as_ref().map(trace::TraceSpan::make_current);
                let outcome = service.score_ndjson(&req.body);
                if let Some(span) = span.as_mut() {
                    span.attr("lines", (outcome.lines_ok + outcome.lines_err).to_string());
                }
                outcome
            };
            record_line_latency(
                &shared.obs.line_score,
                t0.elapsed(),
                outcome.lines_ok + outcome.lines_err,
            );
            ndjson_response(shared, outcome)
        }
        Endpoint::Ingest => {
            // An empty body is a complete, zero-line batch: short-circuit
            // to an empty 200 that still carries the current generation,
            // without touching the detector or the replay log.
            if crate::ndjson::body_lines(&req.body).next().is_none() {
                Response::ndjson(200, String::new())
                    .with_header("x-mccatch-generation", service.generation().to_string())
            } else {
                let t0 = Instant::now();
                let outcome = {
                    let mut span = trace::current().map(|h| h.child("ingest_batch"));
                    let _cur = span.as_ref().map(trace::TraceSpan::make_current);
                    let outcome = service.ingest_ndjson(&req.body);
                    if let Some(span) = span.as_mut() {
                        span.attr("lines", (outcome.lines_ok + outcome.lines_err).to_string());
                    }
                    outcome
                };
                record_line_latency(
                    &shared.obs.line_ingest,
                    t0.elapsed(),
                    outcome.lines_ok + outcome.lines_err,
                );
                ndjson_response(shared, outcome)
            }
        }
        Endpoint::Refit => match service.refit_now() {
            Ok(generation) => Response::json(200, format!("{{\"generation\": {generation}}}\n"))
                .with_header("x-mccatch-generation", generation.to_string()),
            Err(e) => Response::json(
                500,
                format!("{{\"error\": \"refit failed: {}\"}}\n", json_escape(&e)),
            ),
        },
        Endpoint::Snapshot => match service.save_snapshot() {
            SnapshotOutcome::Unconfigured => Response::json(
                409,
                "{\"error\": \"no snapshot path configured; set ServerConfig.snapshot_path\"}\n"
                    .to_owned(),
            ),
            SnapshotOutcome::Saved {
                generation,
                seq,
                bytes,
                path,
            } => Response::json(
                200,
                format!(
                    "{{\"generation\": {generation}, \"seq\": {seq}, \"bytes\": {bytes}, \
                     \"path\": \"{}\"}}\n",
                    json_escape(&path)
                ),
            )
            .with_header("x-mccatch-generation", generation.to_string()),
            SnapshotOutcome::Failed(e) => Response::json(
                500,
                format!("{{\"error\": \"snapshot failed: {}\"}}\n", json_escape(&e)),
            ),
        },
        Endpoint::SnapshotInfo => match service.snapshot_info() {
            SnapshotInfoOutcome::Unconfigured => Response::json(
                409,
                "{\"error\": \"no snapshot path configured; set ServerConfig.snapshot_path\"}\n"
                    .to_owned(),
            ),
            SnapshotInfoOutcome::Missing { path } => Response::json(
                404,
                format!(
                    "{{\"error\": \"no snapshot at {} yet; POST /admin/snapshot first\"}}\n",
                    json_escape(&path)
                ),
            ),
            SnapshotInfoOutcome::Info(json) => Response::json(200, json),
            SnapshotInfoOutcome::Failed(e) => Response::json(
                500,
                format!(
                    "{{\"error\": \"snapshot info failed: {}\"}}\n",
                    json_escape(&e)
                ),
            ),
        },
        Endpoint::Tenants | Endpoint::DebugSlow | Endpoint::DebugTrace => {
            unreachable!("handled above")
        }
    };
    (resp, Some(endpoint), tenant_owned)
}

/// Wraps an NDJSON outcome into its `200` response, folding the
/// per-line accounting into the server counters and tagging the batch
/// with the model generation it was served by.
fn ndjson_response(shared: &Shared, outcome: NdjsonOutcome) -> Response {
    shared
        .counters
        .lines_ok
        .fetch_add(outcome.lines_ok, Ordering::AcqRel);
    shared
        .counters
        .lines_err
        .fetch_add(outcome.lines_err, Ordering::AcqRel);
    Response::ndjson(200, outcome.body)
        .with_header("x-mccatch-generation", outcome.generation.to_string())
}
