//! Request counters and the Prometheus text exposition for `/metrics`.

use crate::obs::ServerObs;
use crate::service::Service;
use mccatch_core::ModelStats;
use mccatch_obs::{render_histogram, HistogramSnapshot};
use mccatch_stream::StreamStats;
use mccatch_tenant::{ShardQueue, TenantRestoreStats};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The endpoints with per-endpoint request counters and latency
/// histograms. Routing resolves each request to one of these **once**;
/// counters and histograms then index by the discriminant — no string
/// lookups on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// `POST /score`.
    Score,
    /// `POST /ingest`.
    Ingest,
    /// `POST /admin/refit`.
    Refit,
    /// `POST /admin/snapshot`.
    Snapshot,
    /// `GET /admin/snapshot/info`.
    SnapshotInfo,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// The `/admin/tenants` lifecycle routes.
    Tenants,
    /// `GET /admin/debug/slow`.
    DebugSlow,
    /// `GET /admin/debug/trace`.
    DebugTrace,
}

impl Endpoint {
    /// Every endpoint, in exposition order (matches the discriminants).
    pub const ALL: [Endpoint; 10] = [
        Endpoint::Score,
        Endpoint::Ingest,
        Endpoint::Refit,
        Endpoint::Snapshot,
        Endpoint::SnapshotInfo,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Tenants,
        Endpoint::DebugSlow,
        Endpoint::DebugTrace,
    ];

    /// Number of endpoints (the counter/histogram array length).
    pub const COUNT: usize = Self::ALL.len();

    /// The endpoints reachable under a `/t/{tenant}/…` scope.
    pub const SCOPED: [Endpoint; 5] = [
        Endpoint::Score,
        Endpoint::Ingest,
        Endpoint::Refit,
        Endpoint::Snapshot,
        Endpoint::SnapshotInfo,
    ];

    /// The array index of this endpoint.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The `endpoint` label value in the exposition.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Score => "score",
            Endpoint::Ingest => "ingest",
            Endpoint::Refit => "refit",
            Endpoint::Snapshot => "snapshot",
            Endpoint::SnapshotInfo => "snapshot_info",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Tenants => "tenants",
            Endpoint::DebugSlow => "debug_slow",
            Endpoint::DebugTrace => "debug_trace",
        }
    }
}

/// The status codes this server can emit, in exposition order.
pub(crate) const STATUSES: &[u16] = &[200, 400, 404, 405, 409, 413, 431, 500, 503];

/// The [`STATUSES`] index of `status`, resolved by a jump table rather
/// than a scan.
fn status_index(status: u16) -> Option<usize> {
    Some(match status {
        200 => 0,
        400 => 1,
        404 => 2,
        405 => 3,
        409 => 4,
        413 => 5,
        431 => 6,
        500 => 7,
        503 => 8,
        _ => return None,
    })
}

/// Lock-free counters of the HTTP layer, updated by the acceptor and
/// every worker; scraped (and unit-tested) through
/// [`render_prometheus`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    /// Requests routed to each endpoint (indexed by [`Endpoint`]).
    pub requests: [AtomicU64; Endpoint::COUNT],
    /// Responses written per status code (parallel to [`STATUSES`]).
    pub responses: [AtomicU64; 9],
    /// Connections handed to the worker pool.
    pub connections_accepted: AtomicU64,
    /// Connections answered `503` because the queue was full.
    pub connections_rejected: AtomicU64,
    /// Accepted connections currently waiting for a worker.
    pub queue_depth: AtomicUsize,
    /// NDJSON lines scored or ingested successfully.
    pub lines_ok: AtomicU64,
    /// NDJSON lines answered with a per-line error object.
    pub lines_err: AtomicU64,
}

impl Counters {
    /// Bumps the request counter of `endpoint` — a direct array index,
    /// resolved once at routing.
    pub fn count_request(&self, endpoint: Endpoint) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::AcqRel);
    }

    /// Bumps the response counter of `status` (a [`STATUSES`] member).
    pub fn count_response(&self, status: u16) {
        if let Some(i) = status_index(status) {
            self.responses[i].fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// Escapes a label **value** per the Prometheus text exposition format:
/// backslash, double quote, and newline must be escaped inside the
/// quoted value (`\\`, `\"`, `\n`); everything else passes through.
pub(crate) fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the Prometheus exposition way (`+Inf`/`-Inf`/`NaN`
/// instead of JSON's `null`).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

/// One tenant's scrape snapshot, collected by the router before
/// rendering so every family reads a single consistent sample per
/// tenant.
pub(crate) struct TenantScrape {
    /// The tenant's name (becomes the `tenant` label value, escaped).
    pub name: String,
    /// Aggregated stream counters across the tenant's shards.
    pub stream: StreamStats,
    /// Aggregated served-model summary across the tenant's shards.
    pub model: ModelStats,
    /// Aggregated live distance evaluations across the shards.
    pub live_evals: u64,
    /// Per-shard ingest-admission gauges.
    pub queues: Vec<ShardQueue>,
    /// What this tenant's warm restart recovered (`None` for a tenant
    /// created live rather than restored from disk at boot).
    pub restore: Option<TenantRestoreStats>,
}

impl TenantScrape {
    /// Samples one tenant's service facade.
    pub fn collect(name: String, service: &dyn Service) -> Self {
        Self {
            name,
            stream: service.stream_stats(),
            model: service.model_stats(),
            live_evals: service.live_distance_evals(),
            queues: service.shard_queues(),
            restore: service.restore_stats(),
        }
    }
}

/// Renders the full `/metrics` payload: server counters, stream
/// counters, the served model's summary, and the live per-backend
/// distance-evaluation total.
///
/// The default (unnamed) tenant's series stay **unlabeled** — exactly
/// the single-tenant exposition — and each named tenant adds a
/// `{tenant="…"}` series under the same family, so single-tenant
/// deployments and their scrape rules are byte-compatible. `tenants`
/// is `None` when multi-tenant serving is disabled (no tenant families
/// are emitted at all).
pub(crate) fn render_prometheus(
    counters: &Counters,
    obs: &ServerObs,
    service: &dyn Service,
    index_label: &str,
    uptime: std::time::Duration,
    tenants: Option<&[TenantScrape]>,
) -> String {
    let stream = service.stream_stats();
    let model = service.model_stats();
    let scrapes: &[TenantScrape] = tenants.unwrap_or(&[]);
    let mut out = String::with_capacity(4096);
    let mut metric = |name: &str, kind: &str, help: &str, series: &[(String, String)]| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for (labels, value) in series {
            out.push_str(name);
            out.push_str(labels);
            out.push(' ');
            out.push_str(value);
            out.push('\n');
        }
    };
    let plain = |v: String| vec![(String::new(), v)];
    let tenant_label = |name: &str| format!("{{tenant=\"{}\"}}", prom_label_escape(name));
    // A family with the default tenant unlabeled plus one labeled
    // series per named tenant.
    let with_tenants = |default: String, per: &dyn Fn(&TenantScrape) -> String| {
        let mut v = vec![(String::new(), default)];
        for t in scrapes {
            v.push((tenant_label(&t.name), per(t)));
        }
        v
    };

    metric(
        "mccatch_server_requests_total",
        "counter",
        "Requests routed to each endpoint.",
        &Endpoint::ALL
            .iter()
            .zip(&counters.requests)
            .map(|(e, c)| {
                (
                    format!("{{endpoint=\"{}\"}}", e.name()),
                    c.load(Ordering::Acquire).to_string(),
                )
            })
            .collect::<Vec<_>>(),
    );
    metric(
        "mccatch_server_responses_total",
        "counter",
        "Responses written, by status code.",
        &STATUSES
            .iter()
            .zip(&counters.responses)
            .map(|(s, c)| {
                (
                    format!("{{status=\"{s}\"}}"),
                    c.load(Ordering::Acquire).to_string(),
                )
            })
            .collect::<Vec<_>>(),
    );
    metric(
        "mccatch_server_connections_accepted_total",
        "counter",
        "Connections handed to the worker pool.",
        &plain(
            counters
                .connections_accepted
                .load(Ordering::Acquire)
                .to_string(),
        ),
    );
    metric(
        "mccatch_server_connections_rejected_total",
        "counter",
        "Connections answered 503 under backpressure.",
        &plain(
            counters
                .connections_rejected
                .load(Ordering::Acquire)
                .to_string(),
        ),
    );
    metric(
        "mccatch_server_queue_depth",
        "gauge",
        "Accepted connections currently waiting for a worker.",
        &plain(counters.queue_depth.load(Ordering::Acquire).to_string()),
    );
    metric(
        "mccatch_server_ndjson_lines_total",
        "counter",
        "NDJSON request lines processed, by outcome.",
        &[
            (
                "{outcome=\"ok\"}".to_owned(),
                counters.lines_ok.load(Ordering::Acquire).to_string(),
            ),
            (
                "{outcome=\"error\"}".to_owned(),
                counters.lines_err.load(Ordering::Acquire).to_string(),
            ),
        ],
    );

    metric(
        "mccatch_uptime_seconds",
        "gauge",
        "Seconds since this server process started serving.",
        &plain(prom_f64(uptime.as_secs_f64())),
    );
    metric(
        "mccatch_log_dropped_lines_total",
        "counter",
        "Structured log lines that cleared the level gate but failed to reach the sink.",
        &plain(obs.logger.dropped_lines().to_string()),
    );
    let sampler = mccatch_obs::trace::sampler();
    metric(
        "mccatch_traces_finished_total",
        "counter",
        "Traces offered to the tail sampler (0 while tracing is disabled).",
        &plain(sampler.seen().to_string()),
    );
    metric(
        "mccatch_traces_sampled_total",
        "counter",
        "Traces kept by the tail sampler (slow or ending in error).",
        &plain(sampler.kept().to_string()),
    );

    metric(
        "mccatch_stream_events_ingested_total",
        "counter",
        "Events accepted into the sliding window (seed included).",
        &with_tenants(stream.events_ingested.to_string(), &|t| {
            t.stream.events_ingested.to_string()
        }),
    );
    metric(
        "mccatch_stream_events_scored_total",
        "counter",
        "Events scored at arrival.",
        &with_tenants(stream.events_scored.to_string(), &|t| {
            t.stream.events_scored.to_string()
        }),
    );
    metric(
        "mccatch_stream_events_evicted_total",
        "counter",
        "Events evicted from the window by capacity or age.",
        &with_tenants(stream.events_evicted.to_string(), &|t| {
            t.stream.events_evicted.to_string()
        }),
    );
    metric(
        "mccatch_stream_window_len",
        "gauge",
        "Events currently retained in the sliding window.",
        &with_tenants(stream.window_len.to_string(), &|t| {
            t.stream.window_len.to_string()
        }),
    );
    metric(
        "mccatch_stream_window_capacity",
        "gauge",
        "Configured window capacity.",
        &with_tenants(stream.window_capacity.to_string(), &|t| {
            t.stream.window_capacity.to_string()
        }),
    );
    let refit_outcomes = |s: &StreamStats| {
        [
            ("requested", s.refits_requested),
            ("coalesced", s.refits_coalesced),
            ("completed", s.refits_completed),
            ("skipped", s.refits_skipped),
            ("failed", s.refits_failed),
        ]
    };
    let mut refits: Vec<(String, String)> = refit_outcomes(&stream)
        .iter()
        .map(|(o, v)| (format!("{{outcome=\"{o}\"}}"), v.to_string()))
        .collect();
    for t in scrapes {
        for (o, v) in refit_outcomes(&t.stream) {
            refits.push((
                format!(
                    "{{outcome=\"{o}\",tenant=\"{}\"}}",
                    prom_label_escape(&t.name)
                ),
                v.to_string(),
            ));
        }
    }
    metric(
        "mccatch_stream_refits_total",
        "counter",
        "Refit requests, by outcome.",
        &refits,
    );
    metric(
        "mccatch_stream_refit_queue_depth",
        "gauge",
        "Refit requests waiting in the bounded command queue.",
        &with_tenants(stream.refit_queue_depth.to_string(), &|t| {
            t.stream.refit_queue_depth.to_string()
        }),
    );
    metric(
        "mccatch_stream_fit_distance_evals_total",
        "counter",
        "Distance evaluations spent across all completed fits.",
        &with_tenants(stream.fit_distance_evals.to_string(), &|t| {
            t.stream.fit_distance_evals.to_string()
        }),
    );

    metric(
        "mccatch_model_generation",
        "gauge",
        "Generation of the currently served model.",
        &with_tenants(stream.generation.to_string(), &|t| {
            t.stream.generation.to_string()
        }),
    );
    metric(
        "mccatch_model_points",
        "gauge",
        "Reference points in the served model.",
        &with_tenants(model.num_points.to_string(), &|t| {
            t.model.num_points.to_string()
        }),
    );
    metric(
        "mccatch_model_outliers",
        "gauge",
        "Outliers flagged in the served model's reference set.",
        &with_tenants(model.num_outliers.to_string(), &|t| {
            t.model.num_outliers.to_string()
        }),
    );
    metric(
        "mccatch_model_microclusters",
        "gauge",
        "Microclusters gelled in the served model's reference set.",
        &with_tenants(model.num_microclusters.to_string(), &|t| {
            t.model.num_microclusters.to_string()
        }),
    );
    metric(
        "mccatch_model_cutoff_d",
        "gauge",
        "The served model's MDL cutoff distance d.",
        &with_tenants(prom_f64(model.cutoff_d), &|t| prom_f64(t.model.cutoff_d)),
    );
    metric(
        "mccatch_model_degenerate",
        "gauge",
        "1 when the served model is degenerate (cold start).",
        &with_tenants((model.degenerate as u8).to_string(), &|t| {
            (t.model.degenerate as u8).to_string()
        }),
    );
    metric(
        "mccatch_model_fit_distance_evals",
        "gauge",
        "Distance evaluations the served model's fit cost.",
        &with_tenants(model.distance_evals.to_string(), &|t| {
            t.model.distance_evals.to_string()
        }),
    );
    let mut evals = vec![(
        format!("{{index=\"{}\"}}", prom_label_escape(index_label)),
        service.live_distance_evals().to_string(),
    )];
    for t in scrapes {
        evals.push((
            format!(
                "{{index=\"{}\",tenant=\"{}\"}}",
                prom_label_escape(index_label),
                prom_label_escape(&t.name)
            ),
            t.live_evals.to_string(),
        ));
    }
    metric(
        "mccatch_index_distance_evals_total",
        "counter",
        "Live distance evaluations of the served reference tree (fit plus serving queries), by index backend.",
        &evals,
    );

    if let Some(scrapes) = tenants {
        metric(
            "mccatch_tenants",
            "gauge",
            "Live tenants in the registry.",
            &plain(scrapes.len().to_string()),
        );
        let (mut depth, mut capacity, mut rejected) = (Vec::new(), Vec::new(), Vec::new());
        for t in scrapes {
            for q in &t.queues {
                let labels = format!(
                    "{{tenant=\"{}\",shard=\"{}\"}}",
                    prom_label_escape(&t.name),
                    q.shard
                );
                depth.push((labels.clone(), q.depth.to_string()));
                capacity.push((labels.clone(), q.capacity.to_string()));
                rejected.push((labels, q.rejected.to_string()));
            }
        }
        metric(
            "mccatch_tenant_shard_queue_depth",
            "gauge",
            "Ingest calls currently in flight per tenant shard (bounded admission).",
            &depth,
        );
        metric(
            "mccatch_tenant_shard_queue_capacity",
            "gauge",
            "Configured per-shard in-flight ingest bound.",
            &capacity,
        );
        metric(
            "mccatch_tenant_shard_ingest_rejected_total",
            "counter",
            "Ingest calls rejected with shard-saturated backpressure.",
            &rejected,
        );
        // Per-tenant restore counters: 0 everywhere for a tenant that
        // was created live, the recovered figures for one rebuilt from
        // snapshots + replay logs at boot.
        let (mut restored, mut replayed, mut restored_gen) = (Vec::new(), Vec::new(), Vec::new());
        for t in scrapes {
            let labels = tenant_label(&t.name);
            let (shards, events, generation) = t.restore.map_or((0, 0, 0), |r| {
                (r.shards as u64, r.replayed_events, r.generation)
            });
            restored.push((labels.clone(), shards.to_string()));
            replayed.push((labels.clone(), events.to_string()));
            restored_gen.push((labels, generation.to_string()));
        }
        metric(
            "mccatch_tenant_restored_shards",
            "gauge",
            "Shard detectors this tenant rebuilt from snapshots at boot (0 = created live).",
            &restored,
        );
        metric(
            "mccatch_tenant_restore_replayed_events",
            "counter",
            "Replay-log events re-ingested to rebuild this tenant's windows at boot.",
            &replayed,
        );
        metric(
            "mccatch_tenant_restore_generation",
            "gauge",
            "The tenant generation resumed from its snapshot set at boot.",
            &restored_gen,
        );
    }

    // Latency histograms. The default tenant's request series carry
    // only the `endpoint` label — the same unlabeled-tenant convention
    // as every family above — and named tenants add
    // `{endpoint=…,tenant=…}` series for the scoped endpoints they
    // have served.
    let mut request_series: Vec<(String, HistogramSnapshot)> = obs
        .requests
        .snapshot()
        .into_iter()
        .map(|(e, h)| (format!("endpoint=\"{}\"", e.name()), h))
        .collect();
    for (tenant, hists) in obs.tenant_snapshots() {
        for (e, h) in hists {
            if Endpoint::SCOPED.contains(&e) {
                request_series.push((
                    format!(
                        "endpoint=\"{}\",tenant=\"{}\"",
                        e.name(),
                        prom_label_escape(&tenant)
                    ),
                    h,
                ));
            }
        }
    }
    render_histogram(
        &mut out,
        "mccatch_request_duration_seconds",
        "End-to-end request service time, by endpoint (plus tenant-labeled series for scoped requests).",
        &request_series,
    );
    render_histogram(
        &mut out,
        "mccatch_line_duration_seconds",
        "Per-NDJSON-line service time of /score and /ingest, amortized over each batch.",
        &[
            ("endpoint=\"score\"".to_owned(), obs.line_score.snapshot()),
            ("endpoint=\"ingest\"".to_owned(), obs.line_ingest.snapshot()),
        ],
    );
    let stage_series: Vec<(String, HistogramSnapshot)> = mccatch_obs::global()
        .snapshot()
        .into_iter()
        .map(|(stage, h)| (format!("stage=\"{stage}\""), h))
        .collect();
    render_histogram(
        &mut out,
        "mccatch_stage_duration_seconds",
        "Wall-clock time of pipeline stages across the stack (fit, refit, swap, fan-out, restore, snapshot I/O).",
        &stage_series,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_ignore_unknown_statuses_and_count_known_ones() {
        let c = Counters::default();
        c.count_request(Endpoint::Score);
        c.count_request(Endpoint::Score);
        c.count_response(200);
        c.count_response(999);
        assert_eq!(
            c.requests[Endpoint::Score.index()].load(Ordering::Acquire),
            2
        );
        assert_eq!(c.responses[0].load(Ordering::Acquire), 1);
    }

    #[test]
    fn endpoint_indices_match_exposition_order() {
        for (i, e) in Endpoint::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "{}", e.name());
        }
        // The jump table agrees with the STATUSES slice it replaced.
        for (i, s) in STATUSES.iter().enumerate() {
            assert_eq!(status_index(*s), Some(i));
        }
        assert_eq!(status_index(302), None);
    }

    #[test]
    fn prom_f64_spells_nonfinite_the_prometheus_way() {
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(1.5), "1.5");
    }

    #[test]
    fn tenants_endpoint_has_a_request_counter() {
        let c = Counters::default();
        c.count_request(Endpoint::Tenants);
        assert_eq!(
            c.requests[Endpoint::Tenants.index()].load(Ordering::Acquire),
            1
        );
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(prom_label_escape("plain-name_0"), "plain-name_0");
        assert_eq!(prom_label_escape("a\\b"), "a\\\\b");
        assert_eq!(prom_label_escape("a\"b"), "a\\\"b");
        assert_eq!(prom_label_escape("a\nb"), "a\\nb");
        assert_eq!(prom_label_escape("\\\"\n"), "\\\\\\\"\\n");
    }
}
