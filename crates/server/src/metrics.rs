//! Request counters and the Prometheus text exposition for `/metrics`.

use crate::service::Service;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The endpoints with per-endpoint request counters, in exposition
/// order.
pub(crate) const ENDPOINTS: &[&str] = &[
    "score",
    "ingest",
    "refit",
    "snapshot",
    "snapshot_info",
    "healthz",
    "metrics",
];

/// The status codes this server can emit, in exposition order.
pub(crate) const STATUSES: &[u16] = &[200, 400, 404, 405, 409, 413, 431, 500, 503];

/// Lock-free counters of the HTTP layer, updated by the acceptor and
/// every worker; scraped (and unit-tested) through
/// [`render_prometheus`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    /// Requests routed to each endpoint (parallel to [`ENDPOINTS`]).
    pub requests: [AtomicU64; 7],
    /// Responses written per status code (parallel to [`STATUSES`]).
    pub responses: [AtomicU64; 9],
    /// Connections handed to the worker pool.
    pub connections_accepted: AtomicU64,
    /// Connections answered `503` because the queue was full.
    pub connections_rejected: AtomicU64,
    /// Accepted connections currently waiting for a worker.
    pub queue_depth: AtomicUsize,
    /// NDJSON lines scored or ingested successfully.
    pub lines_ok: AtomicU64,
    /// NDJSON lines answered with a per-line error object.
    pub lines_err: AtomicU64,
}

impl Counters {
    /// Bumps the request counter of `endpoint` (a [`ENDPOINTS`] member).
    pub fn count_request(&self, endpoint: &str) {
        if let Some(i) = ENDPOINTS.iter().position(|e| *e == endpoint) {
            self.requests[i].fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Bumps the response counter of `status` (a [`STATUSES`] member).
    pub fn count_response(&self, status: u16) {
        if let Some(i) = STATUSES.iter().position(|s| *s == status) {
            self.responses[i].fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// Formats an `f64` the Prometheus exposition way (`+Inf`/`-Inf`/`NaN`
/// instead of JSON's `null`).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders the full `/metrics` payload: server counters, stream
/// counters, the served model's summary, and the live per-backend
/// distance-evaluation total.
pub(crate) fn render_prometheus(
    counters: &Counters,
    service: &dyn Service,
    index_label: &str,
    uptime: std::time::Duration,
) -> String {
    let stream = service.stream_stats();
    let model = service.model_stats();
    let mut out = String::with_capacity(4096);
    let mut metric = |name: &str, kind: &str, help: &str, series: &[(String, String)]| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for (labels, value) in series {
            out.push_str(name);
            out.push_str(labels);
            out.push(' ');
            out.push_str(value);
            out.push('\n');
        }
    };
    let plain = |v: String| vec![(String::new(), v)];

    metric(
        "mccatch_server_requests_total",
        "counter",
        "Requests routed to each endpoint.",
        &ENDPOINTS
            .iter()
            .zip(&counters.requests)
            .map(|(e, c)| {
                (
                    format!("{{endpoint=\"{e}\"}}"),
                    c.load(Ordering::Acquire).to_string(),
                )
            })
            .collect::<Vec<_>>(),
    );
    metric(
        "mccatch_server_responses_total",
        "counter",
        "Responses written, by status code.",
        &STATUSES
            .iter()
            .zip(&counters.responses)
            .map(|(s, c)| {
                (
                    format!("{{status=\"{s}\"}}"),
                    c.load(Ordering::Acquire).to_string(),
                )
            })
            .collect::<Vec<_>>(),
    );
    metric(
        "mccatch_server_connections_accepted_total",
        "counter",
        "Connections handed to the worker pool.",
        &plain(
            counters
                .connections_accepted
                .load(Ordering::Acquire)
                .to_string(),
        ),
    );
    metric(
        "mccatch_server_connections_rejected_total",
        "counter",
        "Connections answered 503 under backpressure.",
        &plain(
            counters
                .connections_rejected
                .load(Ordering::Acquire)
                .to_string(),
        ),
    );
    metric(
        "mccatch_server_queue_depth",
        "gauge",
        "Accepted connections currently waiting for a worker.",
        &plain(counters.queue_depth.load(Ordering::Acquire).to_string()),
    );
    metric(
        "mccatch_server_ndjson_lines_total",
        "counter",
        "NDJSON request lines processed, by outcome.",
        &[
            (
                "{outcome=\"ok\"}".to_owned(),
                counters.lines_ok.load(Ordering::Acquire).to_string(),
            ),
            (
                "{outcome=\"error\"}".to_owned(),
                counters.lines_err.load(Ordering::Acquire).to_string(),
            ),
        ],
    );

    metric(
        "mccatch_uptime_seconds",
        "gauge",
        "Seconds since this server process started serving.",
        &plain(prom_f64(uptime.as_secs_f64())),
    );

    metric(
        "mccatch_stream_events_ingested_total",
        "counter",
        "Events accepted into the sliding window (seed included).",
        &plain(stream.events_ingested.to_string()),
    );
    metric(
        "mccatch_stream_events_scored_total",
        "counter",
        "Events scored at arrival.",
        &plain(stream.events_scored.to_string()),
    );
    metric(
        "mccatch_stream_events_evicted_total",
        "counter",
        "Events evicted from the window by capacity or age.",
        &plain(stream.events_evicted.to_string()),
    );
    metric(
        "mccatch_stream_window_len",
        "gauge",
        "Events currently retained in the sliding window.",
        &plain(stream.window_len.to_string()),
    );
    metric(
        "mccatch_stream_window_capacity",
        "gauge",
        "Configured window capacity.",
        &plain(stream.window_capacity.to_string()),
    );
    metric(
        "mccatch_stream_refits_total",
        "counter",
        "Refit requests, by outcome.",
        &[
            ("requested", stream.refits_requested),
            ("coalesced", stream.refits_coalesced),
            ("completed", stream.refits_completed),
            ("skipped", stream.refits_skipped),
            ("failed", stream.refits_failed),
        ]
        .iter()
        .map(|(o, v)| (format!("{{outcome=\"{o}\"}}"), v.to_string()))
        .collect::<Vec<_>>(),
    );
    metric(
        "mccatch_stream_refit_queue_depth",
        "gauge",
        "Refit requests waiting in the bounded command queue.",
        &plain(stream.refit_queue_depth.to_string()),
    );
    metric(
        "mccatch_stream_fit_distance_evals_total",
        "counter",
        "Distance evaluations spent across all completed fits.",
        &plain(stream.fit_distance_evals.to_string()),
    );

    metric(
        "mccatch_model_generation",
        "gauge",
        "Generation of the currently served model.",
        &plain(stream.generation.to_string()),
    );
    metric(
        "mccatch_model_points",
        "gauge",
        "Reference points in the served model.",
        &plain(model.num_points.to_string()),
    );
    metric(
        "mccatch_model_outliers",
        "gauge",
        "Outliers flagged in the served model's reference set.",
        &plain(model.num_outliers.to_string()),
    );
    metric(
        "mccatch_model_microclusters",
        "gauge",
        "Microclusters gelled in the served model's reference set.",
        &plain(model.num_microclusters.to_string()),
    );
    metric(
        "mccatch_model_cutoff_d",
        "gauge",
        "The served model's MDL cutoff distance d.",
        &plain(prom_f64(model.cutoff_d)),
    );
    metric(
        "mccatch_model_degenerate",
        "gauge",
        "1 when the served model is degenerate (cold start).",
        &plain((model.degenerate as u8).to_string()),
    );
    metric(
        "mccatch_model_fit_distance_evals",
        "gauge",
        "Distance evaluations the served model's fit cost.",
        &plain(model.distance_evals.to_string()),
    );
    metric(
        "mccatch_index_distance_evals_total",
        "counter",
        "Live distance evaluations of the served reference tree (fit plus serving queries), by index backend.",
        &[(
            format!("{{index=\"{index_label}\"}}"),
            service.live_distance_evals().to_string(),
        )],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_ignore_unknown_keys_and_count_known_ones() {
        let c = Counters::default();
        c.count_request("score");
        c.count_request("score");
        c.count_request("nonsense");
        c.count_response(200);
        c.count_response(999);
        assert_eq!(c.requests[0].load(Ordering::Acquire), 2);
        assert_eq!(c.responses[0].load(Ordering::Acquire), 1);
    }

    #[test]
    fn prom_f64_spells_nonfinite_the_prometheus_way() {
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(1.5), "1.5");
    }
}
