//! # mccatch-server — HTTP scoring over the MCCATCH serving primitives
//!
//! A dependency-free (std-only, like the rest of the workspace)
//! multithreaded HTTP/1.1 service that turns the serving and streaming
//! primitives — `ModelStore`'s atomic tagged snapshots and
//! `StreamDetector`'s prequential ingest with background refit — into
//! something a network client can actually call:
//!
//! | Endpoint | Method | Meaning |
//! |---|---|---|
//! | `/score` | POST | NDJSON points in, one `{"score": …}` per line out, the whole batch scored against **one** tagged model snapshot (`X-Mccatch-Generation` response header) |
//! | `/ingest` | POST | NDJSON events in, one scored-event object per line out; feeds the sliding window and drives the refit policy |
//! | `/admin/refit` | POST | Synchronous refit on the current window; answers the new generation |
//! | `/admin/snapshot` | POST | Persists the served model to the configured `snapshot_path` (atomic tmp-then-rename); answers `{"generation", "seq", "bytes", "path"}`, or `409` when persistence is not configured |
//! | `/admin/snapshot/info` | GET | Reads the snapshot header back (version, backend, points, generation) without loading the model; `404` until a snapshot exists |
//! | `/healthz` | GET | Liveness, with the served model generation and process uptime in a JSON body (probes can detect a wedged swap loop) |
//! | `/metrics` | GET | Prometheus text exposition: request/error counters, queue depth, `StreamStats`, `ModelStats`, live per-backend distance evaluations, plus latency histograms — per-endpoint `mccatch_request_duration_seconds`, per-NDJSON-line `mccatch_line_duration_seconds`, and cross-layer `mccatch_stage_duration_seconds`; with tenancy enabled, `{tenant=…}`-labeled series and per-shard queue gauges |
//! | `/t/{tenant}/score` … | POST/GET | Any of the five endpoints above, scoped to a named tenant ([`serve_tenants`]); equivalently, send `X-Mccatch-Tenant: {tenant}` on the bare path. Unknown tenant → `404`, invalid name → `400` |
//! | `/admin/tenants` | GET | Lists live tenants |
//! | `/admin/tenants/{name}` | PUT / DELETE | Creates (idempotently; the body is an optional NDJSON seed, fitted across the tenant's shards in parallel) or deletes a tenant |
//! | `/admin/debug/slow` | GET | The slow-request ring buffer: the access-log lines (NDJSON) of the most recent requests at or above `ServerConfig::slow_request_ms` |
//!
//! Malformed input degrades **per line**, not per batch: an unparsable
//! or non-UTF-8 NDJSON line becomes a `{"line": N, "error": …}` object
//! in its position while the rest of the batch is served normally.
//! Malformed HTTP is answered with the proper status (`400` bad
//! framing, `404`/`405` routing, `413` oversized body — rejected before
//! reading it — `431` oversized head), and a full accept queue is
//! answered `503` + `Retry-After` instead of buffering without bound.
//!
//! Every response carries an `X-Mccatch-Request-Id` header (echoed from
//! the request when the client sent a sane one, generated otherwise),
//! and `ServerConfig::access_log` emits one structured NDJSON line per
//! request — see the repo-level `ARCHITECTURE.md` ("Observability").
//!
//! Start a server with [`serve`]; stop it with
//! [`ServerHandle::shutdown`] (graceful: in-flight requests drain). See
//! the repo-level `ARCHITECTURE.md` ("Serving over HTTP") for the full
//! listener → pool → store flow.

#![deny(missing_docs)]

pub mod client;
mod config;
mod error;
mod http;
mod metrics;
pub mod ndjson;
mod obs;
mod server;
mod service;

pub use config::{AccessLog, ServerConfig};
pub use error::ServerError;
pub use ndjson::LineParser;
pub use server::{serve, serve_tenants, ServerHandle};
