//! A small, strict HTTP/1.1 request parser and response writer.
//!
//! Deliberately minimal — exactly what the scoring service needs and
//! nothing more: a request line, headers, and an optional
//! `Content-Length` body, over a persistent (keep-alive) connection.
//! Everything outside that subset is rejected with the proper status
//! code rather than guessed at:
//!
//! * a malformed request line, header, or body → `400`
//! * a request head larger than the configured limit → `431`
//! * a declared body larger than the configured limit → `413`
//!   (answered **before** reading the body)
//! * `Transfer-Encoding` (chunked uploads) → `400` — the service
//!   protocol is NDJSON with a known length
//!
//! The parser never allocates proportionally to what a client *claims*,
//! only to what it actually sends within the limits.

use std::io::{BufRead, Read, Write};

/// One parsed HTTP request.
#[derive(Debug)]
pub(crate) struct Request {
    /// The request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path), as sent; query strings are not split.
    pub target: String,
    /// Headers in arrival order, names lowercased. Routing reads
    /// `X-Mccatch-Tenant` from here; the parser folds in the framing
    /// headers (`content-length`, `connection`) itself.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
    /// Whether the client may reuse the connection after the response
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; each variant maps to one status
/// code on the wire.
#[derive(Debug, PartialEq)]
pub(crate) enum RequestError {
    /// `400 Bad Request`: malformed request line, header, or body
    /// (including truncation mid-request).
    Bad(String),
    /// `431 Request Header Fields Too Large`.
    HeadTooLarge {
        /// The configured head limit that was exceeded.
        limit: usize,
    },
    /// `413 Content Too Large`: the declared `Content-Length` exceeds
    /// the limit. The body was *not* read.
    BodyTooLarge {
        /// The declared body length.
        declared: usize,
        /// The configured body limit.
        limit: usize,
    },
}

/// True for the token characters RFC 9110 allows in header names — the
/// strict subset real clients use.
fn is_header_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.')
}

/// Reads one `\n`-terminated line, accounting its bytes against the
/// remaining head budget. Distinguishes "nothing arrived" (`Ok(None)`,
/// a clean close or idle timeout between keep-alive requests) from
/// truncation mid-line (an error).
fn read_head_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    limit: usize,
    at_request_start: bool,
) -> Result<Option<String>, RequestError> {
    let mut raw = Vec::new();
    // Cap the read at the remaining budget + 1 so a header flood stops
    // allocating as soon as it provably exceeds the limit.
    let mut bounded = reader.take((*budget + 1) as u64);
    match bounded.read_until(b'\n', &mut raw) {
        Ok(0) if at_request_start && raw.is_empty() => return Ok(None),
        Ok(0) => return Err(RequestError::Bad("truncated request head".into())),
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) && at_request_start
                && raw.is_empty() =>
        {
            return Ok(None)
        }
        Err(e) => return Err(RequestError::Bad(format!("read failed: {e}"))),
    }
    if raw.len() > *budget {
        return Err(RequestError::HeadTooLarge { limit });
    }
    *budget -= raw.len();
    if !raw.ends_with(b"\r\n") {
        return Err(RequestError::Bad(
            "head lines must end with CRLF".to_owned(),
        ));
    }
    raw.truncate(raw.len() - 2);
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| RequestError::Bad("request head is not valid UTF-8".to_owned()))
}

/// A parsed request head, before its body has been read. The split
/// lets the connection loop honor `Expect: 100-continue` — writing the
/// interim response between head and body — which clients like `curl`
/// send on large uploads (and otherwise stall on for a full second
/// before giving up and sending the body anyway).
pub(crate) struct RequestHead {
    method: String,
    target: String,
    headers: Vec<(String, String)>,
    /// Declared (and already limit-checked) body length.
    pub content_length: usize,
    keep_alive: bool,
}

impl RequestHead {
    /// Whether the client asked for a `100 Continue` before sending its
    /// body.
    pub fn expects_continue(&self) -> bool {
        self.headers
            .iter()
            .any(|(n, v)| n == "expect" && v.eq_ignore_ascii_case("100-continue"))
    }

    /// Completes the request once its body has been read.
    pub fn into_request(self, body: Vec<u8>) -> Request {
        Request {
            method: self.method,
            target: self.target,
            headers: self.headers,
            body,
            keep_alive: self.keep_alive,
        }
    }
}

/// Reads and parses one request head off the connection (everything up
/// to the blank line), including the `Content-Length` validation and
/// the `413` limit check — the body itself is *not* read.
///
/// `Ok(None)` means the client closed (or idled past the read timeout)
/// cleanly *between* requests — the normal end of a keep-alive
/// connection, not an error.
pub(crate) fn read_request_head(
    reader: &mut impl BufRead,
    max_head_bytes: usize,
    max_body_bytes: usize,
) -> Result<Option<RequestHead>, RequestError> {
    let mut budget = max_head_bytes;
    let request_line = match read_head_line(reader, &mut budget, max_head_bytes, true)? {
        None => return Ok(None),
        Some(line) => line,
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Bad(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::Bad(format!("malformed method: {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(RequestError::Bad(format!(
            "request target must be absolute: {target:?}"
        )));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(RequestError::Bad(format!(
                "unsupported protocol version: {other:?}"
            )))
        }
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_head_line(reader, &mut budget, max_head_bytes, false)?
            .expect("mid-head EOF is reported as Bad");
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Bad(format!("malformed header line: {line:?}")))?;
        if name.is_empty() || !name.bytes().all(is_header_name_char) {
            return Err(RequestError::Bad(format!(
                "malformed header name: {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(RequestError::Bad(
            "transfer-encoding is not supported; send a Content-Length body".to_owned(),
        ));
    }

    // All Content-Length headers (if several, they must agree — a
    // classic smuggling vector otherwise).
    let mut content_length = 0usize;
    let mut seen_length: Option<&str> = None;
    for (n, v) in &headers {
        if n != "content-length" {
            continue;
        }
        if let Some(prev) = seen_length {
            if prev != v {
                return Err(RequestError::Bad(
                    "conflicting Content-Length headers".to_owned(),
                ));
            }
            continue;
        }
        seen_length = Some(v);
        // RFC 9110 says 1*DIGIT, nothing else: `usize::from_str` alone
        // would also take a leading `+`, and a proxy in front of this
        // server might frame `+12` differently than we do — exactly the
        // disagreement request smuggling feeds on.
        if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
            return Err(RequestError::Bad(format!("invalid Content-Length: {v:?}")));
        }
        content_length = v
            .parse()
            .map_err(|_| RequestError::Bad(format!("invalid Content-Length: {v:?}")))?;
    }
    if content_length > max_body_bytes {
        return Err(RequestError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }

    let keep_alive = match headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => http11,
    };

    Ok(Some(RequestHead {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        content_length,
        keep_alive,
    }))
}

/// Reads the `len`-byte body that a [`RequestHead`] declared.
pub(crate) fn read_request_body(
    reader: &mut impl BufRead,
    len: usize,
) -> Result<Vec<u8>, RequestError> {
    let mut body = vec![0u8; len];
    if len > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            RequestError::Bad(format!("truncated body: expected {len} bytes ({e})"))
        })?;
    }
    Ok(body)
}

/// Head + body in one call — the path for callers (and tests) that do
/// not need to interleave a `100 Continue` between the two.
#[cfg(test)]
pub(crate) fn read_request(
    reader: &mut impl BufRead,
    max_head_bytes: usize,
    max_body_bytes: usize,
) -> Result<Option<Request>, RequestError> {
    let head = match read_request_head(reader, max_head_bytes, max_body_bytes)? {
        None => return Ok(None),
        Some(head) => head,
    };
    let body = read_request_body(reader, head.content_length)?;
    Ok(Some(head.into_request(body)))
}

/// One response about to go on the wire.
#[derive(Debug)]
pub(crate) struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Additional headers (e.g. `X-Mccatch-Generation`, `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An NDJSON response (one JSON object per line).
    pub fn ndjson(status: u16, body: String) -> Self {
        Self {
            content_type: "application/x-ndjson",
            ..Self::text(status, body)
        }
    }

    /// A single-object JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            content_type: "application/json",
            ..Self::text(status, body)
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }
}

/// Canonical reason phrases for the status codes this server emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `resp` onto the wire. `keep_alive` decides the
/// `Connection` header — the caller owns that decision because it folds
/// in the shutdown flag, not just the client's preference.
pub(crate) fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

impl RequestError {
    /// The on-wire answer for this parse failure. Always closes the
    /// connection: after a malformed request the byte stream can no
    /// longer be trusted to frame another one.
    pub fn to_response(&self) -> Response {
        match self {
            Self::Bad(msg) => Response::text(400, format!("bad request: {msg}\n")),
            Self::HeadTooLarge { limit } => Response::text(
                431,
                format!("request head exceeds the {limit}-byte limit\n"),
            ),
            Self::BodyTooLarge { declared, limit } => Response::text(
                413,
                format!("declared body of {declared} bytes exceeds the {limit}-byte limit\n"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Option<Request>, RequestError> {
        read_request(&mut Cursor::new(raw.to_vec()), 8192, 1 << 20)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n[1.0,2.0]")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/score");
        assert_eq!(req.body, b"[1.0,2.0]");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_head_and_body_are_bad_requests() {
        assert!(matches!(
            parse(b"POST /score HTTP/1.1\r\nContent-Le"),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse(b"POST /score HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(RequestError::Bad(_))
        ));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /healthz\r\n\r\n",
            b"GET /healthz HTTP/2\r\n\r\n",
            b"get /healthz HTTP/1.1\r\n\r\n",
            b"GET healthz HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Bad(_))),
                "{raw:?} must be a 400"
            );
        }
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for raw in [
            b"GET / HTTP/1.1\r\nno colon here\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name!: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nonly-lf: yes\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Bad(_))),
                "{raw:?} must be a 400"
            );
        }
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..500 {
            raw.extend_from_slice(format!("x-filler-{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = read_request(&mut Cursor::new(raw), 1024, 1 << 20).unwrap_err();
        assert_eq!(err, RequestError::HeadTooLarge { limit: 1024 });
        assert_eq!(err.to_response().status, 431);
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        // The cursor holds *no* body bytes: the parser must answer from
        // the declared length alone.
        let raw = b"POST /score HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        let err = read_request(&mut Cursor::new(raw.to_vec()), 8192, 1000).unwrap_err();
        assert_eq!(
            err,
            RequestError::BodyTooLarge {
                declared: 999999,
                limit: 1000
            }
        );
        assert_eq!(err.to_response().status, 413);
    }

    #[test]
    fn transfer_encoding_and_conflicting_lengths_are_rejected() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd"),
            Err(RequestError::Bad(_))
        ));
        // Agreeing duplicates are fine (RFC 9110 permits collapsing).
        assert!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc")
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn invalid_content_length_is_rejected() {
        // "+12" matters: usize::from_str would accept it, but RFC 9110
        // says 1*DIGIT, and a proxy that frames it differently than we
        // do is a smuggling seam.
        for v in ["abc", "-1", "1.5", "", "+12", " 12 x"] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {v}\r\n\r\n");
            assert!(
                matches!(parse(raw.as_bytes()), Err(RequestError::Bad(_))),
                "Content-Length {v:?} must be a 400"
            );
        }
    }

    #[test]
    fn two_pipelined_requests_parse_in_sequence() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /score HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(raw.to_vec());
        let a = read_request(&mut cursor, 8192, 1 << 20).unwrap().unwrap();
        let b = read_request(&mut cursor, 8192, 1 << 20).unwrap().unwrap();
        assert_eq!(
            (a.target.as_str(), b.target.as_str()),
            ("/healthz", "/score")
        );
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut cursor, 8192, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        let resp = Response::text(200, "ok\n").with_header("x-mccatch-generation", "7".into());
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-mccatch-generation: 7\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::text(503, ""), false).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("connection: close"));
    }
}
