//! Per-server observability state: request/line latency histograms,
//! the structured access logger, and the slow-request ring buffer.
//!
//! One [`ServerObs`] lives in the server's `Shared` state. Workers
//! record into it after writing each response; `/metrics` snapshots it
//! into the `mccatch_request_duration_seconds` and
//! `mccatch_line_duration_seconds` histogram families, and
//! `GET /admin/debug/slow` dumps the ring.

use crate::config::{AccessLog, ServerConfig};
use crate::error::ServerError;
use crate::metrics::Endpoint;
use mccatch_obs::{Histogram, HistogramSnapshot, Level, Logger, Ring};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// One latency histogram per endpoint (indexed by [`Endpoint`]).
pub(crate) struct RequestHists {
    hists: [Histogram; Endpoint::COUNT],
}

impl RequestHists {
    pub fn new() -> Self {
        Self {
            hists: [const { Histogram::new() }; Endpoint::COUNT],
        }
    }

    /// Records one served request on `endpoint`.
    pub fn record(&self, endpoint: Endpoint, elapsed: Duration) {
        self.hists[endpoint.index()].record(elapsed);
    }

    /// Snapshots every endpoint histogram, in [`Endpoint::ALL`] order.
    pub fn snapshot(&self) -> Vec<(Endpoint, HistogramSnapshot)> {
        Endpoint::ALL
            .iter()
            .map(|e| (*e, self.hists[e.index()].snapshot()))
            .collect()
    }
}

/// Everything one server records about its own latency and requests.
pub(crate) struct ServerObs {
    /// Default-tenant request latency (the unlabeled `/metrics` series).
    pub requests: RequestHists,
    /// Per-named-tenant request latency, created on a tenant's first
    /// scoped request. Entries outlive tenant deletion — histogram
    /// counters are cumulative, like every other series.
    tenants: RwLock<HashMap<String, Arc<RequestHists>>>,
    /// Per-NDJSON-line latency of `/score`, amortized over each batch.
    pub line_score: Histogram,
    /// Per-NDJSON-line latency of `/ingest`, amortized over each batch.
    pub line_ingest: Histogram,
    /// The structured logger behind the access log.
    pub logger: Logger,
    /// Rendered access-log lines of slow requests, oldest first.
    pub slow: Ring,
    /// Threshold for the ring, in milliseconds (`0` captures all).
    pub slow_ms: u64,
}

impl ServerObs {
    /// Builds the observability state for one server from its config
    /// (opens the access-log file when one is configured).
    pub fn open(config: &ServerConfig) -> Result<Self, ServerError> {
        let logger = match &config.access_log {
            AccessLog::Off => Logger::off(),
            AccessLog::Stderr => Logger::stderr(Level::Info),
            AccessLog::File(path) => {
                Logger::file(path, Level::Info).map_err(|e| ServerError::AccessLog {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?
            }
        };
        // Tracing is opt-in and process-global (the same sampler ring
        // also receives background refit traces from the stream
        // layer): a config with tracing off leaves the sampler alone,
        // so a second tracing-off server in the same process never
        // disables tracing the first one enabled.
        if let Some(slow_ms) = config.trace_slow_ms {
            mccatch_obs::trace::sampler().configure(slow_ms, config.trace_capacity);
        }
        Ok(Self {
            requests: RequestHists::new(),
            tenants: RwLock::new(HashMap::new()),
            line_score: Histogram::new(),
            line_ingest: Histogram::new(),
            logger,
            slow: Ring::new(config.slow_log_capacity),
            slow_ms: config.slow_request_ms,
        })
    }

    /// Records one served request: into the default (unlabeled)
    /// histograms for bare requests, into the tenant's own set for
    /// `/t/{tenant}/…`-scoped ones.
    pub fn record_request(&self, tenant: Option<&str>, endpoint: Endpoint, elapsed: Duration) {
        match tenant {
            None => self.requests.record(endpoint, elapsed),
            Some(name) => self.tenant_hists(name).record(endpoint, elapsed),
        }
    }

    /// The named tenant's histogram set, created on first use.
    fn tenant_hists(&self, name: &str) -> Arc<RequestHists> {
        if let Some(h) = self
            .tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(RequestHists::new())),
        )
    }

    /// Snapshots every tenant's histogram set, sorted by tenant name so
    /// the exposition is deterministic.
    pub fn tenant_snapshots(&self) -> Vec<(String, Vec<(Endpoint, HistogramSnapshot)>)> {
        let mut out: Vec<_> = self
            .tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// A process-unique request id: a per-boot prefix (from the wall clock,
/// taken once) plus a monotone counter — `{boot:08x}-{seq:x}`.
pub(crate) fn next_request_id() -> String {
    static BOOT: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let boot = *BOOT.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ (std::process::id() as u64) << 32
    });
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{:08x}-{seq:x}", boot as u32)
}

/// Echoes a client-supplied `X-Mccatch-Request-Id` when it is sane
/// (visible ASCII, at most 128 bytes — never CR/LF, so it cannot split
/// headers), otherwise generates a fresh id.
pub(crate) fn request_id(client: Option<&str>) -> String {
    match client {
        Some(id)
            if !id.is_empty()
                && id.len() <= 128
                && id.bytes().all(|b| (0x21..=0x7e).contains(&b)) =>
        {
            id.to_owned()
        }
        _ => next_request_id(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_tenant_requests_record_separately() {
        let obs = ServerObs::open(&ServerConfig::default()).unwrap();
        obs.record_request(None, Endpoint::Score, Duration::from_micros(10));
        obs.record_request(Some("a"), Endpoint::Score, Duration::from_micros(10));
        obs.record_request(Some("a"), Endpoint::Ingest, Duration::from_micros(10));
        obs.record_request(Some("b"), Endpoint::Score, Duration::from_micros(10));

        let default = obs.requests.snapshot();
        let score = default
            .iter()
            .find(|(e, _)| *e == Endpoint::Score)
            .unwrap()
            .1;
        assert_eq!(score.count(), 1);

        let tenants = obs.tenant_snapshots();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].0, "a"); // sorted
        assert_eq!(tenants[1].0, "b");
        let a_total: u64 = tenants[0].1.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(a_total, 2);
    }

    #[test]
    fn request_ids_echo_sane_values_and_generate_otherwise() {
        assert_eq!(request_id(Some("abc-123")), "abc-123");
        let generated = request_id(None);
        assert!(generated.contains('-'), "{generated}");
        assert_ne!(request_id(None), generated, "ids are unique");
        // Unsafe or empty values are replaced, not echoed.
        for bad in ["", " ", "a b", "x\u{7f}", &"x".repeat(129)] {
            let id = request_id(Some(bad));
            assert_ne!(id, bad);
        }
    }
}
