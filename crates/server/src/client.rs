//! A minimal blocking HTTP/1.1 client — just enough to probe and
//! load-test the server from integration tests, benches, and smoke
//! gates without external tooling.
//!
//! Not a general-purpose client: it speaks the same strict subset the
//! server does (request line + headers + `Content-Length` bodies over
//! keep-alive connections) and panics on nothing — every failure is an
//! `Err(String)`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("non-UTF-8 body: {e}"))
    }
}

/// A persistent (keep-alive) connection to the server, issuing any
/// number of sequential requests.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects with a 5-second I/O timeout.
    pub fn open(addr: SocketAddr) -> Result<Self, String> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<ClientResponse, String> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: mccatch\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream
            .write_all(head.as_bytes())
            .map_err(|e| e.to_string())?;
        stream.write_all(body).map_err(|e| e.to_string())?;
        stream.flush().map_err(|e| e.to_string())?;
        self.read_response()
    }

    /// Sends raw bytes on the wire (for malformed-request tests) and
    /// reads whatever response comes back.
    pub fn request_raw(&mut self, raw: &[u8]) -> Result<ClientResponse, String> {
        let stream = self.reader.get_mut();
        stream.write_all(raw).map_err(|e| e.to_string())?;
        stream.flush().map_err(|e| e.to_string())?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<ClientResponse, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("read status line: {e}"))?;
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line: {line:?}"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader
                .read_line(&mut line)
                .map_err(|e| format!("read header: {e}"))?;
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed header: {line:?}"))?;
            let name = name.to_ascii_lowercase();
            if name == "content-length" {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad content-length: {e}"))?;
            }
            headers.push((name, value.trim().to_owned()));
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot `GET` on a fresh connection.
pub fn get(addr: SocketAddr, path: &str) -> Result<ClientResponse, String> {
    Connection::open(addr)?.request("GET", path, b"")
}

/// One-shot `POST` on a fresh connection.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> Result<ClientResponse, String> {
    Connection::open(addr)?.request("POST", path, body)
}
