//! Typed errors of the HTTP serving subsystem.

/// Everything that can go wrong configuring or starting a
/// [`ServerHandle`](crate::ServerHandle). Mirrors the stream crate's
/// convention: invalid input is a value, never a panic.
///
/// Per-request problems (malformed HTTP, oversized bodies, unparsable
/// NDJSON lines) are **not** `ServerError`s — they are answered on the
/// wire with the proper status code (400/404/405/413/431/503) or as
/// per-line error objects, and the server keeps running.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The worker pool must have at least one thread.
    InvalidWorkers {
        /// The rejected worker count.
        got: usize,
    },
    /// The pending-connection queue must hold at least one connection.
    InvalidQueue {
        /// The rejected queue capacity.
        got: usize,
    },
    /// The request-body limit must be at least one byte.
    InvalidBodyLimit {
        /// The rejected limit.
        got: usize,
    },
    /// The request-head limit must leave room for a request line and a
    /// couple of headers (at least 128 bytes).
    InvalidHeaderLimit {
        /// The rejected limit.
        got: usize,
    },
    /// Binding the listening socket failed.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The I/O error kind reported by the OS.
        kind: std::io::ErrorKind,
        /// The OS error message.
        message: String,
    },
    /// Opening the configured ingest replay log for appending failed.
    ReplayLog {
        /// The configured log path.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// Opening the configured access-log file for appending failed.
    AccessLog {
        /// The configured log path.
        path: String,
        /// The underlying error message.
        message: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidWorkers { got } => {
                write!(f, "worker pool must have >= 1 thread, got {got}")
            }
            Self::InvalidQueue { got } => {
                write!(f, "pending-connection queue must hold >= 1, got {got}")
            }
            Self::InvalidBodyLimit { got } => {
                write!(f, "max_body_bytes must be >= 1, got {got}")
            }
            Self::InvalidHeaderLimit { got } => {
                write!(f, "max_header_bytes must be >= 128, got {got}")
            }
            Self::Bind {
                addr,
                kind,
                message,
            } => write!(f, "failed to bind {addr}: {message} ({kind:?})"),
            Self::ReplayLog { path, message } => {
                write!(f, "failed to open replay log {path}: {message}")
            }
            Self::AccessLog { path, message } => {
                write!(f, "failed to open access log {path}: {message}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServerError::InvalidWorkers { got: 0 }
            .to_string()
            .contains("worker"));
        let bind = ServerError::Bind {
            addr: "127.0.0.1:80".into(),
            kind: std::io::ErrorKind::PermissionDenied,
            message: "permission denied".into(),
        };
        assert!(bind.to_string().contains("127.0.0.1:80"));
        assert!(bind.to_string().contains("permission denied"));
    }
}
