//! The bridge between the HTTP layer and the serving primitives: a
//! type-erased [`Service`] over `StreamDetector` + `ModelStore`.
//!
//! The HTTP machinery (parser, pool, routing) is deliberately
//! non-generic — it talks to `dyn Service`, the same erasure move
//! `Arc<dyn Model<P>>` makes one layer down. [`StreamService`] is the
//! one implementation: it scores batches against a single tagged model
//! snapshot, feeds ingests through the stream detector (driving the
//! drift/every-N refit policies exactly as a library caller would), and
//! exposes the counters the `/metrics` endpoint renders.

use crate::ndjson::{body_lines, json_escape, json_f64, LineParser};
use mccatch_core::{Model, ModelStats};
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use mccatch_persist::{save_model, PersistPoint, ReplayWriter};
use mccatch_stream::{StreamDetector, StreamStats};
use mccatch_tenant::{RouteKey, ShardQueue, Tenant, TenantError, TenantMap, TenantRestoreStats};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Result of processing one NDJSON request body: the response body
/// (one JSON object per input line) plus the generation tag and the
/// per-line accounting for the request counters.
pub(crate) struct NdjsonOutcome {
    /// The model generation this request is attributed to (the
    /// `X-Mccatch-Generation` response header).
    pub generation: u64,
    /// The NDJSON response body.
    pub body: String,
    /// Lines that parsed and were scored/ingested.
    pub lines_ok: u64,
    /// Lines answered with a per-line error object.
    pub lines_err: u64,
}

/// Result of `POST /admin/snapshot`.
pub(crate) enum SnapshotOutcome {
    /// No snapshot path configured — answered `409`.
    Unconfigured,
    /// The snapshot was written atomically.
    Saved {
        /// Generation of the persisted model.
        generation: u64,
        /// Stream position (events accepted) at capture time.
        seq: u64,
        /// Snapshot size on disk.
        bytes: u64,
        /// Where it was written.
        path: String,
    },
    /// Capturing or writing the snapshot failed — answered `500`.
    Failed(String),
}

/// Result of `GET /admin/snapshot/info`.
pub(crate) enum SnapshotInfoOutcome {
    /// No snapshot path configured — answered `409`.
    Unconfigured,
    /// Configured, but no snapshot has been written yet — answered
    /// `404`.
    Missing {
        /// The configured path that does not exist.
        path: String,
    },
    /// Header metadata of the snapshot on disk, as a JSON object.
    Info(String),
    /// The file exists but its header cannot be parsed — answered
    /// `500`.
    Failed(String),
}

/// What the HTTP layer needs from the scoring backend, erased over the
/// point, metric, and index types.
pub(crate) trait Service: Send + Sync {
    /// `POST /score`: scores every line against **one** tagged model
    /// snapshot; the window is untouched.
    fn score_ndjson(&self, body: &[u8]) -> NdjsonOutcome;
    /// `POST /ingest`: feeds every line through the stream detector
    /// (prequential scoring + window push + refit policy).
    fn ingest_ndjson(&self, body: &[u8]) -> NdjsonOutcome;
    /// `POST /admin/refit`: synchronous refit, returning the new
    /// generation.
    fn refit_now(&self) -> Result<u64, String>;
    /// Current served-model generation (for a tenant: the sum of its
    /// shard generations — monotone either way).
    fn generation(&self) -> u64;
    /// Stream counters for `/metrics`.
    fn stream_stats(&self) -> StreamStats;
    /// Summary of the currently served model for `/metrics`.
    fn model_stats(&self) -> ModelStats;
    /// Live distance evaluations of the served model's reference tree
    /// (fit **plus** serving queries so far) for `/metrics`.
    fn live_distance_evals(&self) -> u64;
    /// `POST /admin/snapshot`: persists the served model to the
    /// configured path.
    fn save_snapshot(&self) -> SnapshotOutcome;
    /// `GET /admin/snapshot/info`: header metadata of the snapshot on
    /// disk.
    fn snapshot_info(&self) -> SnapshotInfoOutcome;
    /// Per-shard ingest-admission gauges for `/metrics` — empty for
    /// backends without bounded shard admission (the default service).
    fn shard_queues(&self) -> Vec<ShardQueue> {
        Vec::new()
    }
    /// What this backend's warm restart recovered, for the per-tenant
    /// restore counters on `/metrics` — `None` for backends that were
    /// not restored from disk (the default service, live-created
    /// tenants).
    fn restore_stats(&self) -> Option<TenantRestoreStats> {
        None
    }
}

/// The [`Service`] over a shared [`StreamDetector`].
pub(crate) struct StreamService<P, M, B> {
    detector: Arc<StreamDetector<P, M, B>>,
    parse: LineParser<P>,
    snapshot_path: Option<PathBuf>,
    /// Ingest replay log, appended under a mutex: events from
    /// concurrent ingest requests interleave whole-line, matching the
    /// order their window pushes happened to land in closely enough for
    /// recovery (ticks are non-decreasing either way).
    replay: Option<Mutex<ReplayWriter>>,
}

impl<P, M, B> StreamService<P, M, B> {
    pub fn new(
        detector: Arc<StreamDetector<P, M, B>>,
        parse: LineParser<P>,
        snapshot_path: Option<PathBuf>,
        replay: Option<ReplayWriter>,
    ) -> Self {
        Self {
            detector,
            parse,
            snapshot_path,
            replay: replay.map(Mutex::new),
        }
    }
}

/// Renders one per-line error object.
fn error_line(line_no: usize, message: &str) -> String {
    format!(
        "{{\"line\": {line_no}, \"error\": \"{}\"}}",
        json_escape(message)
    )
}

/// Atomic snapshot publish shared by the single-store and per-tenant
/// paths: write a sibling `.tmp` file, fsync, then rename into place —
/// a crash mid-write never leaves a torn snapshot at `path`. The temp
/// name is appended (not `with_extension`) so sibling shard files like
/// `snap.bin.acme.0` and `snap.bin.acme.1` get distinct temp files.
fn write_snapshot_atomic<P: PersistPoint>(
    path: &Path,
    model: &dyn Model<P>,
    generation: u64,
    seq: u64,
) -> Result<u64, String> {
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        PathBuf::from(os)
    };
    let write = || -> Result<u64, String> {
        let file = std::fs::File::create(&tmp).map_err(|e| e.to_string())?;
        let mut w = std::io::BufWriter::new(file);
        let bytes = save_model(model, generation, seq, &mut w).map_err(|e| e.to_string())?;
        w.into_inner()
            .map_err(|e| e.to_string())?
            .sync_all()
            .map_err(|e| e.to_string())?;
        std::fs::rename(&tmp, path).map_err(|e| e.to_string())?;
        Ok(bytes)
    };
    write().inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Reads the snapshot header at `path` into the `/admin/snapshot/info`
/// outcome, shared by the single-store and per-tenant paths.
fn snapshot_info_at(path: &Path) -> SnapshotInfoOutcome {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return SnapshotInfoOutcome::Missing {
                path: path.display().to_string(),
            }
        }
        Err(e) => return SnapshotInfoOutcome::Failed(e.to_string()),
    };
    let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
    match mccatch_persist::read_info(std::io::BufReader::new(file)) {
        Ok(info) => SnapshotInfoOutcome::Info(format!(
            "{{\"version\": {}, \"backend\": \"{}\", \"point_kind\": {}, \"dim\": {}, \
             \"num_points\": {}, \"generation\": {}, \"seq\": {}, \"bytes\": {bytes}, \
             \"path\": \"{}\"}}\n",
            info.version,
            json_escape(&info.backend),
            info.point_kind,
            info.dim,
            info.num_points,
            info.generation,
            info.seq,
            json_escape(&path.display().to_string()),
        )),
        Err(e) => SnapshotInfoOutcome::Failed(e.to_string()),
    }
}

/// The on-disk location of one tenant shard's snapshot: the configured
/// base path with `.{tenant}.{shard}` appended (tenant names are
/// `[a-zA-Z0-9_-]{1,64}`, so the suffix can never traverse paths).
/// The layout is owned by the tenant crate — save and restore share it.
pub(crate) fn tenant_snapshot_path(base: &Path, tenant: &str, shard: usize) -> PathBuf {
    mccatch_tenant::shard_file_path(base, tenant, shard)
}

impl<P, M, B> Service for StreamService<P, M, B>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    fn score_ndjson(&self, body: &[u8]) -> NdjsonOutcome {
        // One atomic (model, generation) pair for the whole batch: the
        // response is attributably scored against a single model even
        // if a refit swap lands mid-request, and the scores are
        // bit-identical to `ModelStore::score_batch` on that snapshot
        // (it is the same `Model::score_batch` call).
        let (model, generation) = self.detector.store().snapshot_tagged();
        // Parsed points move straight into the scoring batch; `parsed`
        // only remembers per-line ok/error so results interleave back
        // in position without a second copy of every vector.
        let mut parsed: Vec<Result<(), (usize, String)>> = Vec::new();
        let mut points: Vec<P> = Vec::new();
        for (line_no, raw) in body_lines(body) {
            let entry = match std::str::from_utf8(raw) {
                Err(_) => Err((line_no, "invalid UTF-8".to_owned())),
                Ok(text) => match (self.parse)(text) {
                    Ok(p) => {
                        points.push(p);
                        Ok(())
                    }
                    Err(e) => Err((line_no, e)),
                },
            };
            parsed.push(entry);
        }
        let scores = model.score_batch(&points);
        let mut body = String::new();
        let (mut lines_ok, mut lines_err) = (0u64, 0u64);
        let mut next_score = scores.into_iter();
        for entry in &parsed {
            match entry {
                Ok(_) => {
                    let s = next_score.next().expect("one score per parsed point");
                    body.push_str(&format!("{{\"score\": {}}}\n", json_f64(s)));
                    lines_ok += 1;
                }
                Err((line_no, msg)) => {
                    body.push_str(&error_line(*line_no, msg));
                    body.push('\n');
                    lines_err += 1;
                }
            }
        }
        NdjsonOutcome {
            generation,
            body,
            lines_ok,
            lines_err,
        }
    }

    fn ingest_ndjson(&self, body: &[u8]) -> NdjsonOutcome {
        let mut out = String::new();
        let (mut lines_ok, mut lines_err) = (0u64, 0u64);
        // Newest generation any event in this batch was scored against;
        // the batch header reports the max so a client watching
        // `X-Mccatch-Generation` never sees it regress just because the
        // last line of a batch raced a swap.
        let mut max_generation: Option<u64> = None;
        // When the replay log is on, the lock is held across the whole
        // batch: seq assignment and log append stay atomic, so the log's
        // tick order always matches the window's.
        let mut log = self
            .replay
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()));
        for (line_no, raw) in body_lines(body) {
            match std::str::from_utf8(raw)
                .map_err(|_| "invalid UTF-8".to_owned())
                .and_then(|text| (self.parse)(text))
            {
                Ok(point) => {
                    // Events are scored-then-learned one by one, each
                    // tagged with its own generation; the refit policy
                    // (every-N / drift) fires exactly as it does for a
                    // library `ingest` caller.
                    let event = if let Some(log) = log.as_mut() {
                        let event = self.detector.ingest(point.clone());
                        // Best-effort: a full disk must not fail live
                        // scoring; the torn tail is recovered from at
                        // restore time.
                        let _ = log.append(event.seq, event.tick, &point);
                        event
                    } else {
                        self.detector.ingest(point)
                    };
                    max_generation = Some(max_generation.unwrap_or(0).max(event.generation));
                    out.push_str(&crate::ndjson::scored_event_json(&event));
                    out.push('\n');
                    lines_ok += 1;
                }
                Err(msg) => {
                    out.push_str(&error_line(line_no, &msg));
                    out.push('\n');
                    lines_err += 1;
                }
            }
        }
        NdjsonOutcome {
            generation: max_generation.unwrap_or_else(|| self.detector.generation()),
            body: out,
            lines_ok,
            lines_err,
        }
    }

    fn refit_now(&self) -> Result<u64, String> {
        self.detector.refit_now().map_err(|e| e.to_string())
    }

    fn generation(&self) -> u64 {
        self.detector.generation()
    }

    fn stream_stats(&self) -> StreamStats {
        self.detector.stats()
    }

    fn model_stats(&self) -> ModelStats {
        self.detector.model().stats()
    }

    fn live_distance_evals(&self) -> u64 {
        self.detector.model().distance_stats().evals
    }

    fn save_snapshot(&self) -> SnapshotOutcome {
        let Some(path) = &self.snapshot_path else {
            return SnapshotOutcome::Unconfigured;
        };
        let cp = self.detector.checkpoint();
        match write_snapshot_atomic(path, cp.model.as_ref(), cp.generation, cp.seq) {
            Ok(bytes) => SnapshotOutcome::Saved {
                generation: cp.generation,
                seq: cp.seq,
                bytes,
                path: path.display().to_string(),
            },
            Err(e) => SnapshotOutcome::Failed(e),
        }
    }

    fn snapshot_info(&self) -> SnapshotInfoOutcome {
        let Some(path) = &self.snapshot_path else {
            return SnapshotInfoOutcome::Unconfigured;
        };
        snapshot_info_at(path)
    }
}

/// Sums per-shard stream counters into one tenant-level view for
/// `/metrics`: counters and lengths add; the generation is the tenant
/// generation (sum of shard generations). The embedded model summary is
/// aggregated by [`aggregate_model_stats`].
fn aggregate_stream_stats(shards: &[StreamStats]) -> StreamStats {
    let mut agg = StreamStats::default();
    for s in shards {
        agg.events_ingested += s.events_ingested;
        agg.events_scored += s.events_scored;
        agg.events_evicted += s.events_evicted;
        agg.window_len += s.window_len;
        agg.window_capacity += s.window_capacity;
        agg.generation += s.generation;
        agg.refits_requested += s.refits_requested;
        agg.refits_coalesced += s.refits_coalesced;
        agg.refits_completed += s.refits_completed;
        agg.refits_skipped += s.refits_skipped;
        agg.refits_failed += s.refits_failed;
        agg.refit_queue_depth += s.refit_queue_depth;
        agg.fit_distance_evals += s.fit_distance_evals;
    }
    agg.model = aggregate_model_stats(shards.iter().map(|s| &s.model));
    agg
}

/// Folds per-shard model summaries into one tenant-level view: sizes
/// and costs add, the cutoff is the ensemble-relevant **minimum**
/// (scores serve the shard minimum), the diameter/radii report the
/// widest shard, and the ensemble is degenerate only when every shard
/// is.
fn aggregate_model_stats<'a>(shards: impl Iterator<Item = &'a ModelStats>) -> ModelStats {
    let mut agg = ModelStats {
        cutoff_d: f64::INFINITY,
        degenerate: true,
        ..ModelStats::default()
    };
    for m in shards {
        agg.num_points += m.num_points;
        agg.diameter = agg.diameter.max(m.diameter);
        agg.num_radii = agg.num_radii.max(m.num_radii);
        agg.cutoff_d = agg.cutoff_d.min(m.cutoff_d);
        agg.num_outliers += m.num_outliers;
        agg.num_microclusters += m.num_microclusters;
        agg.distance_evals += m.distance_evals;
        agg.degenerate &= m.degenerate;
    }
    agg
}

/// The [`Service`] over one tenant's shard set: the same NDJSON wire
/// contract as [`StreamService`], with scoring fanned out to the shard
/// ensemble (element-wise minimum) and ingest routed by point key
/// through the tenant's bounded per-shard admission. With one shard
/// this produces byte-identical `/score` bodies to the single-store
/// path (the tenant layer's bit-equality property).
pub(crate) struct TenantService<P, M, B> {
    tenant: Arc<Tenant<P, M, B>>,
    parse: LineParser<P>,
    /// Per-tenant snapshots live at `{base}.{tenant}.{shard}` (see
    /// [`tenant_snapshot_path`]); `None` answers `409` like the
    /// single-store path.
    snapshot_base: Option<PathBuf>,
}

impl<P, M, B> Service for TenantService<P, M, B>
where
    P: PersistPoint + RouteKey + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    fn score_ndjson(&self, body: &[u8]) -> NdjsonOutcome {
        // One tagged snapshot per shard for the whole batch (the
        // tenant's `score_batch` contract): the generation tag is the
        // summed shard generations of that consistent snapshot set.
        let mut parsed: Vec<Result<(), (usize, String)>> = Vec::new();
        let mut points: Vec<P> = Vec::new();
        for (line_no, raw) in body_lines(body) {
            let entry = match std::str::from_utf8(raw) {
                Err(_) => Err((line_no, "invalid UTF-8".to_owned())),
                Ok(text) => match (self.parse)(text) {
                    Ok(p) => {
                        points.push(p);
                        Ok(())
                    }
                    Err(e) => Err((line_no, e)),
                },
            };
            parsed.push(entry);
        }
        let (scores, generation) = self.tenant.score_batch(&points);
        let mut body = String::new();
        let (mut lines_ok, mut lines_err) = (0u64, 0u64);
        let mut next_score = scores.into_iter();
        for entry in &parsed {
            match entry {
                Ok(_) => {
                    let s = next_score.next().expect("one score per parsed point");
                    body.push_str(&format!("{{\"score\": {}}}\n", json_f64(s)));
                    lines_ok += 1;
                }
                Err((line_no, msg)) => {
                    body.push_str(&error_line(*line_no, msg));
                    body.push('\n');
                    lines_err += 1;
                }
            }
        }
        NdjsonOutcome {
            generation,
            body,
            lines_ok,
            lines_err,
        }
    }

    fn ingest_ndjson(&self, body: &[u8]) -> NdjsonOutcome {
        let mut out = String::new();
        let (mut lines_ok, mut lines_err) = (0u64, 0u64);
        for (line_no, raw) in body_lines(body) {
            match std::str::from_utf8(raw)
                .map_err(|_| "invalid UTF-8".to_owned())
                .and_then(|text| (self.parse)(text))
            {
                // Routed ingest: the point's shard scores-then-learns it
                // alone. A saturated shard degrades per line — the
                // rejection becomes this line's error object while the
                // rest of the batch proceeds (backpressure is per
                // shard, not per batch).
                Ok(point) => match self.tenant.ingest(point) {
                    Ok(event) => {
                        out.push_str(&crate::ndjson::scored_event_json(&event));
                        out.push('\n');
                        lines_ok += 1;
                    }
                    Err(e) => {
                        out.push_str(&error_line(line_no, &e.to_string()));
                        out.push('\n');
                        lines_err += 1;
                    }
                },
                Err(msg) => {
                    out.push_str(&error_line(line_no, &msg));
                    out.push('\n');
                    lines_err += 1;
                }
            }
        }
        NdjsonOutcome {
            // The tenant generation (summed shard generations) is the
            // batch tag: monotone per tenant, so a client watching
            // `X-Mccatch-Generation` never sees it regress.
            generation: self.tenant.generation(),
            body: out,
            lines_ok,
            lines_err,
        }
    }

    fn refit_now(&self) -> Result<u64, String> {
        self.tenant.refit_now().map_err(|e| e.to_string())
    }

    fn generation(&self) -> u64 {
        self.tenant.generation()
    }

    fn stream_stats(&self) -> StreamStats {
        aggregate_stream_stats(&self.tenant.shard_stats())
    }

    fn model_stats(&self) -> ModelStats {
        let stats: Vec<ModelStats> = (0..self.tenant.shards())
            .filter_map(|i| self.tenant.shard_detector(i))
            .map(|d| d.model().stats())
            .collect();
        aggregate_model_stats(stats.iter())
    }

    fn live_distance_evals(&self) -> u64 {
        (0..self.tenant.shards())
            .filter_map(|i| self.tenant.shard_detector(i))
            .map(|d| d.model().distance_stats().evals)
            .sum()
    }

    fn save_snapshot(&self) -> SnapshotOutcome {
        let Some(base) = &self.snapshot_base else {
            return SnapshotOutcome::Unconfigured;
        };
        // The tenant crate owns the whole per-tenant layout: one atomic
        // snapshot file per shard, replay-log rotation under the ingest
        // lock, and the manifest written last so the *set* is atomic.
        // The reported path is the per-tenant pattern; generation/seq
        // are the tenant-level sums of the captured checkpoints.
        match self.tenant.save_snapshot(base) {
            Ok(stats) => SnapshotOutcome::Saved {
                generation: stats.generation,
                seq: stats.seq,
                bytes: stats.bytes,
                path: format!("{}.{}.*", base.display(), self.tenant.name()),
            },
            Err(e) => SnapshotOutcome::Failed(e.to_string()),
        }
    }

    fn snapshot_info(&self) -> SnapshotInfoOutcome {
        let Some(base) = &self.snapshot_base else {
            return SnapshotInfoOutcome::Unconfigured;
        };
        // Shard 0 is the representative header (all shards are written
        // by the same save call); its path is what the JSON reports.
        snapshot_info_at(&tenant_snapshot_path(base, self.tenant.name(), 0))
    }

    fn shard_queues(&self) -> Vec<ShardQueue> {
        self.tenant.queue_stats()
    }

    fn restore_stats(&self) -> Option<TenantRestoreStats> {
        self.tenant.restore_stats()
    }
}

/// What the router needs from the tenant registry, erased over the
/// point, metric, and index types (the same move [`Service`] makes for
/// one detector).
pub(crate) trait TenantRegistry: Send + Sync {
    /// The per-tenant [`Service`] facade of `name`, if the tenant
    /// exists.
    fn get(&self, name: &str) -> Option<Arc<dyn Service>>;
    /// `PUT /admin/tenants/{name}`: creates the tenant, seeded from the
    /// request body (the same NDJSON lines as `/ingest`; empty body =
    /// cold start). `Ok(true)` created it, `Ok(false)` found it already
    /// present (idempotent PUT); `Err` is a client-visible message.
    fn create(&self, name: &str, seed_body: &[u8]) -> Result<bool, String>;
    /// `DELETE /admin/tenants/{name}`: unlinks the tenant; `false` when
    /// it did not exist. In-flight requests holding its service finish.
    fn delete(&self, name: &str) -> bool;
    /// Live tenant names, sorted.
    fn names(&self) -> Vec<String>;
    /// Shards every tenant is stamped with (for lifecycle responses).
    fn shards(&self) -> usize;
}

/// The [`TenantRegistry`] over a [`TenantMap`], stamping a
/// [`TenantService`] per lookup (the service is a thin handle: an
/// `Arc`, a parser `Arc`, and a path clone).
pub(crate) struct MapRegistry<P, M, B> {
    map: Arc<TenantMap<P, M, B>>,
    parse: LineParser<P>,
    snapshot_base: Option<PathBuf>,
}

impl<P, M, B> MapRegistry<P, M, B> {
    pub fn new(
        map: Arc<TenantMap<P, M, B>>,
        parse: LineParser<P>,
        snapshot_base: Option<PathBuf>,
    ) -> Self {
        Self {
            map,
            parse,
            snapshot_base,
        }
    }
}

impl<P, M, B> TenantRegistry for MapRegistry<P, M, B>
where
    P: PersistPoint + RouteKey + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    fn get(&self, name: &str) -> Option<Arc<dyn Service>> {
        self.map.get(name).map(|tenant| {
            Arc::new(TenantService {
                tenant,
                parse: Arc::clone(&self.parse),
                snapshot_base: self.snapshot_base.clone(),
            }) as Arc<dyn Service>
        })
    }

    fn create(&self, name: &str, seed_body: &[u8]) -> Result<bool, String> {
        // Creation is all-or-nothing: any unparsable seed line rejects
        // the whole PUT (unlike /ingest's per-line degradation) so a
        // tenant never boots from a silently truncated seed.
        let mut seed = Vec::new();
        for (line_no, raw) in body_lines(seed_body) {
            let text = std::str::from_utf8(raw)
                .map_err(|_| format!("seed line {line_no}: invalid UTF-8"))?;
            seed.push((self.parse)(text).map_err(|e| format!("seed line {line_no}: {e}"))?);
        }
        match self.map.create_seeded(name, seed) {
            Ok(_) => Ok(true),
            Err(TenantError::AlreadyExists { .. }) => Ok(false),
            Err(e) => Err(e.to_string()),
        }
    }

    fn delete(&self, name: &str) -> bool {
        self.map.remove(name).is_ok()
    }

    fn names(&self) -> Vec<String> {
        self.map.names()
    }

    fn shards(&self) -> usize {
        self.map.spec().shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndjson::parse_vector_line;
    use mccatch_core::McCatch;
    use mccatch_index::KdTreeBuilder;
    use mccatch_metric::Euclidean;
    use mccatch_stream::{RefitPolicy, StreamConfig};

    fn service() -> StreamService<Vec<f64>, Euclidean, KdTreeBuilder> {
        let mut seed: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        seed.push(vec![500.0, 500.0]);
        let detector = StreamDetector::new(
            StreamConfig {
                capacity: 512,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap();
        StreamService::new(Arc::new(detector), Arc::new(parse_vector_line), None, None)
    }

    #[test]
    fn score_interleaves_results_with_per_line_errors() {
        let svc = service();
        let out = svc.score_ndjson(b"[4.5, 4.5]\nnot json\n[900.0, 900.0]\n\xff\xfe\n");
        assert_eq!(out.generation, 0);
        assert_eq!((out.lines_ok, out.lines_err), (2, 2));
        let lines: Vec<&str> = out.body.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"score\": "));
        assert!(lines[1].contains("\"line\": 2") && lines[1].contains("error"));
        assert!(lines[2].starts_with("{\"score\": "));
        assert!(lines[3].contains("\"line\": 4") && lines[3].contains("UTF-8"));
        // Scoring does not ingest: the window is untouched.
        assert_eq!(svc.stream_stats().events_scored, 0);
    }

    #[test]
    fn score_is_bit_identical_to_the_model_store() {
        let svc = service();
        let queries = vec![vec![4.5, 4.5], vec![250.0, -3.0]];
        let direct = svc.detector.store().score_batch(&queries);
        let out = svc.score_ndjson(b"[4.5, 4.5]\n[250.0, -3.0]\n");
        let served: Vec<f64> = out
            .body
            .lines()
            .map(|l| {
                l.strip_prefix("{\"score\": ")
                    .and_then(|l| l.strip_suffix('}'))
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            direct, served,
            "wire scores must round-trip bit-identically"
        );
    }

    #[test]
    fn ingest_returns_scored_events_and_feeds_the_window() {
        let svc = service();
        let before = svc.stream_stats().events_ingested;
        let out = svc.ingest_ndjson(b"[4.0, 4.0]\nbroken\n[900.0, 900.0]\n");
        assert_eq!((out.lines_ok, out.lines_err), (2, 1));
        let lines: Vec<&str> = out.body.lines().collect();
        assert!(lines[0].contains("\"seq\": ") && lines[0].contains("\"flagged\": false"));
        assert!(lines[2].contains("\"flagged\": true"));
        assert_eq!(svc.stream_stats().events_ingested, before + 2);
    }

    #[test]
    fn refit_now_advances_the_generation() {
        let svc = service();
        assert_eq!(svc.generation(), 0);
        assert_eq!(svc.refit_now(), Ok(1));
        assert_eq!(svc.generation(), 1);
    }

    fn registry(shards: usize) -> MapRegistry<Vec<f64>, Euclidean, KdTreeBuilder> {
        let map = TenantMap::new(
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            mccatch_tenant::TenantSpec {
                shards,
                stream: StreamConfig {
                    capacity: 512,
                    policy: RefitPolicy::Manual,
                    ..StreamConfig::default()
                },
                ingest_queue: 64,
                replay: None,
            },
        )
        .unwrap();
        MapRegistry::new(Arc::new(map), Arc::new(parse_vector_line), None)
    }

    fn seed_body() -> Vec<u8> {
        let mut body = String::new();
        for i in 0..100 {
            body.push_str(&format!("[{}, {}]\n", i % 10, i / 10));
        }
        body.push_str("[500.0, 500.0]\n");
        body.into_bytes()
    }

    #[test]
    fn single_shard_tenant_serves_byte_identical_score_bodies() {
        let reg = registry(1);
        assert_eq!(reg.create("acme", &seed_body()), Ok(true));
        let tenant_svc = reg.get("acme").unwrap();
        let plain = service();
        let body = b"[4.5, 4.5]\nnot json\n[900.0, 900.0]\n".as_slice();
        let ours = tenant_svc.score_ndjson(body);
        let theirs = plain.score_ndjson(body);
        assert_eq!(ours.body, theirs.body, "wire bodies must be byte-equal");
        assert_eq!(ours.generation, theirs.generation);
        assert_eq!(
            (ours.lines_ok, ours.lines_err),
            (theirs.lines_ok, theirs.lines_err)
        );
    }

    #[test]
    fn registry_lifecycle_is_idempotent_and_validating() {
        let reg = registry(2);
        assert_eq!(reg.create("a", b""), Ok(true));
        assert_eq!(reg.create("a", b""), Ok(false), "idempotent PUT");
        assert_eq!(reg.names(), vec!["a".to_owned()]);
        assert_eq!(reg.shards(), 2);
        // A bad seed line rejects the whole create: all-or-nothing.
        let err = reg.create("b", b"[1.0, 2.0]\nnot json\n").unwrap_err();
        assert!(err.contains("seed line 2"), "{err}");
        assert!(reg.get("b").is_none(), "failed create must not register");
        assert!(reg.delete("a") && !reg.delete("a"));
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn tenant_ingest_reports_saturation_per_line() {
        let reg = registry(1);
        reg.create("t", &seed_body()).unwrap();
        let svc = reg.get("t").unwrap();
        let out = svc.ingest_ndjson(b"[4.0, 4.0]\nbroken\n[900.0, 900.0]\n");
        assert_eq!((out.lines_ok, out.lines_err), (2, 1));
        assert!(out
            .body
            .lines()
            .nth(2)
            .unwrap()
            .contains("\"flagged\": true"));
        // The aggregated stats see both ingests; queues drained.
        assert_eq!(svc.stream_stats().events_ingested, 103);
        let queues = svc.shard_queues();
        assert_eq!(queues.len(), 1);
        assert_eq!((queues[0].depth, queues[0].rejected), (0, 0));
    }

    #[test]
    fn aggregated_stats_sum_counters_and_min_the_cutoff() {
        let a = StreamStats {
            events_ingested: 10,
            window_len: 5,
            generation: 2,
            model: ModelStats {
                num_points: 5,
                cutoff_d: 3.0,
                degenerate: false,
                ..ModelStats::default()
            },
            ..StreamStats::default()
        };
        let b = StreamStats {
            events_ingested: 7,
            window_len: 4,
            generation: 1,
            model: ModelStats {
                num_points: 4,
                cutoff_d: 1.5,
                degenerate: true,
                ..ModelStats::default()
            },
            ..StreamStats::default()
        };
        let agg = aggregate_stream_stats(&[a, b]);
        assert_eq!(agg.events_ingested, 17);
        assert_eq!(agg.window_len, 9);
        assert_eq!(agg.generation, 3);
        assert_eq!(agg.model.num_points, 9);
        assert_eq!(agg.model.cutoff_d, 1.5);
        assert!(!agg.model.degenerate, "one live shard un-degenerates");
    }

    #[test]
    fn tenant_snapshot_paths_append_tenant_and_shard() {
        let p = tenant_snapshot_path(Path::new("/tmp/snap.bin"), "acme", 3);
        assert_eq!(p, PathBuf::from("/tmp/snap.bin.acme.3"));
    }
}
