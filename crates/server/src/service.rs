//! The bridge between the HTTP layer and the serving primitives: a
//! type-erased [`Service`] over `StreamDetector` + `ModelStore`.
//!
//! The HTTP machinery (parser, pool, routing) is deliberately
//! non-generic — it talks to `dyn Service`, the same erasure move
//! `Arc<dyn Model<P>>` makes one layer down. [`StreamService`] is the
//! one implementation: it scores batches against a single tagged model
//! snapshot, feeds ingests through the stream detector (driving the
//! drift/every-N refit policies exactly as a library caller would), and
//! exposes the counters the `/metrics` endpoint renders.

use crate::ndjson::{body_lines, json_escape, json_f64, LineParser};
use mccatch_core::ModelStats;
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use mccatch_persist::{save_model, PersistPoint, ReplayWriter};
use mccatch_stream::{StreamDetector, StreamStats};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Result of processing one NDJSON request body: the response body
/// (one JSON object per input line) plus the generation tag and the
/// per-line accounting for the request counters.
pub(crate) struct NdjsonOutcome {
    /// The model generation this request is attributed to (the
    /// `X-Mccatch-Generation` response header).
    pub generation: u64,
    /// The NDJSON response body.
    pub body: String,
    /// Lines that parsed and were scored/ingested.
    pub lines_ok: u64,
    /// Lines answered with a per-line error object.
    pub lines_err: u64,
}

/// Result of `POST /admin/snapshot`.
pub(crate) enum SnapshotOutcome {
    /// No snapshot path configured — answered `409`.
    Unconfigured,
    /// The snapshot was written atomically.
    Saved {
        /// Generation of the persisted model.
        generation: u64,
        /// Stream position (events accepted) at capture time.
        seq: u64,
        /// Snapshot size on disk.
        bytes: u64,
        /// Where it was written.
        path: String,
    },
    /// Capturing or writing the snapshot failed — answered `500`.
    Failed(String),
}

/// Result of `GET /admin/snapshot/info`.
pub(crate) enum SnapshotInfoOutcome {
    /// No snapshot path configured — answered `409`.
    Unconfigured,
    /// Configured, but no snapshot has been written yet — answered
    /// `404`.
    Missing {
        /// The configured path that does not exist.
        path: String,
    },
    /// Header metadata of the snapshot on disk, as a JSON object.
    Info(String),
    /// The file exists but its header cannot be parsed — answered
    /// `500`.
    Failed(String),
}

/// What the HTTP layer needs from the scoring backend, erased over the
/// point, metric, and index types.
pub(crate) trait Service: Send + Sync {
    /// `POST /score`: scores every line against **one** tagged model
    /// snapshot; the window is untouched.
    fn score_ndjson(&self, body: &[u8]) -> NdjsonOutcome;
    /// `POST /ingest`: feeds every line through the stream detector
    /// (prequential scoring + window push + refit policy).
    fn ingest_ndjson(&self, body: &[u8]) -> NdjsonOutcome;
    /// `POST /admin/refit`: synchronous refit, returning the new
    /// generation.
    fn refit_now(&self) -> Result<u64, String>;
    /// Current served-model generation.
    #[cfg_attr(not(test), allow(dead_code))]
    fn generation(&self) -> u64;
    /// Stream counters for `/metrics`.
    fn stream_stats(&self) -> StreamStats;
    /// Summary of the currently served model for `/metrics`.
    fn model_stats(&self) -> ModelStats;
    /// Live distance evaluations of the served model's reference tree
    /// (fit **plus** serving queries so far) for `/metrics`.
    fn live_distance_evals(&self) -> u64;
    /// `POST /admin/snapshot`: persists the served model to the
    /// configured path.
    fn save_snapshot(&self) -> SnapshotOutcome;
    /// `GET /admin/snapshot/info`: header metadata of the snapshot on
    /// disk.
    fn snapshot_info(&self) -> SnapshotInfoOutcome;
}

/// The [`Service`] over a shared [`StreamDetector`].
pub(crate) struct StreamService<P, M, B> {
    detector: Arc<StreamDetector<P, M, B>>,
    parse: LineParser<P>,
    snapshot_path: Option<PathBuf>,
    /// Ingest replay log, appended under a mutex: events from
    /// concurrent ingest requests interleave whole-line, matching the
    /// order their window pushes happened to land in closely enough for
    /// recovery (ticks are non-decreasing either way).
    replay: Option<Mutex<ReplayWriter>>,
}

impl<P, M, B> StreamService<P, M, B> {
    pub fn new(
        detector: Arc<StreamDetector<P, M, B>>,
        parse: LineParser<P>,
        snapshot_path: Option<PathBuf>,
        replay: Option<ReplayWriter>,
    ) -> Self {
        Self {
            detector,
            parse,
            snapshot_path,
            replay: replay.map(Mutex::new),
        }
    }
}

/// Renders one per-line error object.
fn error_line(line_no: usize, message: &str) -> String {
    format!(
        "{{\"line\": {line_no}, \"error\": \"{}\"}}",
        json_escape(message)
    )
}

impl<P, M, B> Service for StreamService<P, M, B>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    fn score_ndjson(&self, body: &[u8]) -> NdjsonOutcome {
        // One atomic (model, generation) pair for the whole batch: the
        // response is attributably scored against a single model even
        // if a refit swap lands mid-request, and the scores are
        // bit-identical to `ModelStore::score_batch` on that snapshot
        // (it is the same `Model::score_batch` call).
        let (model, generation) = self.detector.store().snapshot_tagged();
        // Parsed points move straight into the scoring batch; `parsed`
        // only remembers per-line ok/error so results interleave back
        // in position without a second copy of every vector.
        let mut parsed: Vec<Result<(), (usize, String)>> = Vec::new();
        let mut points: Vec<P> = Vec::new();
        for (line_no, raw) in body_lines(body) {
            let entry = match std::str::from_utf8(raw) {
                Err(_) => Err((line_no, "invalid UTF-8".to_owned())),
                Ok(text) => match (self.parse)(text) {
                    Ok(p) => {
                        points.push(p);
                        Ok(())
                    }
                    Err(e) => Err((line_no, e)),
                },
            };
            parsed.push(entry);
        }
        let scores = model.score_batch(&points);
        let mut body = String::new();
        let (mut lines_ok, mut lines_err) = (0u64, 0u64);
        let mut next_score = scores.into_iter();
        for entry in &parsed {
            match entry {
                Ok(_) => {
                    let s = next_score.next().expect("one score per parsed point");
                    body.push_str(&format!("{{\"score\": {}}}\n", json_f64(s)));
                    lines_ok += 1;
                }
                Err((line_no, msg)) => {
                    body.push_str(&error_line(*line_no, msg));
                    body.push('\n');
                    lines_err += 1;
                }
            }
        }
        NdjsonOutcome {
            generation,
            body,
            lines_ok,
            lines_err,
        }
    }

    fn ingest_ndjson(&self, body: &[u8]) -> NdjsonOutcome {
        let mut out = String::new();
        let (mut lines_ok, mut lines_err) = (0u64, 0u64);
        // Newest generation any event in this batch was scored against;
        // the batch header reports the max so a client watching
        // `X-Mccatch-Generation` never sees it regress just because the
        // last line of a batch raced a swap.
        let mut max_generation: Option<u64> = None;
        // When the replay log is on, the lock is held across the whole
        // batch: seq assignment and log append stay atomic, so the log's
        // tick order always matches the window's.
        let mut log = self
            .replay
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()));
        for (line_no, raw) in body_lines(body) {
            match std::str::from_utf8(raw)
                .map_err(|_| "invalid UTF-8".to_owned())
                .and_then(|text| (self.parse)(text))
            {
                Ok(point) => {
                    // Events are scored-then-learned one by one, each
                    // tagged with its own generation; the refit policy
                    // (every-N / drift) fires exactly as it does for a
                    // library `ingest` caller.
                    let event = if let Some(log) = log.as_mut() {
                        let event = self.detector.ingest(point.clone());
                        // Best-effort: a full disk must not fail live
                        // scoring; the torn tail is recovered from at
                        // restore time.
                        let _ = log.append(event.seq, event.tick, &point);
                        event
                    } else {
                        self.detector.ingest(point)
                    };
                    max_generation = Some(max_generation.unwrap_or(0).max(event.generation));
                    out.push_str(&crate::ndjson::scored_event_json(&event));
                    out.push('\n');
                    lines_ok += 1;
                }
                Err(msg) => {
                    out.push_str(&error_line(line_no, &msg));
                    out.push('\n');
                    lines_err += 1;
                }
            }
        }
        NdjsonOutcome {
            generation: max_generation.unwrap_or_else(|| self.detector.generation()),
            body: out,
            lines_ok,
            lines_err,
        }
    }

    fn refit_now(&self) -> Result<u64, String> {
        self.detector.refit_now().map_err(|e| e.to_string())
    }

    fn generation(&self) -> u64 {
        self.detector.generation()
    }

    fn stream_stats(&self) -> StreamStats {
        self.detector.stats()
    }

    fn model_stats(&self) -> ModelStats {
        self.detector.model().stats()
    }

    fn live_distance_evals(&self) -> u64 {
        self.detector.model().distance_stats().evals
    }

    fn save_snapshot(&self) -> SnapshotOutcome {
        let Some(path) = &self.snapshot_path else {
            return SnapshotOutcome::Unconfigured;
        };
        let cp = self.detector.checkpoint();
        // Atomic publish: write a sibling temp file, fsync, then rename
        // into place — a crash mid-write never leaves a torn snapshot
        // at the configured path.
        let tmp = path.with_extension("tmp");
        let write = || -> Result<u64, String> {
            let file = std::fs::File::create(&tmp).map_err(|e| e.to_string())?;
            let mut w = std::io::BufWriter::new(file);
            let bytes = save_model(cp.model.as_ref(), cp.generation, cp.seq, &mut w)
                .map_err(|e| e.to_string())?;
            w.into_inner()
                .map_err(|e| e.to_string())?
                .sync_all()
                .map_err(|e| e.to_string())?;
            std::fs::rename(&tmp, path).map_err(|e| e.to_string())?;
            Ok(bytes)
        };
        match write() {
            Ok(bytes) => SnapshotOutcome::Saved {
                generation: cp.generation,
                seq: cp.seq,
                bytes,
                path: path.display().to_string(),
            },
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                SnapshotOutcome::Failed(e)
            }
        }
    }

    fn snapshot_info(&self) -> SnapshotInfoOutcome {
        let Some(path) = &self.snapshot_path else {
            return SnapshotInfoOutcome::Unconfigured;
        };
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return SnapshotInfoOutcome::Missing {
                    path: path.display().to_string(),
                }
            }
            Err(e) => return SnapshotInfoOutcome::Failed(e.to_string()),
        };
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        match mccatch_persist::read_info(std::io::BufReader::new(file)) {
            Ok(info) => SnapshotInfoOutcome::Info(format!(
                "{{\"version\": {}, \"backend\": \"{}\", \"point_kind\": {}, \"dim\": {}, \
                 \"num_points\": {}, \"generation\": {}, \"seq\": {}, \"bytes\": {bytes}, \
                 \"path\": \"{}\"}}\n",
                info.version,
                json_escape(&info.backend),
                info.point_kind,
                info.dim,
                info.num_points,
                info.generation,
                info.seq,
                json_escape(&path.display().to_string()),
            )),
            Err(e) => SnapshotInfoOutcome::Failed(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndjson::parse_vector_line;
    use mccatch_core::McCatch;
    use mccatch_index::KdTreeBuilder;
    use mccatch_metric::Euclidean;
    use mccatch_stream::{RefitPolicy, StreamConfig};

    fn service() -> StreamService<Vec<f64>, Euclidean, KdTreeBuilder> {
        let mut seed: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        seed.push(vec![500.0, 500.0]);
        let detector = StreamDetector::new(
            StreamConfig {
                capacity: 512,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap();
        StreamService::new(Arc::new(detector), Arc::new(parse_vector_line), None, None)
    }

    #[test]
    fn score_interleaves_results_with_per_line_errors() {
        let svc = service();
        let out = svc.score_ndjson(b"[4.5, 4.5]\nnot json\n[900.0, 900.0]\n\xff\xfe\n");
        assert_eq!(out.generation, 0);
        assert_eq!((out.lines_ok, out.lines_err), (2, 2));
        let lines: Vec<&str> = out.body.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"score\": "));
        assert!(lines[1].contains("\"line\": 2") && lines[1].contains("error"));
        assert!(lines[2].starts_with("{\"score\": "));
        assert!(lines[3].contains("\"line\": 4") && lines[3].contains("UTF-8"));
        // Scoring does not ingest: the window is untouched.
        assert_eq!(svc.stream_stats().events_scored, 0);
    }

    #[test]
    fn score_is_bit_identical_to_the_model_store() {
        let svc = service();
        let queries = vec![vec![4.5, 4.5], vec![250.0, -3.0]];
        let direct = svc.detector.store().score_batch(&queries);
        let out = svc.score_ndjson(b"[4.5, 4.5]\n[250.0, -3.0]\n");
        let served: Vec<f64> = out
            .body
            .lines()
            .map(|l| {
                l.strip_prefix("{\"score\": ")
                    .and_then(|l| l.strip_suffix('}'))
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            direct, served,
            "wire scores must round-trip bit-identically"
        );
    }

    #[test]
    fn ingest_returns_scored_events_and_feeds_the_window() {
        let svc = service();
        let before = svc.stream_stats().events_ingested;
        let out = svc.ingest_ndjson(b"[4.0, 4.0]\nbroken\n[900.0, 900.0]\n");
        assert_eq!((out.lines_ok, out.lines_err), (2, 1));
        let lines: Vec<&str> = out.body.lines().collect();
        assert!(lines[0].contains("\"seq\": ") && lines[0].contains("\"flagged\": false"));
        assert!(lines[2].contains("\"flagged\": true"));
        assert_eq!(svc.stream_stats().events_ingested, before + 2);
    }

    #[test]
    fn refit_now_advances_the_generation() {
        let svc = service();
        assert_eq!(svc.generation(), 0);
        assert_eq!(svc.refit_now(), Ok(1));
        assert_eq!(svc.generation(), 1);
    }
}
