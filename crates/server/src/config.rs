//! Configuration of the HTTP server: pool shape, request limits, and
//! backpressure knobs.

use crate::error::ServerError;
use std::path::PathBuf;
use std::time::Duration;

/// Where the structured access log (one JSON object per request) goes.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum AccessLog {
    /// No access log (the default — embedded servers and tests stay
    /// quiet; the slow-request ring still fills).
    #[default]
    Off,
    /// One NDJSON line per request to stderr.
    Stderr,
    /// One NDJSON line per request appended to this file.
    File(PathBuf),
}

/// Configuration of a [`ServerHandle`](crate::ServerHandle), validated
/// up front exactly like `StreamConfig` in the stream crate: an invalid
/// configuration never binds a socket or spawns a thread.
///
/// ```
/// use mccatch_server::ServerConfig;
///
/// let config = ServerConfig {
///     workers: 8,
///     queue: 128,
///     ..ServerConfig::default()
/// };
/// assert!(config.validate().is_ok());
/// assert!(ServerConfig { workers: 0, ..ServerConfig::default() }
///     .validate()
///     .is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Number of worker threads handling connections (`>= 1`). Each
    /// worker owns one connection at a time (keep-alive included), so
    /// this is also the maximum number of concurrently-served clients.
    pub workers: usize,
    /// Bounded capacity of the accepted-connection queue between the
    /// acceptor and the workers (`>= 1`). A connection arriving while
    /// every worker is busy and the queue is full is answered `503`
    /// with a `Retry-After` header and closed — explicit backpressure,
    /// never unbounded buffering.
    pub queue: usize,
    /// Largest request body accepted, in bytes (`>= 1`). A
    /// `Content-Length` beyond this is answered `413` without reading
    /// the body.
    pub max_body_bytes: usize,
    /// Largest request head (request line + headers) accepted, in bytes
    /// (`>= 128`). A head growing beyond this is answered `431`.
    pub max_header_bytes: usize,
    /// Socket read timeout. A keep-alive connection idle longer than
    /// this is closed, which also bounds how long a graceful shutdown
    /// can wait on an idle client. `None` disables the timeout — then
    /// an idle keep-alive connection can delay shutdown indefinitely.
    pub read_timeout: Option<Duration>,
    /// Seconds advertised in the `Retry-After` header of backpressure
    /// `503` responses.
    pub retry_after_secs: u64,
    /// Where `POST /admin/snapshot` persists the served model (written
    /// atomically: a sibling `.tmp` file, fsynced, then renamed into
    /// place). `None` (the default) answers the snapshot endpoints
    /// `409`: persistence is opt-in.
    pub snapshot_path: Option<PathBuf>,
    /// Ingest replay log appended to by `POST /ingest` (one NDJSON line
    /// per accepted event, fsynced every
    /// [`replay_fsync_every`](Self::replay_fsync_every) events). On a
    /// warm restart, replaying it rebuilds the exact sliding window —
    /// see `mccatch_persist::restore_stream`. `None` (the default)
    /// disables the log.
    pub replay_log: Option<PathBuf>,
    /// Fsync cadence of the replay log, in accepted events (`0` behaves
    /// as `1`, i.e. fsync on every event).
    pub replay_fsync_every: u64,
    /// Structured access-log destination (`--access-log` in the CLI).
    pub access_log: AccessLog,
    /// Requests at least this many milliseconds end to end are captured
    /// in the slow-request ring buffer served at
    /// `GET /admin/debug/slow` (`--slow-ms` in the CLI; `0` captures
    /// every request).
    pub slow_request_ms: u64,
    /// How many slow-request lines the ring buffer retains (oldest
    /// evicted first; `0` disables the ring).
    pub slow_log_capacity: usize,
    /// Per-request tracing threshold (`--trace-slow-ms` in the CLI).
    /// `Some(ms)` enables span collection on every request and
    /// tail-samples traces at least `ms` milliseconds long — or ending
    /// in error — into the ring served at `GET /admin/debug/trace`
    /// (`0` keeps every trace). `None` (the default) disables tracing:
    /// the per-request cost collapses to one atomic load.
    ///
    /// Tracing state is process-global (background refit traces from
    /// the stream layer land in the same ring), so a server with
    /// `None` never *disables* tracing another server in the same
    /// process enabled.
    pub trace_slow_ms: Option<u64>,
    /// How many sampled traces the trace ring retains (oldest evicted
    /// first; `--trace-capacity` in the CLI).
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue: 64,
            max_body_bytes: 4 << 20,
            max_header_bytes: 8 << 10,
            read_timeout: Some(Duration::from_secs(5)),
            retry_after_secs: 1,
            snapshot_path: None,
            replay_log: None,
            replay_fsync_every: 64,
            access_log: AccessLog::Off,
            slow_request_ms: 500,
            slow_log_capacity: 128,
            trace_slow_ms: None,
            trace_capacity: 64,
        }
    }
}

impl ServerConfig {
    /// Checks every knob, returning the first violation as a typed
    /// [`ServerError`]. Called by [`serve`](crate::serve), so an invalid
    /// configuration can never start listening.
    pub fn validate(&self) -> Result<(), ServerError> {
        if self.workers == 0 {
            return Err(ServerError::InvalidWorkers { got: 0 });
        }
        if self.queue == 0 {
            return Err(ServerError::InvalidQueue { got: 0 });
        }
        if self.max_body_bytes == 0 {
            return Err(ServerError::InvalidBodyLimit { got: 0 });
        }
        if self.max_header_bytes < 128 {
            return Err(ServerError::InvalidHeaderLimit {
                got: self.max_header_bytes,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServerConfig::default().validate().is_ok());
    }

    #[test]
    fn each_knob_is_checked() {
        let base = ServerConfig::default;
        assert_eq!(
            ServerConfig {
                workers: 0,
                ..base()
            }
            .validate(),
            Err(ServerError::InvalidWorkers { got: 0 })
        );
        assert_eq!(
            ServerConfig { queue: 0, ..base() }.validate(),
            Err(ServerError::InvalidQueue { got: 0 })
        );
        assert_eq!(
            ServerConfig {
                max_body_bytes: 0,
                ..base()
            }
            .validate(),
            Err(ServerError::InvalidBodyLimit { got: 0 })
        );
        assert_eq!(
            ServerConfig {
                max_header_bytes: 64,
                ..base()
            }
            .validate(),
            Err(ServerError::InvalidHeaderLimit { got: 64 })
        );
    }
}
