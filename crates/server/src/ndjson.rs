//! NDJSON line codecs: parsing request lines into points and rendering
//! response objects, with no JSON dependency (the workspace is
//! std-only by design).
//!
//! The request protocol is newline-delimited: one point per line in,
//! one JSON object per line out, errors reported **per line** so a
//! single malformed event never aborts the rest of the batch.

use mccatch_stream::ScoredEvent;
use std::sync::Arc;

/// Parses one request line into a point. Implementations must be cheap
/// and infallible in the panic sense — malformed input is an `Err`
/// string that becomes a per-line error object in the response.
pub type LineParser<P> = Arc<dyn Fn(&str) -> Result<P, String> + Send + Sync>;

/// Renders one [`ScoredEvent`] as its NDJSON object — the event fields
/// verbatim. This is the **single** definition of the scored-event wire
/// format: `/ingest` responses and the CLI's `--stream --format json`
/// lines both render through it, so the two surfaces cannot drift
/// apart.
pub fn scored_event_json(e: &ScoredEvent) -> String {
    format!(
        "{{\"seq\": {}, \"tick\": {}, \"score\": {}, \"generation\": {}, \"flagged\": {}}}",
        e.seq,
        e.tick,
        json_f64(e.score),
        e.generation,
        e.flagged
    )
}

/// Parses one NDJSON line into a vector point. Accepts the JSON-array
/// form (`[1.0, 2.5]`) and, for `curl`-friendliness, bare separated
/// floats (`1.0, 2.5` or `1.0 2.5`).
pub fn parse_vector_line(line: &str) -> Result<Vec<f64>, String> {
    let line = line.trim();
    let inner = match line.strip_prefix('[') {
        Some(rest) => rest
            .strip_suffix(']')
            .ok_or_else(|| "unterminated JSON array".to_owned())?,
        None => line,
    };
    let coords: Vec<f64> = inner
        .split(|c: char| c == ',' || c.is_whitespace() || c == ';')
        .filter(|t| !t.is_empty())
        .map(parse_json_number)
        .collect::<Result<_, _>>()?;
    if coords.is_empty() {
        return Err("empty vector".to_owned());
    }
    Ok(coords)
}

/// A [`LineParser`] over [`parse_vector_line`] that additionally
/// enforces a fixed dimensionality, turning a wrong-arity vector into a
/// per-line error instead of a malformed query reaching the model
/// (vector indexes assume queries match the reference dimensionality).
/// The HTTP serving tier uses this with the dimensionality of the
/// seeded window.
pub fn vector_parser(dim: Option<usize>) -> LineParser<Vec<f64>> {
    Arc::new(move |line| {
        let v = parse_vector_line(line)?;
        match dim {
            Some(d) if v.len() != d => Err(format!("expected {d} coordinates, found {}", v.len())),
            _ => Ok(v),
        }
    })
}

/// Like [`vector_parser`] with no up-front dimensionality: the first
/// line it accepts pins the arity for the rest of its life, so even an
/// unseeded server converges on one dimensionality instead of letting
/// mixed-arity traffic into the window (where the next refit would
/// have to fit an index over it).
pub fn vector_parser_auto() -> LineParser<Vec<f64>> {
    let dim = std::sync::OnceLock::new();
    Arc::new(move |line| {
        let v = parse_vector_line(line)?;
        let d = *dim.get_or_init(|| v.len());
        if v.len() != d {
            return Err(format!("expected {d} coordinates, found {}", v.len()));
        }
        Ok(v)
    })
}

/// Parses one NDJSON line into a string point. Accepts a JSON string
/// literal (`"alice"`, with the usual escapes) or, for convenience, the
/// raw trimmed line.
pub fn parse_string_line(line: &str) -> Result<String, String> {
    let line = line.trim();
    let Some(rest) = line.strip_prefix('"') else {
        return Ok(line.to_owned());
    };
    let mut out = String::with_capacity(rest.len());
    let mut chars = rest.chars();
    loop {
        match chars.next() {
            None => return Err("unterminated JSON string".to_owned()),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("invalid \\u escape: {hex:?}"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("invalid code point: {code:#x}"))?,
                    );
                }
                other => return Err(format!("invalid escape: \\{other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
    if chars.next().is_some() {
        return Err("trailing bytes after JSON string".to_owned());
    }
    Ok(out)
}

/// Parses one numeric token strictly: finite JSON number syntax only.
/// Rust's `f64::parse` alone would accept `inf`, `NaN`, hex floats, a
/// leading `+`, and overflow literals like `1e999` (which parses to
/// infinity) — all of which must stay rejected at the protocol
/// boundary, or a client can smuggle non-finite coordinates into the
/// sliding window and poison (or panic) the next refit.
fn parse_json_number(token: &str) -> Result<f64, String> {
    let ok = !token.starts_with('+')
        && token
            .bytes()
            .all(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'));
    if !ok {
        return Err(format!("not a JSON number: {token:?}"));
    }
    match token.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        Ok(_) => Err(format!("number out of f64 range: {token:?}")),
        Err(e) => Err(format!("not a JSON number: {token:?} ({e})")),
    }
}

/// Renders an `f64` as a JSON value: the shortest round-trip decimal
/// when finite (so a client parsing it back recovers the identical
/// bits), `null` otherwise (JSON has no Infinity/NaN literals).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Splits a request body into its non-blank NDJSON lines, yielding the
/// 1-based line number alongside the raw bytes (the number appears in
/// per-line error objects so clients can pinpoint the offender).
pub(crate) fn body_lines(body: &[u8]) -> impl Iterator<Item = (usize, &[u8])> {
    body.split(|&b| b == b'\n')
        .enumerate()
        .map(|(i, line)| {
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            (i + 1, line)
        })
        .filter(|(_, line)| !line.iter().all(u8::is_ascii_whitespace))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_lines_accept_json_arrays_and_bare_csv() {
        assert_eq!(parse_vector_line("[1.0, 2.5]"), Ok(vec![1.0, 2.5]));
        assert_eq!(parse_vector_line("[-3e2]"), Ok(vec![-300.0]));
        assert_eq!(parse_vector_line("1.0, 2.5"), Ok(vec![1.0, 2.5]));
        assert_eq!(parse_vector_line("1 2;3"), Ok(vec![1.0, 2.0, 3.0]));
    }

    #[test]
    fn vector_lines_reject_garbage() {
        for bad in [
            "[1.0, 2.5",
            "[]",
            "",
            "[1, true]",
            "[inf]",
            "[NaN]",
            "{\"x\": 1}",
            // f64::parse alone would take all three of these: a leading
            // plus, and overflow literals that parse to infinity.
            "[+12]",
            "[1e999]",
            "[-1e999]",
        ] {
            assert!(parse_vector_line(bad).is_err(), "{bad:?} must be rejected");
        }
        // Exponent signs inside the number are legal JSON and stay.
        assert_eq!(parse_vector_line("[1e+2, 1e-2]"), Ok(vec![100.0, 0.01]));
    }

    #[test]
    fn vector_parser_auto_pins_the_first_accepted_arity() {
        let p = vector_parser_auto();
        assert!(p("nonsense").is_err(), "a rejected line must not pin");
        assert_eq!(p("[1.0, 2.0]"), Ok(vec![1.0, 2.0]));
        assert!(p("[1.0]").unwrap_err().contains("expected 2"));
        assert_eq!(p("[3.0, 4.0]"), Ok(vec![3.0, 4.0]));
    }

    #[test]
    fn vector_parser_enforces_dimensionality() {
        let p = vector_parser(Some(2));
        assert_eq!(p("[1.0, 2.0]"), Ok(vec![1.0, 2.0]));
        assert!(p("[1.0]").unwrap_err().contains("expected 2"));
        assert!(p("[1.0, 2.0, 3.0]").unwrap_err().contains("found 3"));
        let free = vector_parser(None);
        assert_eq!(free("[1.0]"), Ok(vec![1.0]));
    }

    #[test]
    fn string_lines_accept_json_strings_and_raw_text() {
        assert_eq!(parse_string_line("\"alice\""), Ok("alice".to_owned()));
        assert_eq!(parse_string_line("bob"), Ok("bob".to_owned()));
        assert_eq!(
            parse_string_line("\"a\\\"b\\\\c\\u0041\""),
            Ok("a\"b\\cA".to_owned())
        );
        assert!(parse_string_line("\"unterminated").is_err());
        assert!(parse_string_line("\"a\" trailing").is_err());
        assert!(parse_string_line("\"bad\\q\"").is_err());
    }

    #[test]
    fn json_f64_round_trips_and_nulls_nonfinite() {
        let v = 0.1 + 0.2;
        assert_eq!(json_f64(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn body_lines_skip_blanks_and_number_from_one() {
        let body = b"[1]\r\n\n  \n[2]\n";
        let lines: Vec<(usize, &[u8])> = body_lines(body).collect();
        assert_eq!(lines, vec![(1, b"[1]".as_slice()), (4, b"[2]".as_slice())]);
    }
}
