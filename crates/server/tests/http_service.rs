//! Integration tests over real sockets: every endpoint, the
//! malformed-input matrix, backpressure, graceful shutdown, and
//! serving-under-swap bit-equality — all on ephemeral localhost ports.

use mccatch_core::McCatch;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_server::client::{get, post, ClientResponse, Connection};
use mccatch_server::{ndjson, serve, ServerConfig, ServerError, ServerHandle};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

type VecDetector = StreamDetector<Vec<f64>, Euclidean, KdTreeBuilder>;

/// A 10×10 grid plus one isolate, shifted by `shift` — the reference
/// workload of the serve/stream test suites.
fn grid(shift: f64) -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64])
        .collect();
    pts.push(vec![500.0 + shift, 500.0]);
    pts
}

fn detector(capacity: usize, seed: Vec<Vec<f64>>) -> Arc<VecDetector> {
    Arc::new(
        StreamDetector::new(
            StreamConfig {
                capacity,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap(),
    )
}

fn start_with_capacity(config: ServerConfig, capacity: usize) -> (ServerHandle, Arc<VecDetector>) {
    let detector = detector(capacity, grid(0.0));
    let server = serve(
        "127.0.0.1:0",
        config,
        Arc::clone(&detector),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    (server, detector)
}

fn start(config: ServerConfig) -> (ServerHandle, Arc<VecDetector>) {
    start_with_capacity(config, 512)
}

fn scores_of(resp: &ClientResponse) -> Vec<f64> {
    resp.text()
        .unwrap()
        .lines()
        .map(|l| {
            l.strip_prefix("{\"score\": ")
                .and_then(|l| l.strip_suffix('}'))
                .unwrap_or_else(|| panic!("not a score line: {l:?}"))
                .parse()
                .unwrap()
        })
        .collect()
}

#[test]
fn invalid_config_and_unbindable_addr_are_typed_errors() {
    let detector = detector(64, grid(0.0));
    let err = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        },
        Arc::clone(&detector),
        Arc::new(ndjson::parse_vector_line),
        "kd",
    )
    .err()
    .unwrap();
    assert_eq!(err, ServerError::InvalidWorkers { got: 0 });

    let err = serve(
        "192.0.2.1:1",
        ServerConfig::default(),
        detector,
        Arc::new(ndjson::parse_vector_line),
        "kd",
    )
    .err()
    .unwrap();
    assert!(matches!(err, ServerError::Bind { .. }), "{err:?}");
}

#[test]
fn healthz_and_metrics_answer_200() {
    let (server, _detector) = start(ServerConfig::default());
    let addr = server.local_addr();

    let health = get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    // The body reports liveness plus the served generation and uptime,
    // so probes can detect a wedged swap loop.
    let body = health.text().unwrap();
    assert!(body.contains("\"status\": \"ok\""), "{body}");
    assert!(body.contains("\"generation\": 0"), "{body}");
    assert!(body.contains("\"uptime_seconds\": "), "{body}");

    // Drive one scored batch so the counters are non-trivial.
    let scored = post(addr, "/score", b"[4.5, 4.5]\n").unwrap();
    assert_eq!(scored.status, 200);

    let metrics = get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text().unwrap();
    for needle in [
        "mccatch_server_requests_total{endpoint=\"score\"} 1",
        "mccatch_server_responses_total{status=\"200\"}",
        "mccatch_server_ndjson_lines_total{outcome=\"ok\"} 1",
        "mccatch_server_queue_depth 0",
        "mccatch_stream_events_ingested_total 101",
        "mccatch_stream_refits_total{outcome=\"completed\"} 0",
        "mccatch_model_generation 0",
        "mccatch_model_points 101",
        "mccatch_index_distance_evals_total{index=\"kd\"}",
        "# TYPE mccatch_server_requests_total counter",
        // Latency histograms: the scored request above must land in the
        // score endpoint's family, and the per-line family counts one
        // line; every family keeps the Prometheus histogram shape.
        "# TYPE mccatch_request_duration_seconds histogram",
        "mccatch_request_duration_seconds_bucket{endpoint=\"score\",le=\"+Inf\"} 1",
        "mccatch_request_duration_seconds_count{endpoint=\"score\"} 1",
        "mccatch_line_duration_seconds_count{endpoint=\"score\"} 1",
        "mccatch_line_duration_seconds_count{endpoint=\"ingest\"} 0",
        "# TYPE mccatch_stage_duration_seconds histogram",
        "mccatch_stage_duration_seconds_bucket{stage=\"fit_build\",le=\"+Inf\"}",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn every_response_carries_a_request_id_echoed_or_generated() {
    let (server, _detector) = start(ServerConfig::default());
    let addr = server.local_addr();

    // No client id: the server generates one.
    let resp = get(addr, "/healthz").unwrap();
    let generated = resp.header("x-mccatch-request-id").unwrap().to_owned();
    assert!(!generated.is_empty());

    // A sane client id is echoed back verbatim.
    let mut conn = Connection::open(addr).unwrap();
    let raw = b"GET /healthz HTTP/1.1\r\nhost: t\r\nx-mccatch-request-id: trace-42\r\ncontent-length: 0\r\n\r\n";
    let resp = conn.request_raw(raw).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-mccatch-request-id"), Some("trace-42"));

    // An unprintable id is replaced, not echoed.
    let mut conn = Connection::open(addr).unwrap();
    let raw = b"GET /healthz HTTP/1.1\r\nhost: t\r\nx-mccatch-request-id: a b\r\ncontent-length: 0\r\n\r\n";
    let resp = conn.request_raw(raw).unwrap();
    let replaced = resp.header("x-mccatch-request-id").unwrap();
    assert_ne!(replaced, "a b");
    assert_ne!(replaced, generated);
}

#[test]
fn slow_request_ring_serves_valid_ndjson_access_lines() {
    // Threshold zero: every request is "slow", so the ring fills
    // without needing an artificially slow handler.
    let (server, _detector) = start(ServerConfig {
        slow_request_ms: 0,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let empty = get(addr, "/admin/debug/slow").unwrap();
    assert_eq!(empty.status, 200);

    let scored = post(addr, "/score", b"[4.5, 4.5]\n").unwrap();
    assert_eq!(scored.status, 200);
    let scored_id = scored.header("x-mccatch-request-id").unwrap().to_owned();

    let slow = get(addr, "/admin/debug/slow").unwrap();
    assert_eq!(slow.status, 200);
    let text = slow.text().unwrap();
    let score_line = text
        .lines()
        .find(|l| l.contains("\"path\":\"/score\""))
        .unwrap_or_else(|| panic!("no /score line in ring:\n{text}"));
    for needle in [
        "\"event\":\"request\"",
        "\"method\":\"POST\"",
        "\"status\":200",
        "\"duration_ms\":",
        "\"endpoint\":\"score\"",
        "\"slow\":true",
        &format!("\"id\":\"{scored_id}\""),
    ] {
        assert!(
            score_line.contains(needle),
            "missing {needle:?} in {score_line}"
        );
    }
    // Well-formed NDJSON: one object per line, balanced braces, no
    // trailing garbage.
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }

    // POST is rejected with the proper Allow header.
    let rejected = post(addr, "/admin/debug/slow", b"").unwrap();
    assert_eq!(rejected.status, 405);
}

#[test]
fn default_threshold_keeps_fast_requests_out_of_the_ring() {
    let (server, _detector) = start(ServerConfig::default());
    let addr = server.local_addr();
    let scored = post(addr, "/score", b"[4.5, 4.5]\n").unwrap();
    assert_eq!(scored.status, 200);
    let slow = get(addr, "/admin/debug/slow").unwrap();
    assert_eq!(slow.status, 200);
    assert_eq!(slow.text().unwrap(), "", "sub-500ms requests are not slow");
}

#[test]
fn score_matches_the_model_store_bit_for_bit() {
    let (server, detector) = start(ServerConfig::default());
    let queries = vec![vec![4.5, 4.5], vec![250.0, -3.0], vec![499.9, 500.1]];
    let direct = detector.store().score_batch(&queries);

    let body = "[4.5, 4.5]\n[250.0, -3.0]\n[499.9, 500.1]\n";
    let resp = post(server.local_addr(), "/score", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-mccatch-generation"), Some("0"));
    assert_eq!(
        scores_of(&resp),
        direct,
        "wire scores must round-trip bit-identically"
    );

    // Scoring is a read-only tap: nothing was ingested.
    assert_eq!(detector.stats().events_scored, 0);
}

#[test]
fn ingest_scores_events_and_feeds_the_window() {
    let (server, detector) = start(ServerConfig::default());
    let before = detector.stats().events_ingested;
    let resp = post(
        server.local_addr(),
        "/ingest",
        b"[4.0, 4.0]\n[900.0, 900.0]\n",
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-mccatch-generation"), Some("0"));
    let lines: Vec<&str> = resp.text().unwrap().lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"flagged\": false"), "{}", lines[0]);
    assert!(lines[1].contains("\"flagged\": true"), "{}", lines[1]);
    assert!(lines[0].contains("\"generation\": 0"));
    assert_eq!(detector.stats().events_ingested, before + 2);
}

#[test]
fn empty_ingest_body_short_circuits_with_the_current_generation() {
    let (server, detector) = start(ServerConfig::default());
    let addr = server.local_addr();
    let before = detector.stats().events_ingested;
    // A body with no NDJSON lines (empty, or blank lines only) is a
    // complete zero-line batch: empty 200, nothing ingested, and the
    // X-Mccatch-Generation header still present and current.
    for body in [b"".as_slice(), b"\n\n  \n".as_slice()] {
        let resp = post(addr, "/ingest", body).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text().unwrap(), "");
        assert_eq!(
            resp.header("x-mccatch-generation"),
            Some(detector.generation().to_string().as_str())
        );
    }
    assert_eq!(detector.stats().events_ingested, before);
    // After a refit, the short-circuit reports the new generation.
    detector.refit_now().unwrap();
    let resp = post(addr, "/ingest", b"").unwrap();
    assert_eq!(resp.header("x-mccatch-generation"), Some("1"));
}

#[test]
fn admin_refit_advances_the_generation_for_later_scores() {
    // Capacity equals the workload size, so the shifted traffic below
    // evicts the seed completely before the refit pins the model to it.
    let (server, detector) = start_with_capacity(ServerConfig::default(), 101);
    let addr = server.local_addr();
    for p in grid(1000.0) {
        detector.ingest(p);
    }
    let refit = post(addr, "/admin/refit", b"").unwrap();
    assert_eq!(refit.status, 200);
    assert_eq!(refit.text().unwrap().trim(), "{\"generation\": 1}");
    assert_eq!(refit.header("x-mccatch-generation"), Some("1"));

    let resp = post(addr, "/score", b"[1004.0, 4.0]\n[4.0, 4.0]\n").unwrap();
    assert_eq!(resp.header("x-mccatch-generation"), Some("1"));
    let scores = scores_of(&resp);
    assert_eq!(scores[0], 0.0, "new reference inlier");
    assert!(scores[1] > 0.0, "old grid is now far away");
}

#[test]
fn malformed_input_matrix() {
    let (server, _detector) = start(ServerConfig {
        max_body_bytes: 4096,
        max_header_bytes: 1024,
        // Short server-side read timeout: the truncated-body case below
        // is only answered 400 once the server gives up waiting for the
        // missing bytes, and that must happen well before the client's
        // own 5-second read timeout.
        read_timeout: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // 404: unknown path.
    assert_eq!(get(addr, "/nope").unwrap().status, 404);
    // 405 with Allow: wrong method on every known endpoint.
    for (path, allow) in [
        ("/score", "POST"),
        ("/ingest", "POST"),
        ("/admin/refit", "POST"),
    ] {
        let resp = get(addr, path).unwrap();
        assert_eq!(resp.status, 405, "{path}");
        assert_eq!(resp.header("allow"), Some(allow), "{path}");
    }
    assert_eq!(post(addr, "/healthz", b"").unwrap().status, 405);
    assert_eq!(post(addr, "/metrics", b"").unwrap().status, 405);

    // 400: malformed request lines and headers.
    for raw in [
        b"GARBAGE\r\n\r\n".as_slice(),
        b"GET /healthz HTTP/2\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n",
        b"POST /score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        b"POST /score HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    ] {
        let resp = Connection::open(addr).unwrap().request_raw(raw).unwrap();
        assert_eq!(resp.status, 400, "{raw:?}");
    }

    // 400: truncated request (client hangs up mid-head).
    {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        use std::io::{Read, Write};
        let mut stream = stream;
        stream
            .write_all(b"POST /score HTTP/1.1\r\nContent-Le")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400 "), "{buf}");
    }
    // 400: truncated body (Content-Length promises more than arrives).
    {
        let resp = Connection::open(addr)
            .unwrap()
            .request_raw(b"POST /score HTTP/1.1\r\nContent-Length: 50\r\n\r\n[1.0]")
            .unwrap();
        assert_eq!(resp.status, 400);
    }

    // 413: declared body above the limit, answered without reading it.
    {
        let resp = Connection::open(addr)
            .unwrap()
            .request_raw(b"POST /score HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n")
            .unwrap();
        assert_eq!(resp.status, 413);
    }

    // 431: header flood beyond max_header_bytes.
    {
        let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
        for i in 0..64 {
            raw.extend_from_slice(format!("x-f{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let resp = Connection::open(addr).unwrap().request_raw(&raw).unwrap();
        assert_eq!(resp.status, 431);
    }

    // Per-line degradation: malformed, non-UTF-8, and wrong-arity
    // NDJSON lines become error objects in position; the valid lines
    // are still scored.
    {
        let mut body = b"[4.5, 4.5]\n{not json}\n".to_vec();
        body.extend_from_slice(&[0xff, 0xfe, b'\n']);
        body.extend_from_slice(b"[1.0]\n[9.0, 9.0]\n");
        let resp = post(addr, "/score", &body).unwrap();
        assert_eq!(resp.status, 200, "a bad line never fails the batch");
        let lines: Vec<String> = resp.text().unwrap().lines().map(String::from).collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("{\"score\": "));
        assert!(lines[1].contains("\"line\": 2") && lines[1].contains("\"error\""));
        assert!(lines[2].contains("\"line\": 3") && lines[2].contains("UTF-8"));
        assert!(lines[3].contains("expected 2 coordinates"));
        assert!(lines[4].starts_with("{\"score\": "));
    }

    // The error paths are all visible in /metrics.
    let text = get(addr, "/metrics").unwrap();
    let text = text.text().unwrap();
    for needle in [
        "mccatch_server_responses_total{status=\"400\"} 7",
        "mccatch_server_responses_total{status=\"404\"} 1",
        "mccatch_server_responses_total{status=\"405\"} 5",
        "mccatch_server_responses_total{status=\"413\"} 1",
        "mccatch_server_responses_total{status=\"431\"} 1",
        "mccatch_server_ndjson_lines_total{outcome=\"error\"} 3",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn a_handler_panic_costs_500_not_a_worker_thread() {
    // A dimensionality-free parser lets a 1-d query through to the 2-d
    // kd-tree, which panics. The worker must answer 500 and survive;
    // with a single worker in the pool, a leaked thread would wedge the
    // server visibly.
    let detector = detector(512, grid(0.0));
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        detector,
        Arc::new(ndjson::parse_vector_line),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();
    let resp = post(addr, "/score", b"[1.0]\n").unwrap();
    assert_eq!(resp.status, 500);
    // The lone worker is still alive and serving.
    assert_eq!(get(addr, "/healthz").unwrap().status, 200);
    let metrics = get(addr, "/metrics").unwrap();
    assert!(metrics
        .text()
        .unwrap()
        .contains("mccatch_server_responses_total{status=\"500\"} 1"));
}

#[test]
fn expect_100_continue_is_answered_before_the_body_is_sent() {
    // curl sends `Expect: 100-continue` on large uploads and holds the
    // body back until the interim response (or a 1-second timeout) —
    // the server must answer it, or every big in-contract batch stalls.
    let (server, _detector) = start(ServerConfig::default());
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let body = b"[4.5, 4.5]\n";
    stream
        .write_all(
            format!(
                "POST /score HTTP/1.1\r\nExpect: 100-continue\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // The interim response must arrive before a single body byte is on
    // the wire.
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).unwrap();
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    let rest = String::from_utf8(rest).unwrap();
    assert!(rest.starts_with("HTTP/1.1 200 OK\r\n"), "{rest}");
    assert!(rest.contains("{\"score\": "), "{rest}");
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (server, _detector) = start(ServerConfig::default());
    let mut conn = Connection::open(server.local_addr()).unwrap();
    for _ in 0..5 {
        let resp = conn.request("GET", "/healthz", b"").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    let resp = conn.request("POST", "/score", b"[4.5, 4.5]\n").unwrap();
    assert_eq!(resp.status, 200);
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    // One worker, a one-slot queue, and a worker deliberately wedged on
    // a silent connection: the third client must be turned away
    // immediately with 503 + Retry-After, not buffered.
    let (server, _detector) = start(ServerConfig {
        workers: 1,
        queue: 1,
        read_timeout: Some(Duration::from_secs(2)),
        retry_after_secs: 7,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Occupies the only worker (sends nothing, so the worker sits in
    // read until its timeout).
    let wedge = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    // Occupies the only queue slot.
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let rejected = get(addr, "/healthz").unwrap();
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.header("retry-after"), Some("7"));

    drop(wedge);
    drop(queued);
    // Once the wedge times out, service resumes.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match get(addr, "/healthz") {
            Ok(resp) if resp.status == 200 => break,
            _ if std::time::Instant::now() > deadline => panic!("service never recovered"),
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    // The recovery probes above may themselves have been rejected a few
    // more times before the wedge cleared, so assert on at-least-one.
    let metrics = get(addr, "/metrics").unwrap();
    let rejected: u64 = metrics
        .text()
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("mccatch_server_connections_rejected_total "))
        .expect("rejected counter exposed")
        .parse()
        .unwrap();
    assert!(rejected >= 1, "no rejection recorded");
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let (server, _detector) = start(ServerConfig {
        read_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // A keep-alive connection with a served request is in flight…
    let mut conn = Connection::open(addr).unwrap();
    assert_eq!(conn.request("GET", "/healthz", b"").unwrap().status, 200);

    // …and shutdown still completes promptly (the idle connection is
    // released by the read timeout), draining every thread.
    let t0 = std::time::Instant::now();
    server.shutdown();
    server.shutdown(); // idempotent
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown hung: {:?}",
        t0.elapsed()
    );

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
            || get(addr, "/healthz").is_err(),
        "server still answering after shutdown"
    );
}

/// The serving-under-swap contract: clients hammering `/score` while
/// the model is refit under them must (a) see monotonically
/// non-decreasing generation tags per connection and (b) receive scores
/// bit-identical to a direct `ModelStore::score_batch` call on the
/// model of the tagged generation.
#[test]
fn score_under_concurrent_refits_is_tagged_and_bit_identical() {
    // The window alternates between two fully-known states (capacity ==
    // set size, so each ingest pass pins the window exactly), and every
    // refit is a batch fit on one of them — so the expected scores per
    // state can be computed up front with plain `McCatch::fit`.
    let set_a = grid(0.0);
    let set_b = grid(3000.0);
    let queries = vec![vec![4.5, 4.5], vec![3004.5, 4.5], vec![-777.0, 12.0]];
    let expect = |pts: Vec<Vec<f64>>| {
        McCatch::builder()
            .build()
            .unwrap()
            .fit(pts, Euclidean, KdTreeBuilder::default())
            .unwrap()
            .into_model()
            .score_batch(&queries)
    };
    let expected_a = expect(set_a.clone());
    let expected_b = expect(set_b.clone());
    assert_ne!(
        expected_a, expected_b,
        "the two states must be distinguishable"
    );

    let detector = detector(set_a.len(), set_a.clone());
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 6,
            ..ServerConfig::default()
        },
        Arc::clone(&detector),
        Arc::new(ndjson::parse_vector_line),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();
    let body = "[4.5, 4.5]\n[3004.5, 4.5]\n[-777.0, 12.0]\n".to_owned();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let body = body.clone();
            let (expected_a, expected_b) = (expected_a.clone(), expected_b.clone());
            std::thread::spawn(move || {
                let mut conn = Connection::open(addr).unwrap();
                let mut last_gen = 0u64;
                let mut checked = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let resp = conn.request("POST", "/score", body.as_bytes()).unwrap();
                    assert_eq!(resp.status, 200);
                    let generation: u64 = resp
                        .header("x-mccatch-generation")
                        .expect("tagged")
                        .parse()
                        .unwrap();
                    assert!(
                        generation >= last_gen,
                        "generation regressed: {generation} < {last_gen}"
                    );
                    last_gen = generation;
                    let scores = scores_of(&resp);
                    // Every even generation serves state A, every odd
                    // one state B — bit-for-bit.
                    let expected = if generation.is_multiple_of(2) {
                        &expected_a
                    } else {
                        &expected_b
                    };
                    assert_eq!(
                        &scores, expected,
                        "generation {generation} served foreign scores"
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // Swap the served model repeatedly while the clients hammer: pin
    // the window to the other state, then refit synchronously.
    let mut completed_swaps = 0u64;
    for round in 0..6 {
        let set = if round % 2 == 0 { &set_b } else { &set_a };
        for p in set {
            detector.ingest(p.clone());
        }
        detector.refit_now().unwrap();
        completed_swaps += 1;
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let total_checked: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total_checked > 0, "clients never got a response in");
    assert_eq!(detector.generation(), completed_swaps);

    // And the literal contract: a direct ModelStore::score_batch on the
    // final generation matches what the wire now serves.
    let direct = detector.store().score_batch(&queries);
    let resp = post(addr, "/score", body.as_bytes()).unwrap();
    assert_eq!(scores_of(&resp), direct);

    // `/ingest` is tagged too: the batch header must equal the largest
    // per-event generation in the response, so a client watching
    // `X-Mccatch-Generation` never sees it regress just because the
    // last event of a batch raced a swap.
    let resp = post(addr, "/ingest", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let tagged: u64 = resp
        .header("x-mccatch-generation")
        .expect("ingest responses are tagged")
        .parse()
        .unwrap();
    let max_event_gen = resp
        .text()
        .unwrap()
        .lines()
        .map(|l| {
            l.split("\"generation\": ")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .unwrap_or_else(|| panic!("no generation in {l:?}"))
                .parse::<u64>()
                .unwrap()
        })
        .max()
        .unwrap();
    assert_eq!(tagged, max_event_gen);
    assert_eq!(tagged, completed_swaps);
}

/// The snapshot admin endpoints: `409` until persistence is configured,
/// `404` until a snapshot exists, then a save → info round-trip whose
/// numbers agree with each other and with the file on disk.
#[test]
fn snapshot_endpoints_save_and_describe_the_served_model() {
    // Unconfigured server: both endpoints refuse with 409.
    let (server, _detector) = start(ServerConfig::default());
    let addr = server.local_addr();
    assert_eq!(post(addr, "/admin/snapshot", b"").unwrap().status, 409);
    assert_eq!(get(addr, "/admin/snapshot/info").unwrap().status, 409);
    // Wrong methods are 405 with Allow, like every other endpoint.
    let resp = get(addr, "/admin/snapshot").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));
    let resp = post(addr, "/admin/snapshot/info", b"").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    server.shutdown();

    // Configured server: info is 404 until the first save lands.
    let dir = std::env::temp_dir().join(format!("mccatch-server-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_path = dir.join("model.mcsn");
    let _ = std::fs::remove_file(&snapshot_path);
    let detector = detector(512, grid(0.0));
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            snapshot_path: Some(snapshot_path.clone()),
            ..ServerConfig::default()
        },
        Arc::clone(&detector),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();
    assert_eq!(get(addr, "/admin/snapshot/info").unwrap().status, 404);

    let saved = post(addr, "/admin/snapshot", b"").unwrap();
    assert_eq!(saved.status, 200);
    assert_eq!(saved.header("x-mccatch-generation"), Some("0"));
    let saved_text = saved.text().unwrap();
    assert!(saved_text.contains("\"generation\": 0"), "{saved_text}");
    assert!(saved_text.contains("\"bytes\": "), "{saved_text}");

    let info = get(addr, "/admin/snapshot/info").unwrap();
    assert_eq!(info.status, 200);
    let info_text = info.text().unwrap();
    for needle in [
        "\"version\": 1",
        "\"backend\": \"kd\"",
        "\"dim\": 2",
        "\"num_points\": 101",
        "\"generation\": 0",
    ] {
        assert!(
            info_text.contains(needle),
            "missing {needle:?} in {info_text}"
        );
    }
    // The advertised byte count is the file's actual size.
    let on_disk = std::fs::metadata(&snapshot_path).unwrap().len();
    assert!(
        info_text.contains(&format!("\"bytes\": {on_disk}")),
        "{info_text} vs {on_disk} on disk"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
