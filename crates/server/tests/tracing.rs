//! Per-request tracing over real sockets: W3C `traceparent`
//! ingestion/echo, tail sampling into the trace ring, and the
//! Perfetto-loadable `GET /admin/debug/trace` export with the full
//! server → tenant fan-out → stream span tree.
//!
//! These tests live in their own binary on purpose: the trace sampler
//! is process-global, and this file is the only test process that ever
//! configures it — so the "tracing off" phase below really observes the
//! untouched default. The phases share one `#[test]` to keep their
//! order deterministic.

use mccatch_core::McCatch;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_server::client::{post, ClientResponse, Connection};
use mccatch_server::{ndjson, serve_tenants, ServerConfig, ServerHandle};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch_tenant::{TenantMap, TenantSpec};
use std::net::SocketAddr;
use std::sync::Arc;

type VecDetector = StreamDetector<Vec<f64>, Euclidean, KdTreeBuilder>;
type VecTenants = TenantMap<Vec<f64>, Euclidean, KdTreeBuilder>;

/// A 10×10 grid plus one isolate — the reference workload of the
/// serve/stream test suites.
fn grid() -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
        .collect();
    pts.push(vec![500.0, 500.0]);
    pts
}

fn grid_ndjson() -> Vec<u8> {
    grid()
        .into_iter()
        .map(|p| format!("[{}, {}]\n", p[0], p[1]))
        .collect::<String>()
        .into_bytes()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        capacity: 512,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    }
}

fn detector(seed: Vec<Vec<f64>>) -> Arc<VecDetector> {
    Arc::new(
        StreamDetector::new(
            stream_config(),
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap(),
    )
}

fn start_tenants(config: ServerConfig, shards: usize) -> (ServerHandle, Arc<VecTenants>) {
    let map = Arc::new(
        TenantMap::new(
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            TenantSpec {
                shards,
                stream: stream_config(),
                ingest_queue: 1024,
                replay: None,
            },
        )
        .unwrap(),
    );
    let server = serve_tenants(
        "127.0.0.1:0",
        config,
        detector(grid()),
        ndjson::vector_parser(Some(2)),
        "kd",
        Arc::clone(&map),
    )
    .unwrap();
    (server, map)
}

/// One-shot `POST` carrying a `traceparent` header (the plain client
/// helper sends no custom headers).
fn post_traced(addr: SocketAddr, path: &str, body: &[u8], traceparent: &str) -> ClientResponse {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nhost: mccatch\r\ntraceparent: {traceparent}\r\n\
         content-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    Connection::open(addr).unwrap().request_raw(&raw).unwrap()
}

/// Splits a well-formed `00-{32 hex}-{16 hex}-{2 hex}` traceparent.
fn split_traceparent(tp: &str) -> (&str, &str, &str) {
    let parts: Vec<&str> = tp.split('-').collect();
    assert_eq!(parts.len(), 4, "malformed traceparent: {tp:?}");
    assert_eq!(parts[0], "00", "version: {tp:?}");
    assert_eq!(parts[1].len(), 32, "trace id width: {tp:?}");
    assert_eq!(parts[2].len(), 16, "span id width: {tp:?}");
    assert!(
        tp.bytes().all(|b| b == b'-' || b.is_ascii_hexdigit()),
        "non-hex traceparent: {tp:?}"
    );
    (parts[1], parts[2], parts[3])
}

#[test]
fn traceparent_echo_and_debug_trace_end_to_end() {
    let client_tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";

    // ---- Phase 1: tracing off (the process default) ----
    {
        let (server, _map) = start_tenants(ServerConfig::default(), 2);
        let addr = server.local_addr();

        // A valid client traceparent: the trace id is adopted and
        // echoed, the span id is ours (not the caller's), and the
        // sampled flag is 00 because nothing was collected.
        let resp = post_traced(addr, "/score", b"[4.5, 4.5]\n", client_tp);
        assert_eq!(resp.status, 200);
        let echo = resp.header("traceparent").unwrap().to_owned();
        let (trace_id, span_id, flags) = split_traceparent(&echo);
        assert_eq!(trace_id, "0af7651916cd43dd8448eb211c80319c");
        assert_ne!(span_id, "b7ad6b7169203331", "echo carries our span id");
        assert_ne!(span_id, "0000000000000000");
        assert_eq!(flags, "00", "not sampled while tracing is off: {echo}");

        // No traceparent at all: a fresh well-formed one is generated
        // on every response, still unsampled.
        let resp = post(addr, "/score", b"[4.5, 4.5]\n").unwrap();
        let echo = resp.header("traceparent").unwrap().to_owned();
        let (trace_id, span_id, flags) = split_traceparent(&echo);
        assert_ne!(trace_id, "00000000000000000000000000000000");
        assert_ne!(span_id, "0000000000000000");
        assert_eq!(flags, "00");

        // The debug endpoint exists but the ring is empty.
        let resp = Connection::open(addr)
            .unwrap()
            .request("GET", "/admin/debug/trace", b"")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.text().unwrap(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    // ---- Phase 2: tracing on, threshold 0 = keep every trace ----
    let (server, _map) = start_tenants(
        ServerConfig {
            trace_slow_ms: Some(0),
            trace_capacity: 64,
            ..ServerConfig::default()
        },
        2,
    );
    let addr = server.local_addr();

    let mut conn = Connection::open(addr).unwrap();
    assert_eq!(
        conn.request("PUT", "/admin/tenants/a", &grid_ndjson())
            .unwrap()
            .status,
        200
    );

    // Ingest (covers the shard_ingest → score span path)…
    let resp = post(addr, "/t/a/ingest", b"[4.5, 4.5]\n").unwrap();
    assert_eq!(resp.status, 200);
    // …a synchronous refit (covers shard_refit → stream_refit →
    // fit_* → stream_swap)…
    let resp = post(addr, "/t/a/admin/refit", b"").unwrap();
    assert_eq!(resp.status, 200);
    // …and a scored batch with a client traceparent (covers the
    // tenant_fanout → shard_score → score path).
    let resp = post_traced(addr, "/t/a/score", b"[4.5, 4.5]\n[0.0, 0.0]\n", client_tp);
    assert_eq!(resp.status, 200);
    let echo = resp.header("traceparent").unwrap().to_owned();
    let (trace_id, _span_id, flags) = split_traceparent(&echo);
    assert_eq!(trace_id, "0af7651916cd43dd8448eb211c80319c");
    assert_eq!(flags, "01", "sampled while tracing is on: {echo}");

    // A malformed traceparent is replaced with a fresh trace id, never
    // echoed back.
    let resp = post_traced(addr, "/t/a/score", b"[4.5, 4.5]\n", "ff-bogus-bogus-01");
    assert_eq!(resp.status, 200);
    let echo = resp.header("traceparent").unwrap().to_owned();
    let (trace_id, _, flags) = split_traceparent(&echo);
    assert_ne!(trace_id, "00000000000000000000000000000000");
    assert_eq!(flags, "01");

    // The export: Chrome trace-event JSON carrying the full span tree.
    let resp = Connection::open(addr)
        .unwrap()
        .request("GET", "/admin/debug/trace", b"")
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let json = resp.text().unwrap().to_owned();
    assert!(
        json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "{json}"
    );
    assert!(json.ends_with("]}"), "{json}");
    // The adopted trace id labels its track.
    assert!(json.contains("0af7651916cd43dd8448eb211c80319c"), "{json}");
    // The request skeleton…
    for span in ["\"parse\"", "\"route\"", "\"handle\"", "\"score_batch\""] {
        assert!(json.contains(span), "missing {span} in {json}");
    }
    // …the tenant fan-out with one child per shard…
    assert!(json.contains("\"tenant_fanout\""), "{json}");
    let shard_scores = json.matches("\"shard_score\"").count();
    assert!(
        shard_scores >= 2,
        "expected one shard_score per shard (2), saw {shard_scores}: {json}"
    );
    // …the ingest and refit paths…
    for span in [
        "\"shard_ingest\"",
        "\"shard_refit\"",
        "\"stream_refit\"",
        "\"stream_swap\"",
    ] {
        assert!(json.contains(span), "missing {span} in {json}");
    }
    // …and the core fit stages, attached through the thread-local
    // current span with no signature plumbing.
    assert!(json.contains("\"fit_"), "no fit_* stage spans in {json}");

    // The endpoint is GET-only.
    let resp = post(addr, "/admin/debug/trace", b"").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
}
