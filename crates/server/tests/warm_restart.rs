//! The kill-and-restart contract, end to end over real sockets: a
//! server with persistence configured is snapshotted, shut down, and
//! rebuilt from the snapshot plus the ingest replay log — and the new
//! process serves byte-identical `/score` responses at the restored
//! generation, with the stream position and sliding window continuing
//! where the old process stopped.

use mccatch_core::McCatch;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_persist::{restore_stream, FsyncPolicy, ReplayReader};
use mccatch_server::client::{get, post, Connection};
use mccatch_server::{ndjson, serve, serve_tenants, ServerConfig};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch_tenant::{ReplaySpec, TenantMap, TenantPersistError, TenantSpec};
use std::path::Path;
use std::sync::Arc;

fn grid(shift: f64) -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64])
        .collect();
    pts.push(vec![500.0 + shift, 500.0]);
    pts
}

fn ndjson_body(points: &[Vec<f64>]) -> String {
    points
        .iter()
        .map(|p| format!("[{}, {}]\n", p[0], p[1]))
        .collect()
}

fn seq_of(line: &str) -> u64 {
    line.split("\"seq\": ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .unwrap_or_else(|| panic!("no seq in {line:?}"))
        .parse()
        .unwrap()
}

#[test]
fn kill_and_restart_serves_byte_identical_scores() {
    let dir = std::env::temp_dir().join(format!("mccatch-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_path = dir.join("model.mcsn");
    let replay_log = dir.join("ingest.ndjson");

    let stream_config = StreamConfig {
        capacity: 101,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    };
    let server_config = ServerConfig {
        snapshot_path: Some(snapshot_path.clone()),
        replay_log: Some(replay_log.clone()),
        replay_fsync_every: 1,
        ..ServerConfig::default()
    };

    // ---- First life: ingest traffic, refit, snapshot, die. ----
    let detector = Arc::new(
        StreamDetector::new(
            stream_config.clone(),
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            grid(0.0),
        )
        .unwrap(),
    );
    let server = serve(
        "127.0.0.1:0",
        server_config.clone(),
        Arc::clone(&detector),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();

    // The shifted grid displaces the seed completely (capacity == batch
    // size), and every accepted event lands in the replay log.
    let traffic = grid(3000.0);
    let ingested = post(addr, "/ingest", ndjson_body(&traffic).as_bytes()).unwrap();
    assert_eq!(ingested.status, 200);
    let last_seq = ingested.text().unwrap().lines().map(seq_of).max().unwrap();

    let refit = post(addr, "/admin/refit", b"").unwrap();
    assert_eq!(refit.header("x-mccatch-generation"), Some("1"));

    let score_body = "[3004.5, 4.5]\n[4.5, 4.5]\n[-777.0, 12.0]\n";
    let before = post(addr, "/score", score_body.as_bytes()).unwrap();
    assert_eq!(before.header("x-mccatch-generation"), Some("1"));
    let baseline = before.text().unwrap();

    assert_eq!(post(addr, "/admin/snapshot", b"").unwrap().status, 200);
    server.shutdown();
    drop(detector);

    // ---- Second life: snapshot + replay log -> a new process. ----
    let logged = ReplayReader::open(&replay_log)
        .unwrap()
        .read_all::<Vec<f64>>()
        .unwrap();
    assert_eq!(logged.len(), traffic.len(), "every ingest was logged");
    let snapshot = std::fs::File::open(&snapshot_path).unwrap();
    let (restored, info) = restore_stream(
        stream_config,
        Euclidean,
        KdTreeBuilder::default(),
        std::io::BufReader::new(snapshot),
        Some(logged),
    )
    .unwrap();
    assert_eq!(info.generation, 1);
    let restored = Arc::new(restored);
    let server = serve(
        "127.0.0.1:0",
        server_config,
        Arc::clone(&restored),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();

    // Byte-identical scoring at the restored generation.
    let after = post(addr, "/score", score_body.as_bytes()).unwrap();
    assert_eq!(after.header("x-mccatch-generation"), Some("1"));
    assert_eq!(
        after.text().unwrap(),
        baseline,
        "scores changed across restart"
    );
    let metrics = get(addr, "/metrics").unwrap();
    let metrics = metrics.text().unwrap();
    assert!(metrics.contains("mccatch_model_generation 1"), "{metrics}");

    // The stream position continues instead of restarting: the next
    // accepted event takes the next sequence number.
    let next = post(addr, "/ingest", b"[3004.0, 4.0]\n").unwrap();
    let next_seq = next.text().unwrap().lines().map(seq_of).next().unwrap();
    assert_eq!(next_seq, last_seq + 1);

    // And the replayed window is the real one: it holds exactly the
    // first life's traffic (shifted one slot by the event above — the
    // window was already at capacity, so the oldest replayed event was
    // evicted to admit it).
    server.shutdown();
    let window = restored.window_points();
    assert_eq!(window.len(), 101);
    assert_eq!(window[..100], traffic[1..]);
    assert_eq!(window[100], vec![3004.0, 4.0]);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Multi-tenant warm restart: the whole fleet survives a hard kill.
// ---------------------------------------------------------------------

type VecTenants = TenantMap<Vec<f64>, Euclidean, KdTreeBuilder>;

fn tenant_spec(shards: usize, log: &Path) -> TenantSpec {
    TenantSpec {
        shards,
        stream: StreamConfig {
            capacity: 64,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        ingest_queue: 1024,
        // fsync-per-event: the logs on disk are exactly what a `kill -9`
        // would leave behind.
        replay: Some(ReplaySpec {
            base: log.to_path_buf(),
            fsync: FsyncPolicy::Always,
        }),
    }
}

fn tenant_map(spec: TenantSpec) -> Arc<VecTenants> {
    Arc::new(
        TenantMap::new(
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            spec,
        )
        .unwrap(),
    )
}

fn default_detector() -> Arc<StreamDetector<Vec<f64>, Euclidean, KdTreeBuilder>> {
    Arc::new(
        StreamDetector::new(
            StreamConfig {
                capacity: 101,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            grid(0.0),
        )
        .unwrap(),
    )
}

/// Two tenants × two shards with distinct windows, snapshotted, then
/// hard-killed mid-stream: a fresh process restores the whole fleet
/// from `{snap}.{tenant}.{shard}` + `{log}.{tenant}.{shard}` and serves
/// byte-identical `/t/{tenant}/score` responses at the resumed
/// generation, with every tenant's stream position continuing.
#[test]
fn multi_tenant_kill_and_restart_serves_byte_identical_scores() {
    let dir = std::env::temp_dir().join(format!("mccatch-tenant-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("model.mcsn");
    let log = dir.join("ingest.ndjson");
    let server_config = ServerConfig {
        snapshot_path: Some(snap.clone()),
        ..ServerConfig::default()
    };

    // ---- First life: two tenants with distinct windows. ----
    let map = tenant_map(tenant_spec(2, &log));
    let server = serve_tenants(
        "127.0.0.1:0",
        server_config.clone(),
        default_detector(),
        ndjson::vector_parser(Some(2)),
        "kd",
        Arc::clone(&map),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    for (tenant, shift) in [("acme", 1000.0), ("beta", 2000.0)] {
        let body: String = grid(shift)
            .iter()
            .map(|p| format!("[{}, {}]\n", p[0], p[1]))
            .collect();
        let resp = conn
            .request("PUT", &format!("/admin/tenants/{tenant}"), body.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200);
        let refit = post(addr, &format!("/t/{tenant}/admin/refit"), b"").unwrap();
        assert_eq!(refit.status, 200);
        let snapped = post(addr, &format!("/t/{tenant}/admin/snapshot"), b"").unwrap();
        assert_eq!(snapped.status, 200);
    }

    // Post-snapshot traffic lives only in the per-tenant replay logs.
    let mut last_seq = Vec::new();
    for (tenant, shift) in [("acme", 1000.0), ("beta", 2000.0)] {
        let tail = format!("[{}, {}]\n", 4.25 + shift, 4.25);
        let resp = post(addr, &format!("/t/{tenant}/ingest"), tail.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        last_seq.push(seq_of(resp.text().unwrap().lines().next().unwrap()));
    }

    let score_body = "[1004.5, 4.5]\n[2004.5, 4.5]\n[-777.0, 12.0]\n";
    let mut baselines = Vec::new();
    for tenant in ["acme", "beta"] {
        let resp = post(addr, &format!("/t/{tenant}/score"), score_body.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        baselines.push((
            resp.header("x-mccatch-generation").unwrap().to_owned(),
            resp.text().unwrap().to_owned(),
        ));
    }
    // "kill -9": no orderly checkpoint — only the snapshots taken above
    // and the fsynced replay logs survive.
    server.shutdown();
    drop(map);

    // ---- Second life: rediscover and restore the whole fleet. ----
    let map = tenant_map(tenant_spec(2, &log));
    let mut restored = map.restore_tenants(&snap).unwrap();
    restored.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(
        restored.iter().map(|t| t.name.as_str()).collect::<Vec<_>>(),
        ["acme", "beta"]
    );
    for t in &restored {
        assert_eq!(t.stats.shards, 2);
        assert!(t.stats.replayed_events > 0, "{t:?}");
        assert_eq!(t.stats.generation, 2, "two shards refit once each");
    }
    let server = serve_tenants(
        "127.0.0.1:0",
        server_config,
        default_detector(),
        ndjson::vector_parser(Some(2)),
        "kd",
        Arc::clone(&map),
    )
    .unwrap();
    let addr = server.local_addr();

    for (tenant, (generation, baseline)) in ["acme", "beta"].iter().zip(&baselines) {
        let resp = post(addr, &format!("/t/{tenant}/score"), score_body.as_bytes()).unwrap();
        assert_eq!(
            resp.header("x-mccatch-generation"),
            Some(generation.as_str())
        );
        assert_eq!(
            &resp.text().unwrap(),
            baseline,
            "tenant {tenant} scores changed across restart"
        );
    }

    // Each tenant's stream position continues: re-ingesting the same
    // point routes to the same shard and takes the next seq.
    for ((tenant, shift), last) in [("acme", 1000.0), ("beta", 2000.0)].iter().zip(&last_seq) {
        let tail = format!("[{}, {}]\n", 4.25 + shift, 4.25);
        let resp = post(addr, &format!("/t/{tenant}/ingest"), tail.as_bytes()).unwrap();
        let seq = seq_of(resp.text().unwrap().lines().next().unwrap());
        assert_eq!(seq, last + 1, "tenant {tenant} seq restarted");
    }

    // The restore counters are exported per tenant.
    let metrics = get(addr, "/metrics").unwrap();
    let metrics = metrics.text().unwrap();
    for tenant in ["acme", "beta"] {
        assert!(
            metrics.contains(&format!(
                "mccatch_tenant_restored_shards{{tenant=\"{tenant}\"}} 2"
            )),
            "{metrics}"
        );
        assert!(
            metrics.contains(&format!(
                "mccatch_tenant_restore_generation{{tenant=\"{tenant}\"}} 2"
            )),
            "{metrics}"
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a 2-shard tenant `t`, snapshots it, and returns the scratch
/// dir — the raw material the negative restore tests corrupt.
fn snapshotted_tenant(tag: &str) -> (std::path::PathBuf, Arc<VecTenants>) {
    let dir = std::env::temp_dir().join(format!(
        "mccatch-tenant-restore-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec = tenant_spec(2, &dir.join("ingest.ndjson"));
    let map = tenant_map(spec.clone());
    let tenant = map.create_seeded("t", grid(0.0)).unwrap();
    tenant.refit_now().unwrap();
    tenant.save_snapshot(&dir.join("model.mcsn")).unwrap();
    drop(tenant);
    drop(map);
    (dir, tenant_map(spec))
}

/// A manifest-certified shard file that vanished is a typed
/// [`TenantPersistError::MissingShard`] — never a panic, and nothing is
/// registered in the map.
#[test]
fn missing_shard_file_restore_is_a_typed_error() {
    let (dir, map) = snapshotted_tenant("missing-shard");
    let snap = dir.join("model.mcsn");
    std::fs::remove_file(mccatch_tenant::shard_file_path(&snap, "t", 1)).unwrap();

    let err = map.restore_tenants(&snap).unwrap_err();
    assert!(
        matches!(
            err,
            TenantPersistError::MissingShard {
                ref tenant,
                shard: 1,
                ..
            } if tenant == "t"
        ),
        "{err}"
    );
    assert!(map.get("t").is_none(), "failed restore must not register");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard file whose bytes disagree with the manifest CRC (torn or
/// mixed snapshot set) is a typed [`TenantPersistError::CrcMismatch`].
#[test]
fn corrupt_shard_file_restore_is_a_typed_error() {
    let (dir, map) = snapshotted_tenant("corrupt-shard");
    let snap = dir.join("model.mcsn");
    let shard0 = mccatch_tenant::shard_file_path(&snap, "t", 0);
    let bytes = std::fs::read(&shard0).unwrap();
    std::fs::write(&shard0, &bytes[..bytes.len() - 7]).unwrap();

    let err = map.restore_tenants(&snap).unwrap_err();
    assert!(
        matches!(
            err,
            TenantPersistError::CrcMismatch {
                ref tenant,
                shard: 0,
                ..
            } if tenant == "t"
        ),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard files without their manifest are a partial snapshot — a crash
/// landed between the shard writes and the manifest commit — and must
/// be refused with [`TenantPersistError::MissingManifest`].
#[test]
fn missing_manifest_restore_is_a_typed_partial_snapshot_error() {
    let (dir, map) = snapshotted_tenant("missing-manifest");
    let snap = dir.join("model.mcsn");
    std::fs::remove_file(mccatch_tenant::tenant_manifest_path(&snap, "t")).unwrap();

    let err = map.restore_tenants(&snap).unwrap_err();
    assert!(
        matches!(
            err,
            TenantPersistError::MissingManifest { ref tenant, .. } if tenant == "t"
        ),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A replay log whose final line was torn mid-write by the kill is
/// tolerated: the restore succeeds and serves the checkpointed state
/// bit-identically, dropping only the torn event.
#[test]
fn torn_final_replay_line_is_tolerated() {
    let (dir, map) = snapshotted_tenant("torn-log");
    let snap = dir.join("model.mcsn");
    let log0 = mccatch_tenant::shard_file_path(&dir.join("ingest.ndjson"), "t", 0);
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&log0)
        .unwrap();
    f.write_all(b"{\"seq\": 999, \"tick\": 4, \"point").unwrap();
    drop(f);

    let restored = map.restore_tenants(&snap).unwrap();
    assert_eq!(restored.len(), 1);
    let twin = map.get("t").unwrap();
    let queries = [vec![4.5, 4.5], vec![500.0, 500.0], vec![-3.0, 9.0]];
    // Rebuild an uncorrupted twin to compare against.
    let (clean_dir, clean_map) = snapshotted_tenant("torn-log-clean");
    clean_map
        .restore_tenants(&clean_dir.join("model.mcsn"))
        .unwrap();
    let clean = clean_map.get("t").unwrap();
    for q in &queries {
        assert_eq!(twin.score(q).to_bits(), clean.score(q).to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}
