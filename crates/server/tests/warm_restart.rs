//! The kill-and-restart contract, end to end over real sockets: a
//! server with persistence configured is snapshotted, shut down, and
//! rebuilt from the snapshot plus the ingest replay log — and the new
//! process serves byte-identical `/score` responses at the restored
//! generation, with the stream position and sliding window continuing
//! where the old process stopped.

use mccatch_core::McCatch;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_persist::{restore_stream, ReplayReader};
use mccatch_server::client::{get, post};
use mccatch_server::{ndjson, serve, ServerConfig};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use std::sync::Arc;

fn grid(shift: f64) -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64])
        .collect();
    pts.push(vec![500.0 + shift, 500.0]);
    pts
}

fn ndjson_body(points: &[Vec<f64>]) -> String {
    points
        .iter()
        .map(|p| format!("[{}, {}]\n", p[0], p[1]))
        .collect()
}

fn seq_of(line: &str) -> u64 {
    line.split("\"seq\": ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .unwrap_or_else(|| panic!("no seq in {line:?}"))
        .parse()
        .unwrap()
}

#[test]
fn kill_and_restart_serves_byte_identical_scores() {
    let dir = std::env::temp_dir().join(format!("mccatch-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_path = dir.join("model.mcsn");
    let replay_log = dir.join("ingest.ndjson");

    let stream_config = StreamConfig {
        capacity: 101,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    };
    let server_config = ServerConfig {
        snapshot_path: Some(snapshot_path.clone()),
        replay_log: Some(replay_log.clone()),
        replay_fsync_every: 1,
        ..ServerConfig::default()
    };

    // ---- First life: ingest traffic, refit, snapshot, die. ----
    let detector = Arc::new(
        StreamDetector::new(
            stream_config.clone(),
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            grid(0.0),
        )
        .unwrap(),
    );
    let server = serve(
        "127.0.0.1:0",
        server_config.clone(),
        Arc::clone(&detector),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();

    // The shifted grid displaces the seed completely (capacity == batch
    // size), and every accepted event lands in the replay log.
    let traffic = grid(3000.0);
    let ingested = post(addr, "/ingest", ndjson_body(&traffic).as_bytes()).unwrap();
    assert_eq!(ingested.status, 200);
    let last_seq = ingested.text().unwrap().lines().map(seq_of).max().unwrap();

    let refit = post(addr, "/admin/refit", b"").unwrap();
    assert_eq!(refit.header("x-mccatch-generation"), Some("1"));

    let score_body = "[3004.5, 4.5]\n[4.5, 4.5]\n[-777.0, 12.0]\n";
    let before = post(addr, "/score", score_body.as_bytes()).unwrap();
    assert_eq!(before.header("x-mccatch-generation"), Some("1"));
    let baseline = before.text().unwrap();

    assert_eq!(post(addr, "/admin/snapshot", b"").unwrap().status, 200);
    server.shutdown();
    drop(detector);

    // ---- Second life: snapshot + replay log -> a new process. ----
    let logged = ReplayReader::open(&replay_log)
        .unwrap()
        .read_all::<Vec<f64>>()
        .unwrap();
    assert_eq!(logged.len(), traffic.len(), "every ingest was logged");
    let snapshot = std::fs::File::open(&snapshot_path).unwrap();
    let (restored, info) = restore_stream(
        stream_config,
        Euclidean,
        KdTreeBuilder::default(),
        std::io::BufReader::new(snapshot),
        Some(logged),
    )
    .unwrap();
    assert_eq!(info.generation, 1);
    let restored = Arc::new(restored);
    let server = serve(
        "127.0.0.1:0",
        server_config,
        Arc::clone(&restored),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();

    // Byte-identical scoring at the restored generation.
    let after = post(addr, "/score", score_body.as_bytes()).unwrap();
    assert_eq!(after.header("x-mccatch-generation"), Some("1"));
    assert_eq!(
        after.text().unwrap(),
        baseline,
        "scores changed across restart"
    );
    let metrics = get(addr, "/metrics").unwrap();
    let metrics = metrics.text().unwrap();
    assert!(metrics.contains("mccatch_model_generation 1"), "{metrics}");

    // The stream position continues instead of restarting: the next
    // accepted event takes the next sequence number.
    let next = post(addr, "/ingest", b"[3004.0, 4.0]\n").unwrap();
    let next_seq = next.text().unwrap().lines().map(seq_of).next().unwrap();
    assert_eq!(next_seq, last_seq + 1);

    // And the replayed window is the real one: it holds exactly the
    // first life's traffic (shifted one slot by the event above — the
    // window was already at capacity, so the oldest replayed event was
    // evicted to admit it).
    server.shutdown();
    let window = restored.window_points();
    assert_eq!(window.len(), 101);
    assert_eq!(window[..100], traffic[1..]);
    assert_eq!(window[100], vec![3004.0, 4.0]);

    let _ = std::fs::remove_dir_all(&dir);
}
