//! Multi-tenant serving over real sockets: lifecycle, `/t/{tenant}/…`
//! and header routing, cross-tenant isolation under concurrent traffic,
//! per-tenant snapshots, and the tenant-labeled `/metrics` exposition.

use mccatch_core::McCatch;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_server::client::{get, post, ClientResponse, Connection};
use mccatch_server::{ndjson, serve, serve_tenants, ServerConfig, ServerHandle};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch_tenant::{TenantMap, TenantSpec};
use std::sync::Arc;

type VecDetector = StreamDetector<Vec<f64>, Euclidean, KdTreeBuilder>;
type VecTenants = TenantMap<Vec<f64>, Euclidean, KdTreeBuilder>;

/// A 10×10 grid plus one isolate, shifted by `shift` — the reference
/// workload of the serve/stream test suites.
fn grid(shift: f64) -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64])
        .collect();
    pts.push(vec![500.0 + shift, 500.0]);
    pts
}

fn grid_ndjson(shift: f64) -> Vec<u8> {
    grid(shift)
        .into_iter()
        .map(|p| format!("[{}, {}]\n", p[0], p[1]))
        .collect::<String>()
        .into_bytes()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        capacity: 512,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    }
}

fn detector(seed: Vec<Vec<f64>>) -> Arc<VecDetector> {
    Arc::new(
        StreamDetector::new(
            stream_config(),
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap(),
    )
}

fn tenant_map(shards: usize) -> Arc<VecTenants> {
    Arc::new(
        TenantMap::new(
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            TenantSpec {
                shards,
                stream: stream_config(),
                ingest_queue: 1024,
                replay: None,
            },
        )
        .unwrap(),
    )
}

fn start_tenants(config: ServerConfig, shards: usize) -> (ServerHandle, Arc<VecTenants>) {
    let map = tenant_map(shards);
    let server = serve_tenants(
        "127.0.0.1:0",
        config,
        detector(grid(0.0)),
        ndjson::vector_parser(Some(2)),
        "kd",
        Arc::clone(&map),
    )
    .unwrap();
    (server, map)
}

fn scores_of(resp: &ClientResponse) -> Vec<f64> {
    resp.text()
        .unwrap()
        .lines()
        .map(|l| {
            l.strip_prefix("{\"score\": ")
                .and_then(|l| l.strip_suffix('}'))
                .unwrap_or_else(|| panic!("not a score line: {l:?}"))
                .parse()
                .unwrap()
        })
        .collect()
}

fn generation_of(resp: &ClientResponse) -> u64 {
    resp.header("x-mccatch-generation")
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn tenancy_disabled_server_answers_404_on_tenant_routes() {
    let server = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        detector(grid(0.0)),
        ndjson::vector_parser(Some(2)),
        "kd",
    )
    .unwrap();
    let addr = server.local_addr();
    let resp = post(addr, "/t/acme/score", b"[1.0, 1.0]\n").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.text().unwrap().contains("not enabled"));
    let resp = get(addr, "/admin/tenants").unwrap();
    assert_eq!(resp.status, 404);
    // The bare endpoints are untouched.
    assert_eq!(post(addr, "/score", b"[1.0, 1.0]\n").unwrap().status, 200);
}

#[test]
fn lifecycle_create_list_delete_over_the_wire() {
    let (server, _map) = start_tenants(ServerConfig::default(), 1);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();

    // Create with a seed body; re-PUT is idempotent.
    let resp = conn
        .request("PUT", "/admin/tenants/acme", &grid_ndjson(0.0))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().unwrap().contains("\"created\": true"));
    let resp = conn.request("PUT", "/admin/tenants/acme", b"").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().unwrap().contains("\"created\": false"));

    let resp = conn.request("GET", "/admin/tenants", b"").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text().unwrap(), "{\"tenants\": [\"acme\"]}\n");

    // The tenant serves; an unknown one does not.
    assert_eq!(
        post(addr, "/t/acme/score", b"[4.5, 4.5]\n").unwrap().status,
        200
    );
    let resp = post(addr, "/t/ghost/score", b"[4.5, 4.5]\n").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.text().unwrap().contains("no such tenant"));

    // Delete unlinks; a second delete is 404.
    let resp = conn.request("DELETE", "/admin/tenants/acme", b"").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().unwrap().contains("\"deleted\": true"));
    assert_eq!(
        conn.request("DELETE", "/admin/tenants/acme", b"")
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        post(addr, "/t/acme/score", b"[4.5, 4.5]\n").unwrap().status,
        404
    );

    // Wrong method on the lifecycle routes.
    let resp = post(addr, "/admin/tenants", b"").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = post(addr, "/admin/tenants/x", b"").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("PUT, DELETE"));
}

#[test]
fn invalid_tenant_names_are_rejected_with_400_at_the_http_layer() {
    let (server, _map) = start_tenants(ServerConfig::default(), 1);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    let too_long = "x".repeat(65);
    for bad in ["a%20b", "a.b", &too_long] {
        let resp = conn
            .request("PUT", &format!("/admin/tenants/{bad}"), b"")
            .unwrap();
        assert_eq!(resp.status, 400, "{bad}");
        assert!(
            resp.text().unwrap().contains("[a-zA-Z0-9_-]{1,64}"),
            "{bad}"
        );
        let resp = post(addr, &format!("/t/{bad}/score"), b"[1.0, 1.0]\n").unwrap();
        assert_eq!(resp.status, 400, "{bad}");
    }
    // A malformed seed rejects the whole create: the tenant must not
    // half-exist afterwards.
    let resp = conn
        .request("PUT", "/admin/tenants/half", b"[1.0, 2.0]\nnonsense\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().unwrap().contains("seed line 2"));
    assert_eq!(
        post(addr, "/t/half/score", b"[1.0, 1.0]\n").unwrap().status,
        404
    );
}

#[test]
fn header_routing_matches_path_routing_and_mismatch_is_400() {
    let (server, _map) = start_tenants(ServerConfig::default(), 1);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    conn.request("PUT", "/admin/tenants/acme", &grid_ndjson(0.0))
        .unwrap();

    let by_path = post(addr, "/t/acme/score", b"[4.5, 4.5]\n").unwrap();
    let body = b"[4.5, 4.5]\n";
    let raw = format!(
        "POST /score HTTP/1.1\r\nhost: x\r\nx-mccatch-tenant: acme\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut raw = raw.into_bytes();
    raw.extend_from_slice(body);
    let by_header = conn.request_raw(&raw).unwrap();
    assert_eq!(by_header.status, 200);
    assert_eq!(by_header.text().unwrap(), by_path.text().unwrap());

    // Path and header disagreeing is a client error, not a guess.
    let raw = format!(
        "POST /t/acme/score HTTP/1.1\r\nhost: x\r\nx-mccatch-tenant: beta\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut raw = raw.into_bytes();
    raw.extend_from_slice(body);
    let resp = conn.request_raw(&raw).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().unwrap().contains("tenant mismatch"));
}

#[test]
fn single_shard_tenant_is_byte_identical_to_the_default_path() {
    // The default detector and the tenant are seeded identically; every
    // /score response body must be byte-equal between the bare path and
    // the tenant-scoped path.
    let (server, _map) = start_tenants(ServerConfig::default(), 1);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    conn.request("PUT", "/admin/tenants/twin", &grid_ndjson(0.0))
        .unwrap();
    for body in [
        b"[4.5, 4.5]\n[900.0, 900.0]\n".as_slice(),
        b"[0.0, 0.0]\nnot json\n[250.0, -3.0]\n".as_slice(),
    ] {
        let bare = post(addr, "/score", body).unwrap();
        let scoped = post(addr, "/t/twin/score", body).unwrap();
        assert_eq!(bare.status, scoped.status);
        assert_eq!(
            bare.text().unwrap(),
            scoped.text().unwrap(),
            "byte-equal bodies"
        );
        assert_eq!(generation_of(&bare), generation_of(&scoped));
    }
}

#[test]
fn four_tenant_isolation_ingest_to_one_never_moves_the_others() {
    let (server, map) = start_tenants(ServerConfig::default(), 2);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    for name in ["a", "b", "c", "d"] {
        let resp = conn
            .request("PUT", &format!("/admin/tenants/{name}"), &grid_ndjson(0.0))
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    let probe = b"[4.5, 4.5]\n[7.0, 2.0]\n[900.0, 900.0]\n";
    let b_before = post(addr, "/t/b/score", probe).unwrap();

    // Hammer tenant a: ingests plus an explicit refit.
    for i in 0..20 {
        let body = format!("[{}, 1.0]\n[{}, 2.0]\n", i, i);
        assert_eq!(
            post(addr, "/t/a/ingest", body.as_bytes()).unwrap().status,
            200
        );
    }
    let refit = post(addr, "/t/a/refit", b"").unwrap();
    assert_eq!(refit.status, 404, "refit lives under /admin");
    let refit = post(addr, "/t/a/admin/refit", b"").unwrap();
    assert_eq!(refit.status, 200);
    assert!(generation_of(&refit) > 0);

    // Tenant b is bitwise untouched: same scores, same generation.
    let b_after = post(addr, "/t/b/score", probe).unwrap();
    assert_eq!(b_before.text().unwrap(), b_after.text().unwrap());
    assert_eq!(generation_of(&b_before), generation_of(&b_after));
    assert_eq!(generation_of(&b_after), 0);
    for name in ["b", "c", "d"] {
        assert_eq!(map.get(name).unwrap().generation(), 0, "{name}");
    }
    assert!(map.get("a").unwrap().generation() > 0);
}

#[test]
fn concurrent_lifecycle_scoring_stays_stable_and_generations_are_monotone() {
    let (server, _map) = start_tenants(ServerConfig::default(), 1);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    conn.request("PUT", "/admin/tenants/stable", &grid_ndjson(0.0))
        .unwrap();
    let probe = b"[4.5, 4.5]\n[900.0, 900.0]\n";
    let baseline = scores_of(&post(addr, "/t/stable/score", probe).unwrap());

    std::thread::scope(|scope| {
        // Churn: create and delete sibling tenants in a loop.
        let churn = scope.spawn(move || {
            let mut conn = Connection::open(addr).unwrap();
            for round in 0..8 {
                for name in ["churn-x", "churn-y"] {
                    let resp = conn
                        .request("PUT", &format!("/admin/tenants/{name}"), &grid_ndjson(1.0))
                        .unwrap();
                    assert_eq!(resp.status, 200, "round {round}");
                }
                for name in ["churn-x", "churn-y"] {
                    let resp = conn
                        .request("DELETE", &format!("/admin/tenants/{name}"), b"")
                        .unwrap();
                    assert_eq!(resp.status, 200, "round {round}");
                }
            }
        });
        // Traffic: ingest to "stable" and watch its generation never
        // regress while scoring stays self-consistent.
        let traffic = scope.spawn(move || {
            let mut conn = Connection::open(addr).unwrap();
            let mut last_generation = 0u64;
            for i in 0..8 {
                let body = format!("[{}.5, 3.0]\n", i % 5);
                let resp = conn
                    .request("POST", "/t/stable/ingest", body.as_bytes())
                    .unwrap();
                assert_eq!(resp.status, 200);
                let resp = conn.request("POST", "/t/stable/admin/refit", b"").unwrap();
                assert_eq!(resp.status, 200);
                let generation = generation_of(&resp);
                assert!(generation > last_generation, "generation must be monotone");
                last_generation = generation;
            }
        });
        churn.join().unwrap();
        traffic.join().unwrap();
    });

    // The churn never contaminated the stable tenant's data: its window
    // still contains the original grid (plus the traffic thread's
    // near-grid ingests), so the isolate stays the far outlier.
    let after = scores_of(&post(addr, "/t/stable/score", probe).unwrap());
    assert_eq!(baseline.len(), after.len());
    assert!(after[1] > after[0], "the isolate still scores highest");
    // And the churned tenants are gone.
    let resp = get(addr, "/admin/tenants").unwrap();
    assert_eq!(resp.text().unwrap(), "{\"tenants\": [\"stable\"]}\n");
}

#[test]
fn per_tenant_snapshots_write_one_file_per_shard() {
    let dir = std::env::temp_dir().join(format!("mccatch-tenant-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_path = dir.join("model.mcsn");
    for suffix in ["", ".acme.0", ".acme.1"] {
        let _ = std::fs::remove_file(dir.join(format!("model.mcsn{suffix}")));
    }
    let (server, _map) = start_tenants(
        ServerConfig {
            snapshot_path: Some(snapshot_path.clone()),
            ..ServerConfig::default()
        },
        2,
    );
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    conn.request("PUT", "/admin/tenants/acme", &grid_ndjson(0.0))
        .unwrap();

    // Info before any save: configured but missing.
    assert_eq!(
        get(addr, "/t/acme/admin/snapshot/info").unwrap().status,
        404
    );

    let resp = post(addr, "/t/acme/admin/snapshot", b"").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().unwrap().contains(".acme.*"));
    for shard in 0..2 {
        let path = dir.join(format!("model.mcsn.acme.{shard}"));
        assert!(path.is_file(), "missing shard snapshot {path:?}");
    }
    let info = get(addr, "/t/acme/admin/snapshot/info").unwrap();
    assert_eq!(info.status, 200);
    assert!(info.text().unwrap().contains(".acme.0"));

    // The default tenant's snapshot still goes to the bare path.
    assert_eq!(post(addr, "/admin/snapshot", b"").unwrap().status, 200);
    assert!(snapshot_path.is_file());

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_expose_tenant_labeled_series_and_queue_gauges() {
    let (server, _map) = start_tenants(ServerConfig::default(), 2);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    conn.request("PUT", "/admin/tenants/acme", &grid_ndjson(0.0))
        .unwrap();
    post(addr, "/t/acme/ingest", b"[1.0, 1.0]\n").unwrap();

    let body = get(addr, "/metrics").unwrap().text().unwrap().to_owned();
    // The default tenant's series stay unlabeled (scrape compatibility
    // with single-tenant deployments)…
    assert!(
        body.lines().any(|l| l == "mccatch_model_generation 0"),
        "{body}"
    );
    // …and the named tenant adds labeled series under the same family.
    assert!(body.contains("mccatch_stream_events_ingested_total{tenant=\"acme\"}"));
    assert!(body.contains("mccatch_model_generation{tenant=\"acme\"}"));
    assert!(body.contains("mccatch_index_distance_evals_total{index=\"kd\",tenant=\"acme\"}"));
    assert!(body.contains("mccatch_tenants 1"));
    for shard in 0..2 {
        assert!(
            body.contains(&format!(
                "mccatch_tenant_shard_queue_depth{{tenant=\"acme\",shard=\"{shard}\"}}"
            )),
            "{body}"
        );
    }
    assert!(
        body.contains("mccatch_tenant_shard_ingest_rejected_total{tenant=\"acme\",shard=\"0\"}")
    );
}

#[test]
fn latency_histograms_label_scoped_requests_by_tenant() {
    let (server, _map) = start_tenants(ServerConfig::default(), 2);
    let addr = server.local_addr();
    let mut conn = Connection::open(addr).unwrap();
    conn.request("PUT", "/admin/tenants/acme", &grid_ndjson(0.0))
        .unwrap();
    // One default-tenant score and two scoped ones.
    post(addr, "/score", b"[1.0, 1.0]\n").unwrap();
    post(addr, "/t/acme/score", b"[1.0, 1.0]\n").unwrap();
    post(addr, "/t/acme/score", b"[2.0, 2.0]\n").unwrap();

    let body = get(addr, "/metrics").unwrap().text().unwrap().to_owned();
    // Default series keep the single-tenant shape (endpoint label only)…
    assert!(
        body.lines()
            .any(|l| l == "mccatch_request_duration_seconds_count{endpoint=\"score\"} 1"),
        "{body}"
    );
    // …and the scoped requests land in tenant-labeled series of the
    // same family, not in the default one.
    assert!(
        body.contains(
            "mccatch_request_duration_seconds_count{endpoint=\"score\",tenant=\"acme\"} 2"
        ),
        "{body}"
    );
    assert!(
        body.contains("mccatch_request_duration_seconds_bucket{endpoint=\"score\",tenant=\"acme\",le=\"+Inf\"} 2"),
        "{body}"
    );
    // Per-line histograms are process-wide: three lines total.
    assert!(
        body.contains("mccatch_line_duration_seconds_count{endpoint=\"score\"} 3"),
        "{body}"
    );
}
