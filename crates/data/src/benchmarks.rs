//! Synthetic analogues of the popular benchmark datasets in Tab. III.
//!
//! The paper evaluates on 18 public benchmark datasets (HTTP, Shuttle,
//! kddcup08, … Parkinson). Those corpora are not redistributable here, so
//! each is replaced by a *generator preset* that matches the
//! characteristics MCCATCH actually reacts to: cardinality,
//! dimensionality, outlier fraction, clustered inliers, scattered singleton
//! outliers and — for the datasets the paper flags as containing
//! nonsingleton microclusters (HTTP, Annthyroid) — planted tight
//! microclusters. The substitution is documented in `DESIGN.md` §4.

use crate::labeled::LabeledData;
use crate::rng::{gaussian_point, normal, rng, uniform_point};
use rand::rngs::StdRng;
use rand::Rng;

/// Recipe for one benchmark analogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Dataset name as in Tab. III.
    pub name: &'static str,
    /// Number of elements.
    pub n: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Outlier percentage (Tab. III's "% Outliers").
    pub outlier_percent: f64,
    /// Number of planted nonsingleton microclusters.
    pub n_microclusters: usize,
    /// Size of each planted microcluster.
    pub mc_size: usize,
    /// Number of Gaussian inlier clusters.
    pub inlier_clusters: usize,
}

/// The 18 benchmark presets of Tab. III, in the paper's order. `HTTP` and
/// `Annthyroid` carry nonsingleton microclusters ("known to have
/// nonsingleton microclusters \[6\]"); HTTP's largest is the 30-point
/// DoS-like cluster showcased in Fig. 8(ii). The heavy-outlier-share sets
/// (Satellite 31.6%, Ionosphere 35.7%) model their "outliers" the way the
/// real benchmarks do — as minority *classes*, i.e. mostly small clusters
/// rather than uniform scatter.
pub const BENCHMARKS: &[BenchmarkSpec] = &[
    spec("Http", 222_027, 3, 0.03, 2, 30, 2),
    spec("Shuttle", 49_097, 9, 7.15, 4, 12, 3),
    spec("kddcup08", 24_995, 25, 0.68, 2, 8, 3),
    spec("Mammography", 7_848, 6, 3.22, 2, 8, 2),
    spec("Annthyroid", 7_200, 6, 7.41, 30, 15, 3),
    spec("Satellite", 6_435, 36, 31.64, 60, 30, 4),
    spec("Satimage2", 5_803, 36, 1.22, 1, 6, 4),
    spec("Speech", 3_686, 400, 1.65, 1, 5, 2),
    spec("Thyroid", 3_656, 6, 2.54, 1, 6, 2),
    spec("Vowels", 1_452, 12, 3.17, 1, 5, 3),
    spec("Pima", 526, 8, 4.94, 1, 4, 2),
    spec("Ionosphere", 350, 33, 35.71, 10, 10, 2),
    spec("Ecoli", 336, 7, 2.68, 1, 3, 2),
    spec("Vertebral", 240, 6, 12.5, 2, 5, 2),
    spec("Glass", 213, 9, 4.23, 1, 3, 2),
    spec("Wine", 129, 13, 7.75, 1, 3, 2),
    spec("Hepatitis", 70, 20, 4.29, 0, 0, 1),
    spec("Parkinson", 50, 22, 4.0, 0, 0, 1),
];

const fn spec(
    name: &'static str,
    n: usize,
    dim: usize,
    outlier_percent: f64,
    n_microclusters: usize,
    mc_size: usize,
    inlier_clusters: usize,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name,
        n,
        dim,
        outlier_percent,
        n_microclusters,
        mc_size,
        inlier_clusters,
    }
}

/// Looks a preset up by (case-insensitive) name.
pub fn benchmark_by_name(name: &str) -> Option<&'static BenchmarkSpec> {
    BENCHMARKS
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

impl BenchmarkSpec {
    /// Generates the analogue at full size.
    pub fn generate(&self, seed: u64) -> LabeledData<Vec<f64>> {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the analogue with `n` scaled by `scale` (same fractions,
    /// same geometry; used by tests and quick runs). Microcluster sizes
    /// scale down proportionally but never below 3 points per cluster.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> LabeledData<Vec<f64>> {
        assert!(scale > 0.0 && scale <= 1.0);
        let n = ((self.n as f64 * scale).round() as usize).max(20);
        let mut r = rng(seed ^ hash_name(self.name));
        let n_outliers = ((n as f64 * self.outlier_percent / 100.0).round() as usize).max(1);
        // Split outliers: microclusters first, remainder scattered.
        let mc_size = if self.n_microclusters == 0 {
            0
        } else {
            (((self.mc_size as f64) * scale).round() as usize).clamp(3, self.mc_size)
        };
        let mut mc_sizes = vec![mc_size; self.n_microclusters];
        // Never let microclusters exceed the outlier budget.
        while mc_sizes.iter().sum::<usize>() > n_outliers && !mc_sizes.is_empty() {
            mc_sizes.pop();
        }
        let n_clustered: usize = mc_sizes.iter().sum();
        let n_scattered = n_outliers - n_clustered;
        let n_inliers = n - n_outliers;

        // Inlier clusters: Gaussian blobs with well-separated centers,
        // truncated at 1.5x the typical radial distance (sqrt(dim) sigma) —
        // unbounded tails in higher dimensions would blur the inlier/outlier
        // boundary the real benchmarks have.
        let centers: Vec<Vec<f64>> = (0..self.inlier_clusters)
            .map(|_| uniform_point(&mut r, self.dim, 20.0, 80.0))
            .collect();
        let sigma = 3.0;
        let radial_cap = 1.5 * (self.dim as f64).sqrt() * sigma;
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n_inliers {
            let c = &centers[i % centers.len()];
            let p = loop {
                let p = gaussian_point(&mut r, c, sigma);
                let d2: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                if d2.sqrt() <= radial_cap {
                    break p;
                }
            };
            points.push(p);
            labels.push(false);
        }
        // Planted microclusters: tight blobs far from every inlier cluster
        // (margin measured beyond the truncation radius).
        for _ in &mc_sizes {
            let center = far_point(&mut r, &centers, self.dim, radial_cap + 5.0 * sigma);
            for _ in 0..mc_size {
                points.push(gaussian_point(&mut r, &center, 0.15 * sigma));
                labels.push(true);
            }
        }
        // Scattered singleton outliers: random direction from a random
        // cluster at a *log-uniform* margin beyond the inlier support, so
        // their 1NN distances spread geometrically across histogram bins —
        // the decaying tail shape real benchmark outliers produce (a
        // concentrated shell would masquerade as cluster structure).
        for k in 0..n_scattered {
            let c = &centers[k % centers.len()];
            let p = loop {
                let margin = sigma * 8.0 * (10.0f64).powf(r.random::<f64>());
                let radius = radial_cap + margin;
                let mut dir: Vec<f64> = (0..self.dim).map(|_| normal(&mut r)).collect();
                let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                for d in dir.iter_mut() {
                    *d /= norm;
                }
                let p: Vec<f64> = c.iter().zip(&dir).map(|(a, b)| a + radius * b).collect();
                let clear = centers.iter().all(|c2| {
                    let d2: f64 = c2.iter().zip(&p).map(|(a, b)| (a - b) * (a - b)).sum();
                    d2.sqrt() >= radial_cap + 2.0 * sigma
                });
                if clear {
                    break p;
                }
            };
            points.push(p);
            labels.push(true);
        }
        LabeledData::new(self.name, points, labels)
    }
}

/// Rejection-samples a point at Euclidean distance at least `min_dist` from
/// every center (relaxing the constraint slowly if the space is crowded).
fn far_point(r: &mut StdRng, centers: &[Vec<f64>], dim: usize, min_dist: f64) -> Vec<f64> {
    let mut required = min_dist;
    loop {
        for _ in 0..64 {
            let p = uniform_point(r, dim, -10.0, 110.0);
            let ok = centers.iter().all(|c| {
                let d2: f64 = c.iter().zip(&p).map(|(a, b)| (a - b) * (a - b)).sum();
                d2.sqrt() >= required
            });
            if ok {
                return p;
            }
        }
        required *= 0.9;
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, deterministic across runs and platforms.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_tab3_counts() {
        assert_eq!(BENCHMARKS.len(), 18);
        let http = benchmark_by_name("Http").unwrap();
        assert_eq!(http.n, 222_027);
        assert_eq!(http.dim, 3);
        assert_eq!(http.mc_size, 30); // the DoS microcluster of Fig. 8(ii)
        assert!(benchmark_by_name("nope").is_none());
        assert!(benchmark_by_name("wine").is_some()); // case-insensitive
    }

    #[test]
    fn generated_fractions_match_spec() {
        for spec in BENCHMARKS.iter().filter(|s| s.n <= 8000) {
            let d = spec.generate(1);
            assert_eq!(d.len(), spec.n, "{}", spec.name);
            let got = d.outlier_percent();
            assert!(
                (got - spec.outlier_percent).abs() < 1.0,
                "{}: got {got}%, want {}%",
                spec.name,
                spec.outlier_percent
            );
            assert!(d.points.iter().all(|p| p.len() == spec.dim));
        }
    }

    #[test]
    fn scaled_generation_keeps_fractions() {
        let spec = benchmark_by_name("Shuttle").unwrap();
        let d = spec.generate_scaled(0.05, 3);
        assert!((d.len() as f64 - 49_097.0 * 0.05).abs() < 2.0);
        assert!((d.outlier_percent() - spec.outlier_percent).abs() < 2.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = benchmark_by_name("Wine").unwrap();
        assert_eq!(spec.generate(5).points, spec.generate(5).points);
        assert_ne!(spec.generate(5).points, spec.generate(6).points);
    }

    #[test]
    fn microclusters_are_tight() {
        let spec = benchmark_by_name("Vertebral").unwrap();
        let d = spec.generate(2);
        // The planted microcluster points are consecutive after the inliers;
        // check the first planted cluster's spread.
        let first_outlier = d.labels.iter().position(|&l| l).unwrap();
        let mc: Vec<&Vec<f64>> = d.points[first_outlier..first_outlier + 5].iter().collect();
        for p in &mc {
            let d2: f64 = p
                .iter()
                .zip(mc[0].iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(d2.sqrt() < 5.0);
        }
    }
}
