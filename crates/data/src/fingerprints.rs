//! The "Fingerprints" analogue (Tab. III): ridge sequences from 398 full
//! fingerprints (inliers) and 10 partial fingerprints (outliers), analysed
//! with edit distance.
//!
//! A fingerprint's ridge structure is encoded as a string over a small
//! ridge-direction alphabet; full prints share a long, smoothly varying
//! pattern drawn from a handful of archetype classes (arch / loop / whorl),
//! while partial prints are short truncations — far from every full print
//! under edit distance (length gap) yet close to one another, exactly the
//! geometry MCCATCH's microcluster machinery is built for.

use crate::labeled::LabeledData;
use crate::rng::rng;
use rand::rngs::StdRng;
use rand::Rng;

/// Ridge-direction alphabet.
const ALPHABET: [char; 8] = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];

/// One archetype template (arch / loop / whorl): a smooth walk over the
/// ridge alphabet. Real prints of the same pattern class share most of
/// their ridge structure, so concrete prints are *mutations of a
/// template*, not independent walks.
fn template(r: &mut StdRng, len: usize) -> Vec<char> {
    let mut pos = r.random_range(0..ALPHABET.len() as i32);
    (0..len)
        .map(|_| {
            pos = (pos + r.random_range(-1..=1)).rem_euclid(ALPHABET.len() as i32);
            ALPHABET[pos as usize]
        })
        .collect()
}

/// Applies `k` random substitutions to a template slice.
fn mutate(r: &mut StdRng, base: &[char], k: usize) -> String {
    let mut chars: Vec<char> = base.to_vec();
    for _ in 0..k {
        let i = r.random_range(0..chars.len());
        chars[i] = ALPHABET[r.random_range(0..ALPHABET.len())];
    }
    chars.into_iter().collect()
}

/// Generates the Fingerprints analogue (Tab. III: 398 full + 10 partial).
///
/// Full prints are light mutations (4-12 edits) of three shared archetype
/// templates — mutually close under edit distance, like real same-class
/// prints. Partial prints are short fragments (15-25 ridges) of the same
/// archetypes: far from every full print (the length gap alone costs ≥ 45
/// edits) yet close to one another — a microcluster by construction.
pub fn fingerprints(n_full: usize, n_partial: usize, seed: u64) -> LabeledData<String> {
    let mut r = rng(seed ^ 0xF16E_4912);
    let templates: Vec<Vec<char>> = (0..3).map(|_| template(&mut r, 70)).collect();
    let mut points = Vec::with_capacity(n_full + n_partial);
    let mut labels = Vec::with_capacity(n_full + n_partial);
    for i in 0..n_full {
        let k = r.random_range(3..8);
        points.push(mutate(&mut r, &templates[i % 3], k));
        labels.push(false);
    }
    // All partials are fragments of the *same* archetype at nearby offsets:
    // the coherent group of partial captures the paper's dataset contains.
    for _ in 0..n_partial {
        let len = r.random_range(18..22);
        let start = r.random_range(0..3);
        let k = r.random_range(1..3);
        points.push(mutate(&mut r, &templates[0][start..start + len], k));
        labels.push(true);
    }
    LabeledData::new("Fingerprints", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_labels() {
        let d = fingerprints(100, 5, 1);
        assert_eq!(d.len(), 105);
        assert_eq!(d.num_outliers(), 5);
    }

    #[test]
    fn full_prints_long_partials_short() {
        let d = fingerprints(50, 5, 2);
        for (p, &l) in d.points.iter().zip(&d.labels) {
            if l {
                assert!(p.len() < 30, "partial too long: {}", p.len());
            } else {
                assert!(p.len() >= 60, "full too short: {}", p.len());
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(fingerprints(30, 3, 7).points, fingerprints(30, 3, 7).points);
    }

    #[test]
    fn length_gap_separates_partials() {
        // Edit distance >= length difference, so partial-vs-full is >= 35
        // while partial-vs-partial is <= 25.
        let d = fingerprints(20, 4, 3);
        let partials: Vec<&String> = d.points[20..].iter().collect();
        for a in &partials {
            for b in &partials {
                assert!((a.len() as i64 - b.len() as i64).abs() < 11);
            }
        }
    }
}
