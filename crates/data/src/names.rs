//! The "Last Names" analogue (Fig. 1(ii), Tab. III): 5,000 inlier surnames
//! with English phonotactics plus 50 outliers drawn from other language
//! profiles, analysed under the L-Edit (Levenshtein) distance.
//!
//! Names are built from per-language syllable inventories, so inliers form
//! a dense cloud under edit distance (shared stems and suffixes) while
//! non-English names — different syllables, different endings, accented
//! characters — sit farther away, mirroring the paper's finding that
//! MCCATCH "distinguished English and NonEnglish names".

use crate::labeled::LabeledData;
use crate::rng::rng;
use rand::rngs::StdRng;
use rand::Rng;

const ENGLISH_ONSETS: &[&str] = &[
    "smith", "john", "will", "brown", "jones", "mill", "david", "clark", "wood", "hall", "wright",
    "walk", "rob", "thomp", "whit", "harr", "mart", "coop", "turn", "park", "bak", "carv", "fish",
    "shep", "black", "green", "hill", "ford", "web", "stone",
];
const ENGLISH_SUFFIXES: &[&str] = &[
    "son", "s", "er", "ton", "ley", "field", "man", "ing", "worth", "wood", "well", "ers", "kins",
    "ard", "ford", "",
];

/// One non-English language profile: syllables plus typical endings.
struct Profile {
    onsets: &'static [&'static str],
    suffixes: &'static [&'static str],
}

const PROFILES: &[Profile] = &[
    // Italian
    Profile {
        onsets: &[
            "ross", "ferr", "espos", "bianch", "romagn", "colomb", "ricc", "marin",
        ],
        suffixes: &["ini", "etti", "ella", "ucci", "aro", "one"],
    },
    // Japanese (romaji)
    Profile {
        onsets: &[
            "naka", "yama", "taka", "kobaya", "matsu", "fuji", "wata", "haya",
        ],
        suffixes: &["moto", "shita", "hashi", "mura", "saki", "nabe"],
    },
    // Polish
    Profile {
        onsets: &[
            "kowal", "nowak", "wisni", "wojci", "kami", "lewan", "zieli", "szyma",
        ],
        suffixes: &["ski", "czyk", "ewski", "owska", "nski"],
    },
    // Greek
    Profile {
        onsets: &["papa", "niko", "dimi", "kosta", "theo", "vasi"],
        suffixes: &["opoulos", "akis", "idis", "adis"],
    },
    // Scandinavian / accented
    Profile {
        onsets: &["sør", "bjø", "åker", "lind", "nygå", "østr"],
        suffixes: &["ensen", "qvist", "ström", "gård", "dóttir"],
    },
];

fn english_name(r: &mut StdRng) -> String {
    let onset = ENGLISH_ONSETS[r.random_range(0..ENGLISH_ONSETS.len())];
    let suffix = ENGLISH_SUFFIXES[r.random_range(0..ENGLISH_SUFFIXES.len())];
    format!("{onset}{suffix}")
}

fn foreign_name(r: &mut StdRng) -> String {
    let p = &PROFILES[r.random_range(0..PROFILES.len())];
    let onset = p.onsets[r.random_range(0..p.onsets.len())];
    let suffix = p.suffixes[r.random_range(0..p.suffixes.len())];
    format!("{onset}{suffix}")
}

/// Generates the Last Names analogue: `n_inliers` English names and
/// `n_outliers` non-English names (Tab. III: 5,000 + 50).
pub fn last_names(n_inliers: usize, n_outliers: usize, seed: u64) -> LabeledData<String> {
    let mut r = rng(seed ^ 0x1A57_4A3E);
    let mut points = Vec::with_capacity(n_inliers + n_outliers);
    let mut labels = Vec::with_capacity(n_inliers + n_outliers);
    for _ in 0..n_inliers {
        points.push(english_name(&mut r));
        labels.push(false);
    }
    for _ in 0..n_outliers {
        points.push(foreign_name(&mut r));
        labels.push(true);
    }
    LabeledData::new("Last Names", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_metric::Levenshtein;

    #[test]
    fn sizes_and_labels() {
        let d = last_names(500, 10, 1);
        assert_eq!(d.len(), 510);
        assert_eq!(d.num_outliers(), 10);
    }

    #[test]
    fn deterministic() {
        assert_eq!(last_names(100, 5, 2).points, last_names(100, 5, 2).points);
    }

    #[test]
    fn foreign_names_are_farther_on_average() {
        let d = last_names(300, 10, 3);
        // Mean distance from each outlier to its nearest inlier must exceed
        // the mean inlier-to-nearest-inlier distance.
        let nn = |i: usize| -> f64 {
            (0..300)
                .filter(|&j| j != i)
                .map(|j| Levenshtein::edit_distance(&d.points[i], &d.points[j]) as f64)
                .fold(f64::INFINITY, f64::min)
        };
        let inlier_nn: f64 = (0..40).map(nn).sum::<f64>() / 40.0;
        let outlier_nn: f64 = (300..310).map(nn).sum::<f64>() / 10.0;
        assert!(
            outlier_nn > inlier_nn + 1.0,
            "outlier_nn {outlier_nn} vs inlier_nn {inlier_nn}"
        );
    }
}
