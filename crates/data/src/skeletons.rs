//! The "Skeletons" analogue (Fig. 1(iii), Tab. III): 200 human skeleton
//! graphs plus 3 wild-animal skeletons, analysed under tree edit distance.
//!
//! A silhouette skeleton is an acyclic stick figure, so we model skeletons
//! as ordered labeled trees (see `mccatch_metric::TreeEditDistance` for why
//! that substitution is sound). Humans share one topology — torso with a
//! head chain, two arms, two legs — with small per-sample variation in limb
//! segment counts; wild animals (quadruped, snake, bird) have markedly
//! different topologies and land far away in edit distance.

use crate::labeled::LabeledData;
use crate::rng::rng;
use mccatch_metric::{OrderedTree, TreeNode};
use rand::rngs::StdRng;
use rand::Rng;

/// Node labels: coarse body-part codes shared across all skeletons.
mod label {
    pub const TORSO: u32 = 0;
    pub const NECK: u32 = 1;
    pub const HEAD: u32 = 2;
    pub const ARM: u32 = 3;
    pub const HAND: u32 = 4;
    pub const LEG: u32 = 5;
    pub const FOOT: u32 = 6;
    pub const SPINE: u32 = 7;
    pub const TAIL: u32 = 8;
    pub const WING: u32 = 9;
    pub const FINGER: u32 = 10;
}

fn chain(label: u32, len: usize, tip: Option<TreeNode>) -> TreeNode {
    let mut node = tip.unwrap_or(TreeNode::new(label));
    for _ in 0..len {
        node = TreeNode::with_children(label, vec![node]);
    }
    node
}

/// A human skeleton: torso → {spine segments, neck→head, arm×2 (with
/// hands and fingers), leg×2 (with feet)}. Segment counts vary per sample
/// over a space of several hundred combinations, mirroring how real
/// silhouette skeletons differ slightly from person to person — no two
/// samples are forced apart, but exact duplicates are rare.
fn human(r: &mut StdRng) -> OrderedTree {
    use label::*;
    let arm_len = r.random_range(2..5);
    let leg_len = r.random_range(2..5);
    let neck_len = r.random_range(1..4);
    let spine_len = r.random_range(0..3);
    let fingers = r.random_range(0..4);
    let hand = |_r: &mut StdRng| {
        let mut h = TreeNode::new(HAND);
        for _ in 0..fingers {
            h.children.push(TreeNode::new(FINGER));
        }
        h
    };
    let mut children = vec![chain(NECK, neck_len, Some(TreeNode::new(HEAD)))];
    if spine_len > 0 {
        children.push(chain(SPINE, spine_len, None));
    }
    children.extend([
        chain(ARM, arm_len, Some(hand(r))),
        chain(ARM, arm_len, Some(hand(r))),
        chain(LEG, leg_len, Some(TreeNode::new(FOOT))),
        chain(LEG, leg_len, Some(TreeNode::new(FOOT))),
    ]);
    let root = TreeNode::with_children(TORSO, children);
    OrderedTree::from_node(&root)
}

/// A quadruped: long spine with four legs hanging off it, a tail, a head.
fn quadruped(r: &mut StdRng) -> OrderedTree {
    use label::*;
    let leg = |r: &mut StdRng| chain(LEG, r.random_range(2..4), Some(TreeNode::new(FOOT)));
    let root = TreeNode::with_children(
        SPINE,
        vec![
            chain(NECK, 1, Some(TreeNode::new(HEAD))),
            leg(r),
            leg(r),
            TreeNode::with_children(SPINE, vec![leg(r), leg(r), chain(TAIL, 4, None)]),
        ],
    );
    OrderedTree::from_node(&root)
}

/// A snake: one long spine chain with a head.
fn snake(r: &mut StdRng) -> OrderedTree {
    use label::*;
    let root = chain(SPINE, r.random_range(12..16), Some(TreeNode::new(HEAD)));
    OrderedTree::from_node(&root)
}

/// A bird: short torso, two large wings, two short legs, head.
fn bird(r: &mut StdRng) -> OrderedTree {
    use label::*;
    let wing = |r: &mut StdRng| chain(WING, r.random_range(3..5), None);
    let root = TreeNode::with_children(
        TORSO,
        vec![
            chain(NECK, 2, Some(TreeNode::new(HEAD))),
            wing(r),
            wing(r),
            chain(LEG, 1, Some(TreeNode::new(FOOT))),
            chain(LEG, 1, Some(TreeNode::new(FOOT))),
            chain(TAIL, 2, None),
        ],
    );
    OrderedTree::from_node(&root)
}

/// Generates the Skeletons analogue: `n_humans` inliers plus the 3
/// wild-animal outliers (Tab. III: 200 + 3).
pub fn skeletons(n_humans: usize, seed: u64) -> LabeledData<OrderedTree> {
    let mut r = rng(seed ^ 0x5E1E_7035);
    let mut points = Vec::with_capacity(n_humans + 3);
    let mut labels = Vec::with_capacity(n_humans + 3);
    for _ in 0..n_humans {
        points.push(human(&mut r));
        labels.push(false);
    }
    points.push(quadruped(&mut r));
    points.push(snake(&mut r));
    points.push(bird(&mut r));
    labels.extend([true, true, true]);
    LabeledData::new("Skeletons", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_metric::{Metric, TreeEditDistance};

    #[test]
    fn sizes_and_labels() {
        let d = skeletons(50, 1);
        assert_eq!(d.len(), 53);
        assert_eq!(d.num_outliers(), 3);
    }

    #[test]
    fn deterministic() {
        let a = skeletons(20, 2);
        let b = skeletons(20, 2);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(TreeEditDistance.distance(x, y), 0.0);
        }
    }

    #[test]
    fn humans_are_mutually_close_animals_far() {
        let d = skeletons(30, 3);
        let ted = TreeEditDistance;
        // Mean human-human distance.
        let mut hh = Vec::new();
        for i in 0..10 {
            for j in (i + 1)..10 {
                hh.push(ted.distance(&d.points[i], &d.points[j]));
            }
        }
        let hh_mean: f64 = hh.iter().sum::<f64>() / hh.len() as f64;
        // Distance from each wild animal to its nearest human.
        for w in 30..33 {
            let nearest = (0..30)
                .map(|i| ted.distance(&d.points[w], &d.points[i]))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest > hh_mean + 2.0,
                "animal {w} too close: {nearest} vs mean {hh_mean}"
            );
        }
    }

    #[test]
    fn human_trees_have_expected_anatomy() {
        let d = skeletons(5, 4);
        for t in &d.points[..5] {
            // Torso + neck(s) + head + 2 arms + hands + 2 legs + feet >= 12.
            assert!(t.size() >= 12, "skeleton too small: {}", t.size());
            // Structural maximum: 1 torso + 3 neck + 1 head + 2 spine +
            // 2×(4 arm + 1 hand + 3 fingers) + 2×(4 leg + 1 foot) = 33.
            assert!(t.size() <= 33, "skeleton too big: {}", t.size());
        }
    }
}
