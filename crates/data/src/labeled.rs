//! A dataset with outlier ground truth.

/// Points plus boolean outlier labels (`true` = outlier), the shape every
/// accuracy experiment consumes.
#[derive(Debug, Clone)]
pub struct LabeledData<P> {
    /// Human-readable dataset name (matches the paper's Tab. III names for
    /// the benchmark analogues).
    pub name: String,
    /// The data elements.
    pub points: Vec<P>,
    /// Ground truth: `labels[i]` is true iff `points[i]` is an outlier.
    pub labels: Vec<bool>,
}

impl<P> LabeledData<P> {
    /// Creates a labeled dataset, checking lengths agree.
    pub fn new(name: impl Into<String>, points: Vec<P>, labels: Vec<bool>) -> Self {
        assert_eq!(points.len(), labels.len());
        Self {
            name: name.into(),
            points,
            labels,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of ground-truth outliers.
    pub fn num_outliers(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Outlier fraction in percent (Tab. III's "% Outliers").
    pub fn outlier_percent(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            100.0 * self.num_outliers() as f64 / self.points.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_percent() {
        let d = LabeledData::new("t", vec![1, 2, 3, 4], vec![true, false, false, true]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_outliers(), 2);
        assert!((d.outlier_percent() - 50.0).abs() < 1e-12);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = LabeledData::new("t", vec![1], vec![true, false]);
    }
}
