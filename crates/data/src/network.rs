//! The HTTP network-connection workload of Fig. 8(ii): 222K connections
//! described by bytes sent, bytes received and duration, containing a
//! 30-connection microcluster of 'DoS back' attacks.
//!
//! The real KDD'99 HTTP subset is not redistributable; this generator
//! reproduces the geometry the paper describes: a dense mass of benign
//! connections (log-scale features, a few behavioral modes), a tight
//! 30-point cluster of attack connections "sending too many bytes to a
//! server aimed at overloading it", and a handful of scattered oddballs
//! with unusually long durations or byte counts.

use crate::labeled::LabeledData;
use crate::rng::{normal, rng};
use rand::Rng;

/// One generated connection record (already log-transformed, as is standard
/// for the HTTP benchmark).
pub type Connection = Vec<f64>;

/// Generates the HTTP analogue with `n` connections (Tab. III: 222,027,
/// 0.03% outliers ⇒ ~66 attacks, 30 of them the DoS microcluster).
///
/// Feature order: `[log bytes_sent, log bytes_received, log duration]`.
pub fn http(n: usize, seed: u64) -> LabeledData<Connection> {
    let mut r = rng(seed ^ 0x477_9B0B);
    let n_dos = if n >= 1000 { 30 } else { (n / 30).max(2) };
    let n_scatter = (n as f64 * 0.0003).round() as usize;
    let n_benign = n.saturating_sub(n_dos + n_scatter);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    // Benign traffic: three modes (small GETs, page loads, downloads).
    for _ in 0..n_benign {
        let mode: f64 = r.random();
        let (ms, mr, md) = if mode < 0.6 {
            (5.5, 7.5, 0.5) // small requests
        } else if mode < 0.9 {
            (6.5, 9.0, 1.5) // page loads
        } else {
            (6.0, 11.5, 3.0) // downloads
        };
        points.push(vec![
            ms + 0.5 * normal(&mut r),
            mr + 0.6 * normal(&mut r),
            md + 0.5 * normal(&mut r),
        ]);
        labels.push(false);
    }
    // The DoS microcluster: huge bytes sent, near-zero response, short
    // duration; tightly clustered (same exploit, repeated).
    for _ in 0..n_dos {
        points.push(vec![
            14.0 + 0.05 * normal(&mut r),
            2.0 + 0.05 * normal(&mut r),
            0.2 + 0.05 * normal(&mut r),
        ]);
        labels.push(true);
    }
    // Scattered anomalies: individually odd connections.
    for k in 0..n_scatter {
        let p = match k % 3 {
            0 => vec![
                6.0 + 0.3 * normal(&mut r),
                9.0 + 0.3 * normal(&mut r),
                9.0 + 0.8 * normal(&mut r), // absurd duration
            ],
            1 => vec![
                11.5 + 0.6 * normal(&mut r), // absurd upload
                12.5 + 0.6 * normal(&mut r),
                2.0 + 0.3 * normal(&mut r),
            ],
            _ => vec![
                1.0 + 0.3 * normal(&mut r), // empty exchange, long wait
                1.0 + 0.3 * normal(&mut r),
                6.5 + 0.5 * normal(&mut r),
            ],
        };
        points.push(p);
        labels.push(true);
    }
    LabeledData::new("Http", points, labels)
}

/// Ids of the DoS microcluster inside [`http`]'s output (they follow the
/// benign block).
pub fn http_dos_ids(n: usize) -> Vec<u32> {
    let n_dos = if n >= 1000 { 30 } else { (n / 30).max(2) };
    let n_scatter = (n as f64 * 0.0003).round() as usize;
    let n_benign = n.saturating_sub(n_dos + n_scatter);
    (n_benign as u32..(n_benign + n_dos) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_proportions() {
        let d = http(222_027, 1);
        assert_eq!(d.len(), 222_027);
        // ~0.03% outliers plus the 30-point DoS cluster.
        let outliers = d.num_outliers();
        assert!((90..=110).contains(&outliers), "outliers = {outliers}");
    }

    #[test]
    fn dos_cluster_is_tight() {
        let n = 20_000;
        let d = http(n, 2);
        let ids = http_dos_ids(n);
        assert_eq!(ids.len(), 30);
        let c = &d.points[ids[0] as usize];
        for &i in &ids {
            let p = &d.points[i as usize];
            assert!(d.labels[i as usize]);
            let dist: f64 = c
                .iter()
                .zip(p)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(dist < 1.0, "DoS point {i} strays: {dist}");
        }
    }

    #[test]
    fn dos_is_far_from_benign_modes() {
        let d = http(5_000, 3);
        let ids = http_dos_ids(5_000);
        let dos = &d.points[ids[0] as usize];
        for (p, &l) in d.points.iter().zip(&d.labels) {
            if !l {
                let dist: f64 = dos
                    .iter()
                    .zip(p)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(dist > 3.0, "benign point near DoS: {dist}");
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(http(1000, 4).points, http(1000, 4).points);
    }
}
