//! The satellite-image workloads of Fig. 1(i) and Fig. 8(i): average RGB
//! values per rectangular tile of a satellite image.
//!
//! *Shanghai* (1,296 tiles): dense urban texture with two planted pairs of
//! unusually colored roofs (a red pair and a blue pair — each pair alike
//! within itself) plus a few scattered, mutually distinct outlier tiles.
//! *Volcanoes* (3,721 tiles): dark volcanic terrain with a 3-tile snow
//! microcluster at the summit and a couple of isolated rock anomalies.
//!
//! Ground truth is known here (we plant it), unlike the paper's real
//! images, so these sets also serve accuracy tests; labels mark the
//! planted anomalies.

use crate::labeled::LabeledData;
use crate::rng::{normal, rng};

/// Tile grid with RGB features and the planted anomaly structure.
#[derive(Debug, Clone)]
pub struct TileImage {
    /// The labeled RGB tiles (`points[i]` = mean `[r, g, b]` of tile `i`).
    pub data: LabeledData<Vec<f64>>,
    /// Grid width in tiles (tiles are stored row-major).
    pub width: usize,
    /// Ids of planted *microcluster* tiles, one vector per cluster.
    pub planted_clusters: Vec<Vec<u32>>,
    /// Ids of planted scattered singleton tiles.
    pub planted_singletons: Vec<u32>,
}

/// The Shanghai analogue: a 36×36 tile grid (1,296 tiles — Tab. III).
pub fn shanghai(seed: u64) -> TileImage {
    let mut r = rng(seed ^ 0x54A6_0A11);
    let width = 36;
    let n = width * width;
    let mut points = Vec::with_capacity(n);
    // Urban base: gray with mild block-structured variation.
    for i in 0..n {
        let (x, y) = (i % width, i / width);
        let block = ((x / 6 + y / 6) % 3) as f64 * 12.0;
        let base = 110.0 + block;
        points.push(vec![
            base + 8.0 * normal(&mut r),
            base + 8.0 * normal(&mut r),
            base + 8.0 * normal(&mut r) + 5.0,
        ]);
    }
    let mut labels = vec![false; n];
    // Two 2-tile pairs of unusual roofs: red and blue (Fig. 1(i)).
    let red_pair = [200u32, 201];
    for &i in &red_pair {
        points[i as usize] = vec![
            230.0 + 2.0 * normal(&mut r),
            40.0 + 2.0 * normal(&mut r),
            35.0 + 2.0 * normal(&mut r),
        ];
        labels[i as usize] = true;
    }
    let blue_pair = [700u32, 701];
    for &i in &blue_pair {
        points[i as usize] = vec![
            30.0 + 2.0 * normal(&mut r),
            60.0 + 2.0 * normal(&mut r),
            220.0 + 2.0 * normal(&mut r),
        ];
        labels[i as usize] = true;
    }
    // Scattered unusual tiles, mutually distinct (yellow-ish hues spread out).
    let singles: Vec<u32> = vec![77, 410, 893, 1150];
    for (k, &i) in singles.iter().enumerate() {
        let hue = 150.0 + 35.0 * k as f64;
        points[i as usize] = vec![hue, hue - 30.0 * k as f64 * 0.5, 20.0 + 15.0 * k as f64];
        labels[i as usize] = true;
    }
    TileImage {
        data: LabeledData::new("Shanghai", points, labels),
        width,
        planted_clusters: vec![red_pair.to_vec(), blue_pair.to_vec()],
        planted_singletons: singles,
    }
}

/// The Volcanoes analogue: a 61×61 tile grid (3,721 tiles — Tab. III).
pub fn volcanoes(seed: u64) -> TileImage {
    let mut r = rng(seed ^ 0x0B01_CA60);
    let width = 61;
    let n = width * width;
    let mut points = Vec::with_capacity(n);
    // Volcanic terrain: dark browns that darken toward the center cone.
    for i in 0..n {
        let (x, y) = (i % width, i / width);
        let dx = x as f64 - 30.0;
        let dy = y as f64 - 30.0;
        let cone = (dx * dx + dy * dy).sqrt() / 43.0; // 0 center -> 1 corner
        let base = 50.0 + 60.0 * cone;
        points.push(vec![
            base + 6.0 * normal(&mut r) + 15.0,
            base + 6.0 * normal(&mut r),
            base + 6.0 * normal(&mut r) - 10.0,
        ]);
    }
    let mut labels = vec![false; n];
    // 3-tile snow microcluster at the summit (Fig. 8(i)).
    let summit = [
        30 * width as u32 + 30,
        30 * width as u32 + 31,
        31 * width as u32 + 30,
    ];
    for &i in &summit {
        points[i as usize] = vec![
            240.0 + 2.0 * normal(&mut r),
            245.0 + 2.0 * normal(&mut r),
            250.0 + 2.0 * normal(&mut r),
        ];
        labels[i as usize] = true;
    }
    // Two isolated anomalies: a red-hot vent and a green patch.
    let singles = vec![500u32, 3000u32];
    points[500] = vec![220.0, 60.0, 30.0];
    points[3000] = vec![60.0, 180.0, 70.0];
    labels[500] = true;
    labels[3000] = true;
    TileImage {
        data: LabeledData::new("Volcanoes", points, labels),
        width,
        planted_clusters: vec![summit.to_vec()],
        planted_singletons: singles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shanghai_matches_tab3_cardinality() {
        let img = shanghai(1);
        assert_eq!(img.data.len(), 1296);
        assert_eq!(img.width, 36);
        assert_eq!(img.planted_clusters.len(), 2);
        assert_eq!(img.data.num_outliers(), 8);
    }

    #[test]
    fn volcanoes_matches_tab3_cardinality() {
        let img = volcanoes(1);
        assert_eq!(img.data.len(), 3721);
        assert_eq!(img.data.num_outliers(), 5);
        assert_eq!(img.planted_clusters[0].len(), 3);
    }

    #[test]
    fn planted_pairs_are_tight_and_far_from_base() {
        let img = shanghai(2);
        for cluster in &img.planted_clusters {
            let a = &img.data.points[cluster[0] as usize];
            let b = &img.data.points[cluster[1] as usize];
            let within: f64 = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            assert!(within < 15.0, "pair spread {within}");
            // Distance to an ordinary tile must be much larger.
            let base = &img.data.points[0];
            let to_base: f64 = a
                .iter()
                .zip(base)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            assert!(to_base > 80.0, "pair not anomalous ({to_base})");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(shanghai(5).data.points, shanghai(5).data.points);
        assert_eq!(volcanoes(5).data.points, volcanoes(5).data.points);
    }
}
