//! Dataset generators mirroring the MCCATCH evaluation (Tab. III).
//!
//! Every generator is seeded and fully deterministic. Real, gated corpora
//! (KDD'99 HTTP, satellite imagery, name/fingerprint/skeleton collections)
//! are replaced by synthetic analogues that preserve the geometry MCCATCH
//! reacts to — cardinalities, dimensionalities, outlier fractions, planted
//! microclusters; the substitutions are itemized in `DESIGN.md` §4.
//!
//! * [`axioms`] — the Fig. 2 isolation/cardinality scenarios (Tab. V).
//! * [`benchmarks`] — the 18 vector benchmark analogues (Fig. 6, Tab. IV).
//! * [`synthetic`] — Uniform / Diagonal scalability workloads (Fig. 7).
//! * [`names`], [`fingerprints`](mod@fingerprints), [`skeletons`](mod@skeletons) — nondimensional data
//!   (strings and trees; Fig. 1, Tab. III).
//! * [`satellite`] — Shanghai / Volcanoes tile grids (Fig. 1(i), 8(i)).
//! * [`network`] — the HTTP connection log with its 30-point DoS
//!   microcluster (Fig. 8(ii)).

pub mod axioms;
pub mod benchmarks;
pub mod fingerprints;
pub mod labeled;
pub mod names;
pub mod network;
pub mod rng;
pub mod satellite;
pub mod skeletons;
pub mod synthetic;

pub use axioms::{axiom_scenario, Axiom, AxiomScenario, InlierShape};
pub use benchmarks::{benchmark_by_name, BenchmarkSpec, BENCHMARKS};
pub use fingerprints::fingerprints;
pub use labeled::LabeledData;
pub use names::last_names;
pub use network::{http, http_dos_ids};
pub use satellite::{shanghai, volcanoes, TileImage};
pub use skeletons::skeletons;
pub use synthetic::{diagonal, uniform};
