//! Deterministic random sampling helpers.
//!
//! Everything in `mccatch-data` is seeded: the same seed always produces
//! the identical dataset, which keeps the experiment harness and the
//! property tests reproducible. Gaussian variates use Box–Muller so we
//! need no dependency beyond `rand` itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG; the only constructor the crate uses.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard normal variate (Box–Muller transform).
pub fn normal(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A point drawn from an isotropic Gaussian around `mean`.
pub fn gaussian_point(rng: &mut StdRng, mean: &[f64], std: f64) -> Vec<f64> {
    mean.iter().map(|&m| m + std * normal(rng)).collect()
}

/// A point drawn uniformly from `[lo, hi]^dim`.
pub fn uniform_point(rng: &mut StdRng, dim: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..dim).map(|_| rng.random_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = rng(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_point_centers_on_mean() {
        let mut r = rng(1);
        let pts: Vec<Vec<f64>> = (0..10_000)
            .map(|_| gaussian_point(&mut r, &[10.0, -5.0], 2.0))
            .collect();
        let mx = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        let my = pts.iter().map(|p| p[1]).sum::<f64>() / pts.len() as f64;
        assert!((mx - 10.0).abs() < 0.1);
        assert!((my + 5.0).abs() < 0.1);
    }

    #[test]
    fn uniform_point_in_bounds() {
        let mut r = rng(3);
        for _ in 0..1000 {
            let p = uniform_point(&mut r, 4, -2.0, 3.0);
            assert_eq!(p.len(), 4);
            assert!(p.iter().all(|&x| (-2.0..3.0).contains(&x)));
        }
    }
}
