//! The scalability workloads of Fig. 7: Uniform and Diagonal point clouds
//! with 2 to 50 embedding dimensions and up to one million points.
//!
//! *Uniform* fills the unit hypercube: its correlation fractal dimension
//! equals the embedding dimension, so Lemma 1 predicts runtime slopes of
//! `2 − 1/d` (1.5, 1.95, 1.98 for d = 2, 20, 50). *Diagonal* places points
//! on the main diagonal — intrinsic dimension 1 regardless of the
//! embedding — so the predicted slope is 1.0 for every `d`.

use crate::rng::{rng, uniform_point};
use rand::Rng;

/// `n` points uniform in `[0, 100]^dim`.
pub fn uniform(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut r = rng(seed ^ 0x00F1_F0F0);
    (0..n)
        .map(|_| uniform_point(&mut r, dim, 0.0, 100.0))
        .collect()
}

/// `n` points on the main diagonal of `[0, 100]^dim`, with tiny per-axis
/// jitter so the data is not exactly degenerate (mirrors the paper's
/// "form a diagonal line").
pub fn diagonal(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut r = rng(seed ^ 0xD1A6_0A11);
    (0..n)
        .map(|_| {
            let t: f64 = r.random_range(0.0..100.0);
            (0..dim).map(|_| t + r.random_range(-0.01..0.01)).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let pts = uniform(1000, 5, 1);
        assert_eq!(pts.len(), 1000);
        assert!(pts.iter().all(|p| p.len() == 5));
        assert!(pts
            .iter()
            .all(|p| p.iter().all(|&x| (0.0..100.0).contains(&x))));
    }

    #[test]
    fn diagonal_is_on_the_diagonal() {
        let pts = diagonal(500, 8, 2);
        for p in &pts {
            let t = p[0];
            for &x in p.iter() {
                assert!((x - t).abs() < 0.05);
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(uniform(100, 3, 9), uniform(100, 3, 9));
        assert_eq!(diagonal(100, 3, 9), diagonal(100, 3, 9));
        assert_ne!(uniform(100, 3, 9), uniform(100, 3, 10));
    }
}
