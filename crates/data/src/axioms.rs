//! The axiom scenarios of Fig. 2: synthetic datasets where ground truth
//! says which of two microclusters must score higher.
//!
//! Each scenario has a large inlier cluster (Gaussian-, cross- or
//! arc-shaped, symmetric about the vertical axis `x = 50`) plus two planted
//! microclusters on the horizontal line through the cluster center:
//!
//! * **Isolation axiom** — equal cardinality (10 points each); the *green*
//!   microcluster sits farther from the inliers, so it must score higher.
//! * **Cardinality axiom** — equal 'Bridge's Lengths' (symmetric placement);
//!   the *red* microcluster has 100 points, the *green* one has 10, so the
//!   green one must score higher.
//!
//! The paper evaluates 50 random instances per (axiom × shape) pair
//! (Tab. V); instances here are parameterized by seed.

use crate::labeled::LabeledData;
use crate::rng::{gaussian_point, normal, rng};
use rand::rngs::StdRng;
use rand::Rng;

/// Shape of the inlier cluster (Fig. 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlierShape {
    /// Isotropic Gaussian blob.
    Gaussian,
    /// Upright cross: one horizontal and one vertical bar.
    Cross,
    /// Circular arc (upper half circle).
    Arc,
}

impl InlierShape {
    /// All three shapes, in the paper's order.
    pub const ALL: [InlierShape; 3] = [InlierShape::Gaussian, InlierShape::Cross, InlierShape::Arc];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            InlierShape::Gaussian => "Gaussian",
            InlierShape::Cross => "Cross",
            InlierShape::Arc => "Arc",
        }
    }

    /// Horizontal half-width of the dense part of the shape, used to place
    /// the microclusters at controlled bridge distances.
    fn half_width(&self) -> f64 {
        match self {
            InlierShape::Gaussian => 16.0, // 2 sigma
            InlierShape::Cross => 15.0,
            InlierShape::Arc => 15.0,
        }
    }

    /// One inlier sample. All shapes have *bounded* support (the Gaussian
    /// is truncated at 2σ, the bar/arc thickness noise at 3σ): Fig. 2 draws
    /// compact clusters, and unbounded tails would silently shrink the
    /// planted 'Bridge's Lengths' at the ~10⁴-sample scale.
    fn sample(&self, r: &mut StdRng) -> Vec<f64> {
        const CX: f64 = 50.0;
        const CY: f64 = 70.0;
        match self {
            InlierShape::Gaussian => loop {
                let p = gaussian_point(r, &[CX, CY], 8.0);
                let d2 = (p[0] - CX).powi(2) + (p[1] - CY).powi(2);
                if d2 <= 16.0 * 16.0 {
                    return p;
                }
            },
            InlierShape::Cross => {
                // Two bars of half-length 15, thickness sigma 1.2 (clamped).
                let along = r.random_range(-15.0..15.0);
                let thick = (1.2 * normal(r)).clamp(-3.6, 3.6);
                if r.random::<bool>() {
                    vec![CX + along, CY + thick]
                } else {
                    vec![CX + thick, CY + along]
                }
            }
            InlierShape::Arc => {
                // Upper half circle of radius 15, radial noise sigma 1.2
                // (clamped).
                let theta = r.random_range(0.0..std::f64::consts::PI);
                let rad = 15.0 + (1.2 * normal(r)).clamp(-3.6, 3.6);
                vec![CX + rad * theta.cos(), CY + rad * theta.sin() - 7.5]
            }
        }
    }
}

/// Which axiom the scenario instantiates (Fig. 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axiom {
    /// All else equal, the farther microcluster must score higher.
    Isolation,
    /// All else equal, the less populous microcluster must score higher.
    Cardinality,
}

impl Axiom {
    /// Both axioms, in the paper's order.
    pub const ALL: [Axiom; 2] = [Axiom::Isolation, Axiom::Cardinality];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Axiom::Isolation => "Isolation",
            Axiom::Cardinality => "Cardinality",
        }
    }
}

/// A generated axiom scenario: the dataset plus the ids of the two planted
/// microclusters. Ground truth: `green` must receive a larger anomaly score
/// than `red`.
#[derive(Debug, Clone)]
pub struct AxiomScenario {
    /// The dataset; all microcluster members are labeled outliers.
    pub data: LabeledData<Vec<f64>>,
    /// Members of the *less* anomalous microcluster.
    pub red: Vec<u32>,
    /// Members of the *more* anomalous microcluster.
    pub green: Vec<u32>,
    /// The shape and axiom that produced this scenario.
    pub shape: InlierShape,
    /// See [`Axiom`].
    pub axiom: Axiom,
}

/// Generates one Fig. 2 scenario. `n_inliers` controls the inlier cluster
/// size (the paper uses ~1M; tests use less; geometry is size-invariant).
pub fn axiom_scenario(
    shape: InlierShape,
    axiom: Axiom,
    n_inliers: usize,
    seed: u64,
) -> AxiomScenario {
    let mut r = rng(seed ^ 0xAC5_1035);
    let mut points = Vec::with_capacity(n_inliers + 110);
    for _ in 0..n_inliers {
        points.push(shape.sample(&mut r));
    }
    let w = shape.half_width();
    const CX: f64 = 50.0;
    const CY: f64 = 70.0;
    // Microcluster centers sit on the horizontal line through the cluster
    // center. Isolation: green is farther. Cardinality: near-symmetric
    // bridges, red is 10x more populous.
    //
    // "All else being equal" must survive MCCATCH's radius-grid
    // quantization, so members are planted on a *fixed* grid pattern
    // (identical spacing for both microclusters, hence identical per-member
    // 1NN distances) with jitter far smaller than the spacing, and the
    // bridge gaps are sized so that red/green quantize to the same grid
    // radius under the Cardinality axiom and to different ones under the
    // Isolation axiom.
    // Spacing note: under Cardinality the 10x10 grid's diagonal must
    // saturate its neighbor count strictly below the grid radius ~l/16, or
    // the 100-point plateau becomes sensitive to the diameter estimate;
    // 0.37 keeps the diagonal (~4.7) safely below it while per-member 1NN
    // distances still quantize one bin above the inlier mass.
    let (red_gap, green_gap, red_n, green_n, spacing) = match axiom {
        Axiom::Isolation => (14.0, 34.0, 10usize, 10usize, 0.45),
        Axiom::Cardinality => (16.0, 16.0, 100usize, 10usize, 0.37),
    };
    let mut plant = |center_x: f64, count: usize, ids: &mut Vec<u32>, r: &mut StdRng| {
        // 2x5 grid for 10 members, 10x10 for 100.
        let (cols, rows) = if count == 10 { (2, 5) } else { (10, 10) };
        debug_assert_eq!(cols * rows, count);
        for i in 0..cols {
            for j in 0..rows {
                let ox = (i as f64 - (cols as f64 - 1.0) / 2.0) * spacing;
                let oy = (j as f64 - (rows as f64 - 1.0) / 2.0) * spacing;
                ids.push(points.len() as u32);
                points.push(vec![
                    center_x + ox + r.random_range(-0.02..0.02),
                    CY + oy + r.random_range(-0.02..0.02),
                ]);
            }
        }
    };
    let mut red = Vec::with_capacity(red_n);
    plant(CX - w - red_gap, red_n, &mut red, &mut r);
    let mut green = Vec::with_capacity(green_n);
    plant(CX + w + green_gap, green_n, &mut green, &mut r);
    let mut labels = vec![false; points.len()];
    for &i in red.iter().chain(&green) {
        labels[i as usize] = true;
    }
    let name = format!("{} ({}. Axiom)", shape.name(), &axiom.name()[..1]);
    AxiomScenario {
        data: LabeledData::new(name, points, labels),
        red,
        green,
        shape,
        axiom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shapes_and_sizes() {
        for shape in InlierShape::ALL {
            for axiom in Axiom::ALL {
                let s = axiom_scenario(shape, axiom, 1000, 7);
                let (rn, gn) = match axiom {
                    Axiom::Isolation => (10, 10),
                    Axiom::Cardinality => (100, 10),
                };
                assert_eq!(s.red.len(), rn);
                assert_eq!(s.green.len(), gn);
                assert_eq!(s.data.len(), 1000 + rn + gn);
                assert_eq!(s.data.num_outliers(), rn + gn);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = axiom_scenario(InlierShape::Cross, Axiom::Isolation, 500, 3);
        let b = axiom_scenario(InlierShape::Cross, Axiom::Isolation, 500, 3);
        assert_eq!(a.data.points, b.data.points);
        let c = axiom_scenario(InlierShape::Cross, Axiom::Isolation, 500, 4);
        assert_ne!(a.data.points, c.data.points);
    }

    #[test]
    fn green_is_farther_under_isolation() {
        let s = axiom_scenario(InlierShape::Gaussian, Axiom::Isolation, 2000, 1);
        let dist_to_center = |ids: &[u32]| -> f64 {
            ids.iter()
                .map(|&i| {
                    let p = &s.data.points[i as usize];
                    ((p[0] - 50.0).powi(2) + (p[1] - 70.0).powi(2)).sqrt()
                })
                .sum::<f64>()
                / ids.len() as f64
        };
        assert!(dist_to_center(&s.green) > dist_to_center(&s.red) + 10.0);
    }

    #[test]
    fn bridges_symmetric_under_cardinality() {
        let s = axiom_scenario(InlierShape::Arc, Axiom::Cardinality, 2000, 1);
        let center_x = |ids: &[u32]| -> f64 {
            ids.iter()
                .map(|&i| s.data.points[i as usize][0])
                .sum::<f64>()
                / ids.len() as f64
        };
        // Mirrored placement about x = 50.
        assert!((center_x(&s.red) + center_x(&s.green) - 100.0).abs() < 1.0);
        assert_eq!(s.red.len(), 100);
        assert_eq!(s.green.len(), 10);
    }

    #[test]
    fn microclusters_are_tight_and_separated() {
        for shape in InlierShape::ALL {
            let s = axiom_scenario(shape, Axiom::Isolation, 3000, 5);
            // Tight: every red member within 3 of the red centroid.
            let cx: f64 = s
                .red
                .iter()
                .map(|&i| s.data.points[i as usize][0])
                .sum::<f64>()
                / 10.0;
            let cy: f64 = s
                .red
                .iter()
                .map(|&i| s.data.points[i as usize][1])
                .sum::<f64>()
                / 10.0;
            for &i in &s.red {
                let p = &s.data.points[i as usize];
                let d = ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt();
                assert!(d < 3.0, "{:?} spread too wide ({d})", shape);
            }
            // Separated: no inlier within 5 of the red centroid.
            for (i, p) in s.data.points.iter().enumerate() {
                if !s.data.labels[i] {
                    let d = ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt();
                    assert!(d > 5.0, "inlier {i} too close to red mc ({d})");
                }
            }
        }
    }
}
