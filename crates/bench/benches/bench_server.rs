//! Loopback throughput of the HTTP scoring service on the http-10k
//! workload: scored events/sec for `POST /score` with and without
//! concurrent refits swapping the served model mid-run.
//!
//! The interesting delta is the HTTP tax on the serving hot path: the
//! same workload scores ≈ 700k events/sec through direct
//! `StreamDetector::ingest` calls (`bench_stream`), and whatever the
//! wire costs (parsing 500 NDJSON vectors per request, one socket
//! round-trip per batch, formatting 500 score objects back) shows up
//! as the gap to that number. The concurrent-refit mode adds a thread
//! hammering `POST /admin/refit` (each one a synchronous 2k-point fit
//! plus atomic swap), so the reported number honestly includes the
//! cost of staying fresh, exactly like `bench_stream`'s second mode.
//!
//! Besides the criterion timings, a fixed headline run per mode prints
//! `events/sec` summary lines and appends machine-readable results to
//! `BENCH_server.json` at the workspace root, so the perf trajectory
//! accumulates across sessions. A third mode repeats `score_only` with
//! per-request tracing enabled (span collection on, tail-sampling
//! threshold unreachable) to keep the tracing tax honest — it must
//! stay within run-to-run noise of the untraced number.

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_core::McCatch;
use mccatch_data::http;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_obs::{Histogram, HistogramSnapshot};
use mccatch_server::client::Connection;
use mccatch_server::{ndjson, serve, ServerConfig, ServerHandle};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WINDOW: usize = 2_000;
const BATCH_LINES: usize = 500;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 150;

type Detector = StreamDetector<Vec<f64>, Euclidean, KdTreeBuilder>;

/// Boots a server over an http-10k detector (2k-window seed) and
/// returns the handle, the shared detector, and the held-out events.
/// `traced` turns on per-request span collection with an unreachable
/// tail-sampling threshold, so the bench pays the full collection cost
/// while the ring stays near-empty — the honest "tracing enabled"
/// number.
fn boot(traced: bool) -> (ServerHandle, Arc<Detector>, Vec<Vec<f64>>) {
    let data = http(10_000, 1);
    let seed: Vec<Vec<f64>> = data.points[..WINDOW].to_vec();
    let events: Vec<Vec<f64>> = data.points[WINDOW..].to_vec();
    let detector = Arc::new(
        StreamDetector::new(
            StreamConfig {
                capacity: WINDOW,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            McCatch::builder().build().expect("defaults are valid"),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .expect("valid streaming config"),
    );
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: CLIENTS + 1,
            queue: 64,
            trace_slow_ms: traced.then_some(600_000),
            ..ServerConfig::default()
        },
        Arc::clone(&detector),
        ndjson::vector_parser(Some(3)),
        "kd",
    )
    .expect("ephemeral bind");
    (server, detector, events)
}

/// Pre-renders the held-out events into NDJSON request bodies of
/// `BATCH_LINES` lines each, so the measured loop spends its time on
/// the wire and the server, not on client-side formatting.
fn bodies(events: &[Vec<f64>]) -> Vec<String> {
    events
        .chunks(BATCH_LINES)
        .filter(|c| c.len() == BATCH_LINES)
        .map(|chunk| {
            let mut body = String::with_capacity(BATCH_LINES * 32);
            for p in chunk {
                body.push('[');
                for (i, v) in p.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!("{v}"));
                }
                body.push_str("]\n");
            }
            body
        })
        .collect()
}

/// One headline measurement: `CLIENTS` keep-alive connections hammer
/// `/score`; optionally a refitter thread swaps the model under them.
/// Every request's client-side wall time lands in a shared lock-free
/// latency histogram. Returns (events scored, elapsed, refits
/// completed, per-request latency).
fn hammer(
    addr: SocketAddr,
    detector: &Arc<Detector>,
    bodies: &Arc<Vec<String>>,
    concurrent_refits: bool,
) -> (u64, Duration, u64, HistogramSnapshot) {
    let refits_before = detector.stats().refits_completed;
    let stop_refitter = Arc::new(AtomicBool::new(false));
    let refitter = concurrent_refits.then(|| {
        let stop = Arc::clone(&stop_refitter);
        std::thread::spawn(move || {
            let mut conn = Connection::open(addr).expect("refitter connect");
            while !stop.load(Ordering::Acquire) {
                let resp = conn
                    .request("POST", "/admin/refit", b"")
                    .expect("refit request");
                assert_eq!(resp.status, 200, "refit failed mid-bench");
            }
        })
    });

    let latency = Arc::new(Histogram::new());
    let t0 = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bodies = Arc::clone(bodies);
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || {
                let mut conn = Connection::open(addr).expect("client connect");
                let mut scored = 0u64;
                for r in 0..REQUESTS_PER_CLIENT {
                    let body = &bodies[(c + r) % bodies.len()];
                    let sent = Instant::now();
                    let resp = conn
                        .request("POST", "/score", body.as_bytes())
                        .expect("score request");
                    latency.record(sent.elapsed());
                    assert_eq!(resp.status, 200);
                    scored += resp
                        .text()
                        .expect("utf-8 body")
                        .lines()
                        .filter(|l| l.starts_with("{\"score\""))
                        .count() as u64;
                }
                scored
            })
        })
        .collect();
    let scored: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    let elapsed = t0.elapsed();
    stop_refitter.store(true, Ordering::Release);
    if let Some(r) = refitter {
        r.join().expect("refitter");
    }
    let refits = detector.stats().refits_completed - refits_before;
    (scored, elapsed, refits, latency.snapshot())
}

/// Appends the headline numbers to `BENCH_server.json` at the
/// workspace root (created if missing), one self-contained JSON object
/// per run so downstream tooling can track the trajectory.
fn emit_json(
    score_only: (u64, Duration, HistogramSnapshot),
    with_refit: (u64, Duration, u64, HistogramSnapshot),
    traced: (u64, Duration, HistogramSnapshot),
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    let (so_events, so_time, so_lat) = score_only;
    let (wr_events, wr_time, wr_refits, wr_lat) = with_refit;
    let (tr_events, tr_time, tr_lat) = traced;
    let lat_ms = |h: &HistogramSnapshot| {
        format!(
            "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}",
            h.quantile(0.50) * 1e3,
            h.quantile(0.99) * 1e3,
            h.max_seconds() * 1e3,
        )
    };
    let json = format!(
        "{{\"bench\": \"server_loopback\", \"workload\": \"http-10k\", \
         \"window\": {WINDOW}, \"batch_lines\": {BATCH_LINES}, \"clients\": {CLIENTS}, \
         \"score_only\": {{\"events\": {so_events}, \"secs\": {:.4}, \"events_per_sec\": {:.0}, {}}}, \
         \"with_concurrent_refit\": {{\"events\": {wr_events}, \"secs\": {:.4}, \
         \"events_per_sec\": {:.0}, \"refits_completed\": {wr_refits}, {}}}, \
         \"score_only_traced\": {{\"events\": {tr_events}, \"secs\": {:.4}, \
         \"events_per_sec\": {:.0}, {}}}}}\n",
        so_time.as_secs_f64(),
        so_events as f64 / so_time.as_secs_f64().max(1e-9),
        lat_ms(&so_lat),
        wr_time.as_secs_f64(),
        wr_events as f64 / wr_time.as_secs_f64().max(1e-9),
        lat_ms(&wr_lat),
        tr_time.as_secs_f64(),
        tr_events as f64 / tr_time.as_secs_f64().max(1e-9),
        lat_ms(&tr_lat),
    );
    // Append, never truncate: the file is the accumulating perf
    // trajectory across sessions, one JSON object per line.
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, json.as_bytes()));
    match appended {
        Ok(()) => println!("server_http10k: appended to {path}"),
        Err(e) => eprintln!("server_http10k: could not write {path}: {e}"),
    }
}

fn bench_server_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_http10k");
    group.sample_size(10);

    // Criterion timing: one keep-alive request of BATCH_LINES vectors.
    let (server, _detector, events) = boot(false);
    let addr = server.local_addr();
    let request_bodies = bodies(&events);
    let mut conn = Connection::open(addr).expect("bench connect");
    let mut cursor = 0usize;
    group.bench_function("score_500_vectors_one_request", |b| {
        b.iter(|| {
            let body = &request_bodies[cursor % request_bodies.len()];
            let resp = conn
                .request("POST", "/score", body.as_bytes())
                .expect("score request");
            assert_eq!(resp.status, 200);
            cursor += 1;
        })
    });
    drop(conn);
    server.shutdown();
    group.finish();

    // Headline numbers: CLIENTS threads × REQUESTS_PER_CLIENT batches,
    // with and without a refitter swapping the 2k-point model under
    // the scorers.
    let mut headline = Vec::new();
    // The traced mode runs LAST: configuring the process-global sampler
    // cannot be undone for this process, so the untraced modes must
    // finish before it boots.
    for (name, concurrent, traced) in [
        ("score_only", false, false),
        ("score_with_concurrent_refit", true, false),
        ("score_only_traced", false, true),
    ] {
        let (server, detector, events) = boot(traced);
        let bodies = Arc::new(bodies(&events));
        let (scored, elapsed, refits, latency) =
            hammer(server.local_addr(), &detector, &bodies, concurrent);
        println!(
            "server_http10k/{name}: {scored} events in {elapsed:.2?} = {:.0} events/sec \
             ({:.0} requests/sec, p50 {:.2}ms p99 {:.2}ms, refits completed {refits}, \
             generation {})",
            scored as f64 / elapsed.as_secs_f64().max(1e-9),
            (CLIENTS * REQUESTS_PER_CLIENT) as f64 / elapsed.as_secs_f64().max(1e-9),
            latency.quantile(0.50) * 1e3,
            latency.quantile(0.99) * 1e3,
            detector.generation(),
        );
        headline.push((scored, elapsed, refits, latency));
        server.shutdown();
    }
    emit_json(
        (headline[0].0, headline[0].1, headline[0].3),
        (headline[1].0, headline[1].1, headline[1].2, headline[1].3),
        (headline[2].0, headline[2].1, headline[2].3),
    );
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
