//! Throughput of the streaming subsystem on the http-10k workload:
//! events/sec for per-event scoring alone vs. scoring while the
//! background worker concurrently refits on the sliding window.
//!
//! The interesting number is the *cost of staying fresh*: ingest scoring
//! is lock-free on a model snapshot, so a concurrent refit should tax
//! throughput only by the swap itself and by competing for cores —
//! never by blocking the scorer. Both modes run the same event
//! sequence (the second 8k connections of the HTTP analogue, cycled)
//! over a 2k-event sliding window seeded with the first 2k connections.
//!
//! Besides the criterion timings (one iteration = 1 000 ingested
//! events), the bench prints explicit `events/sec` summary lines for a
//! fixed one-pass run of each mode, so the headline number lands in the
//! log without arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_core::McCatch;
use mccatch_data::http;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use std::hint::black_box;
use std::time::Instant;

const WINDOW: usize = 2_000;
const EVENTS_PER_ITER: usize = 1_000;

fn stream_over(
    policy: RefitPolicy,
) -> (
    StreamDetector<Vec<f64>, Euclidean, KdTreeBuilder>,
    Vec<Vec<f64>>,
) {
    let data = http(10_000, 1);
    let seed: Vec<Vec<f64>> = data.points[..WINDOW].to_vec();
    let events: Vec<Vec<f64>> = data.points[WINDOW..].to_vec();
    let stream = StreamDetector::new(
        StreamConfig {
            capacity: WINDOW,
            policy,
            ..StreamConfig::default()
        },
        McCatch::builder().build().expect("defaults are valid"),
        Euclidean,
        KdTreeBuilder::default(),
        seed,
    )
    .expect("valid streaming config");
    (stream, events)
}

fn bench_stream_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_http10k");
    group.sample_size(10);

    // Scoring only: the model never changes (Manual policy, no refits).
    let (stream, events) = stream_over(RefitPolicy::Manual);
    let mut cursor = 0usize;
    group.bench_function("score_only_1k_events", |b| {
        b.iter(|| {
            for _ in 0..EVENTS_PER_ITER {
                let e = stream.ingest(black_box(events[cursor % events.len()].clone()));
                black_box(e.score);
                cursor += 1;
            }
        })
    });
    drop(stream);

    // Scoring with the background worker refitting the 2k-point window
    // concurrently (triggered every 500 events; excess triggers
    // coalesce).
    let (stream, events) = stream_over(RefitPolicy::EveryN(500));
    let mut cursor = 0usize;
    group.bench_function("score_with_concurrent_refit_1k_events", |b| {
        b.iter(|| {
            for _ in 0..EVENTS_PER_ITER {
                let e = stream.ingest(black_box(events[cursor % events.len()].clone()));
                black_box(e.score);
                cursor += 1;
            }
        })
    });
    let refit_stats = stream.stats();
    drop(stream);
    group.finish();

    // Headline numbers: a fixed multi-pass run over the 8k held-out
    // events per mode (cycled, so the run is long enough for several
    // 2k-point refits to complete and swap in mid-measurement),
    // reported as events/sec.
    const PASSES: usize = 8;
    for (name, policy) in [
        ("score_only", RefitPolicy::Manual),
        ("score_with_concurrent_refit", RefitPolicy::EveryN(500)),
    ] {
        let (stream, events) = stream_over(policy);
        let total = events.len() * PASSES;
        let t0 = Instant::now();
        for _ in 0..PASSES {
            for e in &events {
                black_box(stream.ingest(black_box(e.clone())).score);
            }
        }
        let elapsed = t0.elapsed();
        let stats = stream.stats();
        println!(
            "stream_http10k/{name}: {total} events in {elapsed:.2?} = {:.0} events/sec \
             (refits completed {}, coalesced {}, generation {})",
            total as f64 / elapsed.as_secs_f64().max(1e-9),
            stats.refits_completed,
            stats.refits_coalesced,
            stats.generation,
        );
        drop(stream);
    }
    println!(
        "stream_http10k: criterion mode saw {} completed refits over its timed iterations",
        refit_stats.refits_completed
    );
}

criterion_group!(benches, bench_stream_throughput);
criterion_main!(benches);
