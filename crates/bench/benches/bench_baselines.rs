//! Criterion benchmarks comparing detector runtimes on one workload — the
//! microbenchmark companion to Tab. VI (MCCATCH vs. the other microcluster
//! detectors, plus the classic point detectors for context).

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_baselines::{dmca, gen2out, iforest_scores, knn_out_scores, lof_scores};
use mccatch_bench::detect;
use mccatch_core::Params;
use mccatch_data::http;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let data = http(10_000, 1);
    let pts = &data.points;
    let mut group = c.benchmark_group("detectors_http10k");
    group.sample_size(10);
    group.bench_function("mccatch", |b| {
        b.iter(|| {
            detect(
                black_box(pts),
                &Euclidean,
                &KdTreeBuilder::default(),
                &Params::default(),
            )
        })
    });
    group.bench_function("gen2out", |b| {
        b.iter(|| {
            gen2out(
                black_box(pts),
                &KdTreeBuilder::default(),
                100,
                256,
                0.05,
                42,
            )
        })
    });
    group.bench_function("dmca", |b| {
        b.iter(|| dmca(black_box(pts), &KdTreeBuilder::default(), 64, 128, 0.05, 42))
    });
    group.bench_function("iforest", |b| {
        b.iter(|| iforest_scores(black_box(pts), 100, 256, 42))
    });
    group.bench_function("lof_k5", |b| {
        b.iter(|| lof_scores(black_box(pts), &Euclidean, &KdTreeBuilder::default(), 5))
    });
    group.bench_function("knn_out_k5", |b| {
        b.iter(|| knn_out_scores(black_box(pts), &Euclidean, &KdTreeBuilder::default(), 5))
    });
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
