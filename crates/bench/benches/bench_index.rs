//! Criterion microbenchmarks for the index substrate: tree construction
//! and range-count queries for the Slim-tree, kd-tree and brute force —
//! the cost drivers behind Fig. 7 and the "using-index principle" of
//! Sec. IV-G.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mccatch_data::uniform;
use mccatch_index::{BruteForce, KdTree, RangeIndex, SlimTree};
use mccatch_metric::Euclidean;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    for &n in &[1_000usize, 10_000] {
        // Owned indexes share the dataset via Arc: cloning the handle per
        // iteration is a refcount bump, so the build cost dominates.
        let pts: std::sync::Arc<[Vec<f64>]> = uniform(n, 2, 1).into();
        group.bench_with_input(BenchmarkId::new("slim", n), &pts, |b, pts| {
            b.iter(|| {
                SlimTree::build(
                    black_box(pts.clone()),
                    (0..pts.len() as u32).collect(),
                    Euclidean,
                    32,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("kd", n), &pts, |b, pts| {
            b.iter(|| KdTree::build(black_box(pts.clone()), (0..pts.len() as u32).collect(), 16))
        });
    }
    group.finish();
}

fn bench_range_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_count_r1pct");
    for &n in &[1_000usize, 10_000] {
        let pts = uniform(n, 2, 1);
        let ids: Vec<u32> = (0..n as u32).collect();
        let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, 32);
        let kd = KdTree::build(pts.clone(), ids.clone(), 16);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        let r = 1.0; // 1% of the 100-wide domain
        group.bench_with_input(BenchmarkId::new("slim", n), &slim, |b, t| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in pts.iter().step_by(37) {
                    acc += t.range_count(black_box(q), r);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("kd", n), &kd, |b, t| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in pts.iter().step_by(37) {
                    acc += t.range_count(black_box(q), r);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &brute, |b, t| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in pts.iter().step_by(37) {
                    acc += t.range_count(black_box(q), r);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn10");
    let n = 10_000usize;
    let pts = uniform(n, 2, 1);
    let ids: Vec<u32> = (0..n as u32).collect();
    let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, 32);
    let kd = KdTree::build(pts.clone(), ids, 16);
    group.bench_function("slim", |b| b.iter(|| slim.knn(black_box(&pts[123]), 10)));
    group.bench_function("kd", |b| b.iter(|| kd.knn(black_box(&pts[123]), 10)));
    group.finish();
}

criterion_group!(benches, bench_build, bench_range_count, bench_knn);
criterion_main!(benches);
