//! Aggregate loopback throughput of multi-tenant serving on the
//! http-10k workload: scored events/sec for `POST /t/{tenant}/score`
//! with the same total request budget spread across 1, 4, and 16
//! tenants (one keep-alive client per tenant).
//!
//! The interesting number is the scaling ratio. Every tenant owns an
//! independent shard set behind one shared listener and worker pool,
//! so no lock is shared across tenants on the scoring hot path: the
//! 4-tenant aggregate should approach 4 concurrent single-tenant
//! streams on a multi-core host, and degrade gracefully — not
//! collapse — at 16. On a single-core container the clients contend
//! for the one CPU and the honest expectation is a ratio near 1.
//!
//! Besides the criterion timing, a fixed headline run per tenant count
//! prints `events/sec` summary lines and appends machine-readable
//! results to `BENCH_tenant.json` at the workspace root, so the perf
//! trajectory accumulates across sessions.

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_core::McCatch;
use mccatch_data::http;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_server::client::Connection;
use mccatch_server::{ndjson, serve_tenants, ServerConfig, ServerHandle};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch_tenant::{boot_tenant_name, TenantMap, TenantSpec};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WINDOW: usize = 1_000;
const BATCH_LINES: usize = 250;
/// Total `/t/{tenant}/score` requests per headline run, split evenly
/// across the tenants so every configuration scores the same number of
/// events and the aggregate rates are directly comparable.
const TOTAL_REQUESTS: usize = 240;
const TENANT_COUNTS: [usize; 3] = [1, 4, 16];

/// Boots a tenant-serving server with `n` identically seeded
/// single-shard tenants (plus the mandatory default detector) and
/// returns the handle and the held-out events.
fn boot(n: usize) -> (ServerHandle, Vec<Vec<f64>>) {
    let data = http(10_000, 1);
    let seed: Vec<Vec<f64>> = data.points[..WINDOW].to_vec();
    let events: Vec<Vec<f64>> = data.points[WINDOW..].to_vec();
    let stream = StreamConfig {
        capacity: WINDOW,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    };
    let detector = Arc::new(
        StreamDetector::new(
            stream.clone(),
            McCatch::builder().build().expect("defaults are valid"),
            Euclidean,
            KdTreeBuilder::default(),
            seed.clone(),
        )
        .expect("valid streaming config"),
    );
    let tenants = TenantMap::new(
        McCatch::builder().build().expect("defaults are valid"),
        Euclidean,
        KdTreeBuilder::default(),
        TenantSpec {
            shards: 1,
            stream,
            ..TenantSpec::default()
        },
    )
    .expect("valid tenant spec");
    for i in 0..n {
        tenants
            .create_seeded(&boot_tenant_name(i), seed.clone())
            .expect("tenant create");
    }
    let server = serve_tenants(
        "127.0.0.1:0",
        ServerConfig {
            workers: n + 1,
            queue: 64,
            ..ServerConfig::default()
        },
        detector,
        ndjson::vector_parser(Some(3)),
        "kd",
        Arc::new(tenants),
    )
    .expect("ephemeral bind");
    (server, events)
}

/// Pre-renders the held-out events into NDJSON bodies of `BATCH_LINES`
/// lines each, so the measured loop spends its time on the wire and
/// the server, not on client-side formatting.
fn bodies(events: &[Vec<f64>]) -> Vec<String> {
    events
        .chunks(BATCH_LINES)
        .filter(|c| c.len() == BATCH_LINES)
        .map(|chunk| {
            let mut body = String::with_capacity(BATCH_LINES * 32);
            for p in chunk {
                body.push('[');
                for (i, v) in p.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!("{v}"));
                }
                body.push_str("]\n");
            }
            body
        })
        .collect()
}

/// One headline measurement: one keep-alive client per tenant, the
/// total request budget split evenly. Returns (events scored, elapsed).
fn hammer(addr: SocketAddr, n: usize, bodies: &Arc<Vec<String>>) -> (u64, Duration) {
    let per_client = TOTAL_REQUESTS / n;
    let t0 = Instant::now();
    let clients: Vec<_> = (0..n)
        .map(|c| {
            let bodies = Arc::clone(bodies);
            let path = format!("/t/{}/score", boot_tenant_name(c));
            std::thread::spawn(move || {
                let mut conn = Connection::open(addr).expect("client connect");
                let mut scored = 0u64;
                for r in 0..per_client {
                    let body = &bodies[(c + r) % bodies.len()];
                    let resp = conn
                        .request("POST", &path, body.as_bytes())
                        .expect("score request");
                    assert_eq!(resp.status, 200);
                    scored += resp
                        .text()
                        .expect("utf-8 body")
                        .lines()
                        .filter(|l| l.starts_with("{\"score\""))
                        .count() as u64;
                }
                scored
            })
        })
        .collect();
    let scored: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    (scored, t0.elapsed())
}

/// Appends the headline numbers to `BENCH_tenant.json` at the
/// workspace root (created if missing), one self-contained JSON object
/// per run so downstream tooling can track the trajectory.
fn emit_json(headline: &[(usize, u64, Duration)]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenant.json");
    let runs: Vec<String> = headline
        .iter()
        .map(|(n, events, time)| {
            format!(
                "{{\"tenants\": {n}, \"events\": {events}, \"secs\": {:.4}, \
                 \"events_per_sec\": {:.0}}}",
                time.as_secs_f64(),
                *events as f64 / time.as_secs_f64().max(1e-9),
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\": \"tenant_loopback\", \"workload\": \"http-10k\", \
         \"window\": {WINDOW}, \"batch_lines\": {BATCH_LINES}, \
         \"total_requests\": {TOTAL_REQUESTS}, \"cores\": {}, \"runs\": [{}]}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        runs.join(", "),
    );
    // Append, never truncate: the file is the accumulating perf
    // trajectory across sessions, one JSON object per line.
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, json.as_bytes()));
    match appended {
        Ok(()) => println!("tenant_http10k: appended to {path}"),
        Err(e) => eprintln!("tenant_http10k: could not write {path}: {e}"),
    }
}

fn bench_tenant_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("tenant_http10k");
    group.sample_size(10);

    // Criterion timing: one keep-alive request against one tenant.
    let (server, events) = boot(1);
    let addr = server.local_addr();
    let request_bodies = bodies(&events);
    let mut conn = Connection::open(addr).expect("bench connect");
    let mut cursor = 0usize;
    group.bench_function("score_250_vectors_one_tenant", |b| {
        b.iter(|| {
            let body = &request_bodies[cursor % request_bodies.len()];
            let resp = conn
                .request("POST", "/t/a/score", body.as_bytes())
                .expect("score request");
            assert_eq!(resp.status, 200);
            cursor += 1;
        })
    });
    drop(conn);
    server.shutdown();
    group.finish();

    // Headline numbers: the same request budget across 1/4/16 tenants.
    let mut headline = Vec::new();
    for n in TENANT_COUNTS {
        let (server, events) = boot(n);
        let bodies = Arc::new(bodies(&events));
        let (scored, elapsed) = hammer(server.local_addr(), n, &bodies);
        println!(
            "tenant_http10k/{n}_tenants: {scored} events in {elapsed:.2?} = {:.0} events/sec \
             aggregate ({:.0} requests/sec)",
            scored as f64 / elapsed.as_secs_f64().max(1e-9),
            TOTAL_REQUESTS as f64 / elapsed.as_secs_f64().max(1e-9),
        );
        headline.push((n, scored, elapsed));
        server.shutdown();
    }
    emit_json(&headline);
}

criterion_group!(benches, bench_tenant_throughput);
criterion_main!(benches);
