//! Snapshot codec cost on the http-10k model, across all four index
//! backends: how long a save takes, how many bytes it produces, and how
//! long a verified load (header + points + full refit + bit-compare
//! against the stored witness) takes to rebuild a serving model.
//!
//! Save is pure serialization — microseconds, dominated by the point
//! payload. Load deliberately re-fits (that is the determinism
//! verification), so its cost tracks the backend's fit cost; the
//! interesting comparison is load-vs-fit overhead, which should be
//! serialization noise.
//!
//! Besides the criterion timings, a fixed headline run per backend
//! prints save/load summary lines and appends machine-readable results
//! to `BENCH_persist.json` at the workspace root, so the perf
//! trajectory accumulates across sessions. A tenant-restore headline
//! (two tenants × two shards, snapshot set + manifest + replay logs →
//! `TenantMap::restore_tenants`) rides along as its own JSON row.

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_core::{McCatch, Model};
use mccatch_data::http;
use mccatch_index::{
    BruteForceBuilder, IndexBuilder, KdTreeBuilder, SlimTreeBuilder, VpTreeBuilder,
};
use mccatch_metric::{Euclidean, Metric};
use mccatch_persist::{load_model, save_model, FsyncPolicy};
use mccatch_stream::{RefitPolicy, StreamConfig};
use mccatch_tenant::{ReplaySpec, TenantMap, TenantSpec};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 10_000;

fn points() -> Vec<Vec<f64>> {
    http(N, 1).points
}

/// Fits the http-10k model on one backend and erases it for the codec.
fn fitted<B>(builder: B) -> Arc<dyn Model<Vec<f64>>>
where
    B: IndexBuilder<Vec<f64>, Euclidean> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    McCatch::builder()
        .build()
        .expect("defaults are valid")
        .fit(points(), Euclidean, builder)
        .expect("http-10k fits")
        .into_model()
}

/// One headline save + verified load, wall-clock timed.
fn headline<M, B>(model: &dyn Model<Vec<f64>>, metric: M, builder: B) -> (Duration, Duration, u64)
where
    M: Metric<Vec<f64>> + 'static,
    B: IndexBuilder<Vec<f64>, M> + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    // Warm the model's lazily-computed stats (outlier/microcluster
    // counts) so the save number measures serialization, not the first
    // detection pass.
    let _ = black_box(model.stats());
    let t0 = Instant::now();
    let mut buf = Vec::new();
    let bytes = save_model(model, 0, N as u64, &mut buf).expect("exportable model");
    let save = t0.elapsed();
    let t0 = Instant::now();
    let loaded = load_model(buf.as_slice(), metric, builder).expect("verified load");
    let load = t0.elapsed();
    assert_eq!(loaded.fitted.stats().num_points, N);
    (save, load, bytes)
}

/// Appends one self-contained JSON line to `BENCH_persist.json` at the
/// workspace root (created if missing), so downstream tooling can track
/// the trajectory.
fn append_json_line(json: String) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, json.as_bytes()));
    match appended {
        Ok(()) => println!("persist_http10k: appended to {path}"),
        Err(e) => eprintln!("persist_http10k: could not write {path}: {e}"),
    }
}

/// Appends the headline codec numbers, one object per run.
fn emit_json(rows: &[(&str, Duration, Duration, u64)]) {
    let backends: Vec<String> = rows
        .iter()
        .map(|(name, save, load, bytes)| {
            format!(
                "\"{name}\": {{\"save_ms\": {:.3}, \"load_ms\": {:.1}, \"bytes\": {bytes}}}",
                save.as_secs_f64() * 1e3,
                load.as_secs_f64() * 1e3,
            )
        })
        .collect();
    append_json_line(format!(
        "{{\"bench\": \"persist_codec\", \"workload\": \"http-10k\", \"points\": {N}, {}}}\n",
        backends.join(", ")
    ));
}

/// Headline tenant restore: two tenants × two kd shards on http-10k,
/// snapshotted (per-shard files + manifest + replay-log rotation) and
/// rebuilt through `TenantMap::restore_tenants` — the boot-time warm
/// restart of a whole fleet, wall-clock timed.
fn tenant_restore_headline() {
    const TENANTS: usize = 2;
    const SHARDS: usize = 2;
    let dir = std::env::temp_dir().join(format!("mccatch-bench-tenant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let snap = dir.join("model.mcsn");
    let spec = TenantSpec {
        shards: SHARDS,
        stream: StreamConfig {
            capacity: 8192,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        replay: Some(ReplaySpec {
            base: dir.join("ingest.ndjson"),
            fsync: FsyncPolicy::Never,
        }),
        ..TenantSpec::default()
    };
    let map: TenantMap<Vec<f64>, Euclidean, KdTreeBuilder> = TenantMap::new(
        McCatch::builder().build().expect("defaults are valid"),
        Euclidean,
        KdTreeBuilder::default(),
        spec.clone(),
    )
    .expect("spec is valid");
    for name in ["a", "b"].iter().take(TENANTS) {
        map.create_seeded(name, points()).expect("seeded tenant");
    }

    let t0 = Instant::now();
    let mut bytes = 0;
    for name in ["a", "b"].iter().take(TENANTS) {
        let stats = map
            .get(name)
            .expect("tenant exists")
            .save_snapshot(&snap)
            .expect("snapshot");
        bytes += stats.bytes;
    }
    let save = t0.elapsed();
    drop(map);

    let map: TenantMap<Vec<f64>, Euclidean, KdTreeBuilder> = TenantMap::new(
        McCatch::builder().build().expect("defaults are valid"),
        Euclidean,
        KdTreeBuilder::default(),
        spec,
    )
    .expect("spec is valid");
    let t0 = Instant::now();
    let restored = map.restore_tenants(&snap).expect("restore");
    let restore = t0.elapsed();
    assert_eq!(restored.len(), TENANTS);
    let replayed: u64 = restored.iter().map(|t| t.stats.replayed_events).sum();

    println!(
        "persist_http10k/tenant_restore_{TENANTS}x{SHARDS}: save {:.1} ms, restore {:.1} ms, \
         {bytes} bytes, {replayed} replayed events",
        save.as_secs_f64() * 1e3,
        restore.as_secs_f64() * 1e3,
    );
    append_json_line(format!(
        "{{\"bench\": \"persist_tenant_restore\", \"workload\": \"http-10k\", \
         \"tenants\": {TENANTS}, \"shards\": {SHARDS}, \"save_ms\": {:.1}, \
         \"restore_ms\": {:.1}, \"bytes\": {bytes}, \"replayed_events\": {replayed}}}\n",
        save.as_secs_f64() * 1e3,
        restore.as_secs_f64() * 1e3,
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_persist_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_http10k");
    group.sample_size(10);

    // Criterion loops: save on every backend (serialization only, the
    // backend affects just the name in the header), verified load on
    // the kd fast path (the other backends' loads are dominated by
    // their fit cost — see the headline rows).
    let kd_model = fitted(KdTreeBuilder::default());
    group.bench_function("save_kd", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(256 * 1024);
            save_model(black_box(kd_model.as_ref()), 0, N as u64, &mut buf).unwrap();
            black_box(buf)
        })
    });
    let mut snapshot = Vec::new();
    save_model(kd_model.as_ref(), 0, N as u64, &mut snapshot).unwrap();
    group.bench_function("load_verified_kd", |b| {
        b.iter(|| {
            black_box(
                load_model::<Vec<f64>, _, _, _>(
                    snapshot.as_slice(),
                    Euclidean,
                    KdTreeBuilder::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();

    // Headline: one timed save + verified load per backend.
    let mut rows = Vec::new();
    let (save, load, bytes) = headline(kd_model.as_ref(), Euclidean, KdTreeBuilder::default());
    rows.push(("kd", save, load, bytes));
    let model = fitted(VpTreeBuilder::default());
    let (save, load, bytes) = headline(model.as_ref(), Euclidean, VpTreeBuilder::default());
    rows.push(("vp", save, load, bytes));
    let model = fitted(SlimTreeBuilder::default());
    let (save, load, bytes) = headline(model.as_ref(), Euclidean, SlimTreeBuilder::default());
    rows.push(("slim", save, load, bytes));
    let model = fitted(BruteForceBuilder);
    let (save, load, bytes) = headline(model.as_ref(), Euclidean, BruteForceBuilder);
    rows.push(("brute", save, load, bytes));
    for (name, save, load, bytes) in &rows {
        println!(
            "persist_http10k/{name}: save {:.3} ms, verified load {:.1} ms, {bytes} bytes",
            save.as_secs_f64() * 1e3,
            load.as_secs_f64() * 1e3,
        );
    }
    emit_json(&rows);
    tenant_restore_headline();
}

criterion_group!(benches, bench_persist_codec);
criterion_main!(benches);
