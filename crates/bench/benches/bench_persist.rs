//! Snapshot codec cost on the http-10k model, across all four index
//! backends: how long a save takes, how many bytes it produces, and how
//! long a verified load (header + points + full refit + bit-compare
//! against the stored witness) takes to rebuild a serving model.
//!
//! Save is pure serialization — microseconds, dominated by the point
//! payload. Load deliberately re-fits (that is the determinism
//! verification), so its cost tracks the backend's fit cost; the
//! interesting comparison is load-vs-fit overhead, which should be
//! serialization noise.
//!
//! Besides the criterion timings, a fixed headline run per backend
//! prints save/load summary lines and appends machine-readable results
//! to `BENCH_persist.json` at the workspace root, so the perf
//! trajectory accumulates across sessions.

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_core::{McCatch, Model};
use mccatch_data::http;
use mccatch_index::{
    BruteForceBuilder, IndexBuilder, KdTreeBuilder, SlimTreeBuilder, VpTreeBuilder,
};
use mccatch_metric::{Euclidean, Metric};
use mccatch_persist::{load_model, save_model};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 10_000;

fn points() -> Vec<Vec<f64>> {
    http(N, 1).points
}

/// Fits the http-10k model on one backend and erases it for the codec.
fn fitted<B>(builder: B) -> Arc<dyn Model<Vec<f64>>>
where
    B: IndexBuilder<Vec<f64>, Euclidean> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    McCatch::builder()
        .build()
        .expect("defaults are valid")
        .fit(points(), Euclidean, builder)
        .expect("http-10k fits")
        .into_model()
}

/// One headline save + verified load, wall-clock timed.
fn headline<M, B>(model: &dyn Model<Vec<f64>>, metric: M, builder: B) -> (Duration, Duration, u64)
where
    M: Metric<Vec<f64>> + 'static,
    B: IndexBuilder<Vec<f64>, M> + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    // Warm the model's lazily-computed stats (outlier/microcluster
    // counts) so the save number measures serialization, not the first
    // detection pass.
    let _ = black_box(model.stats());
    let t0 = Instant::now();
    let mut buf = Vec::new();
    let bytes = save_model(model, 0, N as u64, &mut buf).expect("exportable model");
    let save = t0.elapsed();
    let t0 = Instant::now();
    let loaded = load_model(buf.as_slice(), metric, builder).expect("verified load");
    let load = t0.elapsed();
    assert_eq!(loaded.fitted.stats().num_points, N);
    (save, load, bytes)
}

/// Appends the headline numbers to `BENCH_persist.json` at the
/// workspace root (created if missing), one self-contained JSON object
/// per run so downstream tooling can track the trajectory.
fn emit_json(rows: &[(&str, Duration, Duration, u64)]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    let backends: Vec<String> = rows
        .iter()
        .map(|(name, save, load, bytes)| {
            format!(
                "\"{name}\": {{\"save_ms\": {:.3}, \"load_ms\": {:.1}, \"bytes\": {bytes}}}",
                save.as_secs_f64() * 1e3,
                load.as_secs_f64() * 1e3,
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\": \"persist_codec\", \"workload\": \"http-10k\", \"points\": {N}, {}}}\n",
        backends.join(", ")
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, json.as_bytes()));
    match appended {
        Ok(()) => println!("persist_http10k: appended to {path}"),
        Err(e) => eprintln!("persist_http10k: could not write {path}: {e}"),
    }
}

fn bench_persist_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_http10k");
    group.sample_size(10);

    // Criterion loops: save on every backend (serialization only, the
    // backend affects just the name in the header), verified load on
    // the kd fast path (the other backends' loads are dominated by
    // their fit cost — see the headline rows).
    let kd_model = fitted(KdTreeBuilder::default());
    group.bench_function("save_kd", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(256 * 1024);
            save_model(black_box(kd_model.as_ref()), 0, N as u64, &mut buf).unwrap();
            black_box(buf)
        })
    });
    let mut snapshot = Vec::new();
    save_model(kd_model.as_ref(), 0, N as u64, &mut snapshot).unwrap();
    group.bench_function("load_verified_kd", |b| {
        b.iter(|| {
            black_box(
                load_model::<Vec<f64>, _, _, _>(
                    snapshot.as_slice(),
                    Euclidean,
                    KdTreeBuilder::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();

    // Headline: one timed save + verified load per backend.
    let mut rows = Vec::new();
    let (save, load, bytes) = headline(kd_model.as_ref(), Euclidean, KdTreeBuilder::default());
    rows.push(("kd", save, load, bytes));
    let model = fitted(VpTreeBuilder::default());
    let (save, load, bytes) = headline(model.as_ref(), Euclidean, VpTreeBuilder::default());
    rows.push(("vp", save, load, bytes));
    let model = fitted(SlimTreeBuilder::default());
    let (save, load, bytes) = headline(model.as_ref(), Euclidean, SlimTreeBuilder::default());
    rows.push(("slim", save, load, bytes));
    let model = fitted(BruteForceBuilder);
    let (save, load, bytes) = headline(model.as_ref(), Euclidean, BruteForceBuilder);
    rows.push(("brute", save, load, bytes));
    for (name, save, load, bytes) in &rows {
        println!(
            "persist_http10k/{name}: save {:.3} ms, verified load {:.1} ms, {bytes} bytes",
            save.as_secs_f64() * 1e3,
            load.as_secs_f64() * 1e3,
        );
    }
    emit_json(&rows);
}

criterion_group!(benches, bench_persist_codec);
criterion_main!(benches);
