//! Criterion benchmarks for the individual MCCATCH stages (Alg. 1's four
//! steps), isolating where time goes: counting joins, plateau extraction,
//! the MDL cutoff, and scoring. This is the ablation companion to the
//! complexity argument of Lemma 1 (counting dominates; everything else is
//! `O(n)` or less).

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_core::counts::count_neighbors;
use mccatch_core::oracle::OraclePlot;
use mccatch_core::{compute_cutoff, RadiusGrid};
use mccatch_data::http;
use mccatch_index::{IndexBuilder, KdTreeBuilder, RangeIndex};
use mccatch_metric::Euclidean;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let data = http(10_000, 1);
    let pts = &data.points;
    let builder = KdTreeBuilder::default();
    let tree = builder.build_all_ref(pts, &Euclidean);
    let grid = RadiusGrid::new(tree.diameter_estimate(), 15);
    let card = pts.len() / 10;

    let mut group = c.benchmark_group("stages_http10k");
    group.sample_size(10);
    group.bench_function("count_neighbors", |b| {
        b.iter(|| count_neighbors(&tree, black_box(pts), grid.radii(), card, 1))
    });
    let table = count_neighbors(&tree, pts, grid.radii(), card, 1);
    group.bench_function("plateaus_oracle", |b| {
        b.iter(|| OraclePlot::from_counts(black_box(&table), grid.radii(), 0.1, card))
    });
    let oracle = OraclePlot::from_counts(&table, grid.radii(), 0.1, card);
    group.bench_function("mdl_cutoff", |b| {
        b.iter(|| compute_cutoff(black_box(oracle.histogram()), grid.radii()))
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
