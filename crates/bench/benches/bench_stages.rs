//! Criterion benchmarks for the individual MCCATCH stages (Alg. 1's four
//! steps), isolating where time goes: counting joins, plateau extraction,
//! the MDL cutoff, and scoring. This is the ablation companion to the
//! complexity argument of Lemma 1 (counting dominates; everything else is
//! `O(n)` or less).
//!
//! The counting stage is benchmarked in both formulations — the historical
//! per-radius joins (`count_neighbors_per_radius`, one tree descent per
//! point per radius) and the single-traversal multi-radius join
//! (`count_neighbors`, one descent per point for all radii) — on the HTTP
//! benchmark set and on the Fig. 7 scalability workloads, so the rewrite's
//! win is measured, not asserted.

use criterion::{criterion_group, criterion_main, Criterion};
use mccatch_core::counts::{count_neighbors, count_neighbors_per_radius};
use mccatch_core::oracle::OraclePlot;
use mccatch_core::{compute_cutoff, RadiusGrid};
use mccatch_data::{http, uniform};
use mccatch_index::{IndexBuilder, KdTreeBuilder, RangeIndex, SlimTreeBuilder};
use mccatch_metric::Euclidean;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let data = http(10_000, 1);
    let pts = &data.points;
    let builder = KdTreeBuilder::default();
    let tree = builder.build_all_ref(pts, &Euclidean);
    let grid = RadiusGrid::new(tree.diameter_estimate(), 15);
    let card = pts.len() / 10;

    let mut group = c.benchmark_group("stages_http10k");
    group.sample_size(10);
    group.bench_function("count_neighbors", |b| {
        b.iter(|| count_neighbors(&tree, black_box(pts), grid.radii(), card, 1))
    });
    group.bench_function("count_neighbors_per_radius", |b| {
        b.iter(|| count_neighbors_per_radius(&tree, black_box(pts), grid.radii(), card, 1))
    });
    let table = count_neighbors(&tree, pts, grid.radii(), card, 1);
    group.bench_function("plateaus_oracle", |b| {
        b.iter(|| OraclePlot::from_counts(black_box(&table), grid.radii(), 0.1, card))
    });
    let oracle = OraclePlot::from_counts(&table, grid.radii(), 0.1, card);
    group.bench_function("mdl_cutoff", |b| {
        b.iter(|| compute_cutoff(black_box(oracle.histogram()), grid.radii()))
    });
    group.finish();
}

/// Counting stage on a Fig. 7 point (Uniform 20-d, 4k — the
/// high-dimensional sweep where the paper's scalability claims live):
/// single-traversal vs. per-radius, on both the kd-tree fast path and the
/// Slim-tree general path. The multi-radius pass must win on both here
/// (measured ~1.7x kd and ~2.1x slim, with ~3.9x fewer Slim-tree distance
/// evaluations — the same numbers the README's performance table cites);
/// on cheap low-dimensional data (the http group above) the
/// per-radius joins remain competitive because re-descending a 2–3-d
/// kd-tree was never the bottleneck.
fn bench_counting_fig7(c: &mut Criterion) {
    let pts = uniform(4_000, 20, 7);
    let card = pts.len() / 10;

    let kd = KdTreeBuilder::default().build_all_ref(&pts, &Euclidean);
    let grid = RadiusGrid::new(kd.diameter_estimate(), 15);
    let mut group = c.benchmark_group("counting_fig7_uniform20d_4k");
    group.sample_size(10);
    group.bench_function("kd_multi_radius", |b| {
        b.iter(|| count_neighbors(&kd, black_box(&pts), grid.radii(), card, 1))
    });
    group.bench_function("kd_per_radius", |b| {
        b.iter(|| count_neighbors_per_radius(&kd, black_box(&pts), grid.radii(), card, 1))
    });

    let slim = SlimTreeBuilder::default().build_all_ref(&pts, &Euclidean);
    let grid = RadiusGrid::new(slim.diameter_estimate(), 15);
    group.bench_function("slim_multi_radius", |b| {
        b.iter(|| count_neighbors(&slim, black_box(&pts), grid.radii(), card, 1))
    });
    group.bench_function("slim_per_radius", |b| {
        b.iter(|| count_neighbors_per_radius(&slim, black_box(&pts), grid.radii(), card, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_counting_fig7);
criterion_main!(benches);
