//! Criterion benchmark for the end-to-end MCCATCH pipeline across data
//! sizes and index kinds — the microbenchmark companion to Fig. 7 — plus
//! the staged-API serving path (fit once, score queries many times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mccatch_bench::detect;
use mccatch_core::{McCatch, Params};
use mccatch_data::{http, uniform};
use mccatch_index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch_metric::Euclidean;
use std::hint::black_box;

fn bench_pipeline_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mccatch_uniform2d");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000, 16_000] {
        let pts = uniform(n, 2, 1);
        group.bench_with_input(BenchmarkId::new("kd", n), &pts, |b, pts| {
            b.iter(|| {
                detect(
                    black_box(pts),
                    &Euclidean,
                    &KdTreeBuilder::default(),
                    &Params::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("slim", n), &pts, |b, pts| {
            b.iter(|| {
                detect(
                    black_box(pts),
                    &Euclidean,
                    &SlimTreeBuilder::default(),
                    &Params::default(),
                )
            })
        });
    }
    group.finish();
}

fn bench_pipeline_http(c: &mut Criterion) {
    let mut group = c.benchmark_group("mccatch_http");
    group.sample_size(10);
    let data = http(20_000, 1);
    group.bench_function("n20k", |b| {
        b.iter(|| {
            detect(
                black_box(&data.points),
                &Euclidean,
                &KdTreeBuilder::default(),
                &Params::default(),
            )
        })
    });
    group.finish();
}

/// The serving path the staged API exists for: amortize Step I across
/// requests. `fit_detect` pays tree construction per call (what the
/// legacy free function always did); `detect_refit` and `score_queries`
/// reuse one fitted handle.
fn bench_serving_path(c: &mut Criterion) {
    let pts = uniform(8_000, 2, 1);
    let queries = uniform(64, 2, 2);
    let kd = KdTreeBuilder::default();
    let detector = McCatch::builder().build().expect("valid params");

    let mut group = c.benchmark_group("mccatch_serving_8k");
    group.sample_size(10);
    // One shared Arc allocation: per-iteration fits clone the handle,
    // not the points, mirroring a service's refit path.
    let pts: std::sync::Arc<[Vec<f64>]> = pts.into();
    group.bench_function("fit_detect", |b| {
        b.iter(|| {
            detector
                .fit(black_box(pts.clone()), Euclidean, kd)
                .expect("fit")
                .detect()
        })
    });
    let fitted = detector.fit(pts.clone(), Euclidean, kd).expect("fit");
    fitted.detect(); // warm the lazy caches like a long-lived service
    group.bench_function("detect_refit_free", |b| b.iter(|| fitted.detect()));
    group.bench_function("score_64_queries", |b| {
        b.iter(|| fitted.score_points(black_box(&queries)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_sizes,
    bench_pipeline_http,
    bench_serving_path
);
criterion_main!(benches);
