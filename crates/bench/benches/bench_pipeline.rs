//! Criterion benchmark for the end-to-end MCCATCH pipeline across data
//! sizes and index kinds — the microbenchmark companion to Fig. 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mccatch_core::{mccatch, Params};
use mccatch_data::{http, uniform};
use mccatch_index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch_metric::Euclidean;
use std::hint::black_box;

fn bench_pipeline_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mccatch_uniform2d");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000, 16_000] {
        let pts = uniform(n, 2, 1);
        group.bench_with_input(BenchmarkId::new("kd", n), &pts, |b, pts| {
            b.iter(|| {
                mccatch(
                    black_box(pts),
                    &Euclidean,
                    &KdTreeBuilder::default(),
                    &Params::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("slim", n), &pts, |b, pts| {
            b.iter(|| {
                mccatch(
                    black_box(pts),
                    &Euclidean,
                    &SlimTreeBuilder::default(),
                    &Params::default(),
                )
            })
        });
    }
    group.finish();
}

fn bench_pipeline_http(c: &mut Criterion) {
    let mut group = c.benchmark_group("mccatch_http");
    group.sample_size(10);
    let data = http(20_000, 1);
    group.bench_function("n20k", |b| {
        b.iter(|| {
            mccatch(
                black_box(&data.points),
                &Euclidean,
                &KdTreeBuilder::default(),
                &Params::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_sizes, bench_pipeline_http);
criterion_main!(benches);
