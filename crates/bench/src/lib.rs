//! Shared harness machinery for the experiment binaries that regenerate
//! the paper's tables and figures (see `DESIGN.md` §5 for the experiment
//! index).
//!
//! Each binary accepts simple `--key value` arguments; the harness keeps
//! runs deterministic (fixed seeds), scales dataset sizes down by default
//! so everything finishes in minutes on a laptop, and prints plain aligned
//! text tables that mirror the paper's rows.

use mccatch_baselines as bl;
use mccatch_core::{McCatch, McCatchOutput, Params};
use mccatch_eval::auroc;
use mccatch_index::{IndexBuilder, KdTreeBuilder};
use mccatch_metric::{Euclidean, Metric};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One-shot MCCATCH through the staged builder API — the harness-wide
/// replacement for the `mccatch_core::mccatch` free function (deprecated
/// in 0.2.0, removed in 0.4.0).
/// Experiment binaries run fresh data/parameter combinations each call, so
/// configure-fit-detect is the whole lifecycle here; services should hold
/// on to the `Fitted` handle instead.
pub fn detect<P, M, B>(points: &[P], metric: &M, builder: &B, params: &Params) -> McCatchOutput
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M> + Clone,
{
    McCatch::new(params.clone())
        .expect("valid MCCATCH params")
        .fit_ref(points, metric, builder)
        .expect("fit is infallible for valid params")
        .detect()
}

/// Minimal `--key value` / `--flag` argument parser for the harness
/// binaries (kept dependency-free by design; see DESIGN.md §6).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        let mut values = BTreeMap::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match args.peek() {
                    Some(v) if !v.starts_with("--") => args.next().expect("peeked"),
                    _ => "true".to_owned(),
                };
                values.insert(key.to_owned(), val);
            }
        }
        Self { values }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Flag lookup.
    pub fn flag(&self, key: &str) -> bool {
        self.values.get(key).is_some_and(|v| v == "true")
    }
}

/// Result of evaluating one detector on one dataset.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Method name (paper's spelling).
    pub method: &'static str,
    /// AUROC of the per-point scores (0.5 = chance).
    pub auroc: f64,
    /// Average precision.
    pub ap: f64,
    /// Max-F1.
    pub max_f1: f64,
    /// Wall clock for the best configuration.
    pub runtime: Duration,
    /// Why the method produced no result (mirrors the paper's markers).
    pub skipped: Option<&'static str>,
}

impl MethodRun {
    fn skipped(method: &'static str, why: &'static str) -> Self {
        Self {
            method,
            auroc: f64::NAN,
            ap: f64::NAN,
            max_f1: f64::NAN,
            runtime: Duration::ZERO,
            skipped: Some(why),
        }
    }
}

/// The 11 competitors of Fig. 6 in the paper's column order.
pub const FIG6_METHODS: &[&str] = &[
    "ABOD", "ALOCI", "DB-Out", "D.MCA", "FastABOD", "Gen2Out", "iForest", "LOCI", "LOF", "ODIN",
    "RDA", "MCCATCH",
];

/// Runs MCCATCH (default hyperparameters, kd-tree fast path) on a vector
/// dataset and wraps the evaluation.
pub fn run_mccatch(points: &[Vec<f64>], labels: &[bool]) -> (MethodRun, McCatchOutput) {
    let t0 = Instant::now();
    let out = detect(
        points,
        &Euclidean,
        &KdTreeBuilder::default(),
        &Params::default(),
    );
    let runtime = t0.elapsed();
    let run = MethodRun {
        method: "MCCATCH",
        auroc: auroc(&out.point_scores, labels),
        ap: mccatch_eval::average_precision(&out.point_scores, labels),
        max_f1: mccatch_eval::max_f1(&out.point_scores, labels),
        runtime,
        skipped: None,
    };
    (run, out)
}

/// Runs one Fig. 6 baseline over its Tab. II hyperparameter grid and keeps
/// the best-AUROC configuration — the paper's competitors were "carefully
/// tuned following hyperparameter-setting heuristics widely adopted in
/// prior works", which for these benchmarks means selecting the grid value
/// that performs best, while MCCATCH always runs untuned defaults.
///
/// Expensive methods are skipped above size guards, mirroring the paper's
/// "excessive runtime/memory" markers for ABOD / FastABOD / LOCI / D.MCA /
/// DB-Out on large data.
pub fn run_baseline(method: &'static str, points: &[Vec<f64>], labels: &[bool]) -> MethodRun {
    let n = points.len();
    let t0 = Instant::now();
    let score_sets: Vec<Vec<f64>> = match method {
        "ABOD" => {
            // Cubic in n and linear in dim: budget the flop count like the
            // paper budgeted wall-clock ("> 10 hours" markers).
            let dim = points.first().map_or(1, Vec::len);
            if (n as u128).pow(3) * dim as u128 > 20_000_000_000u128 {
                return MethodRun::skipped(method, "excessive runtime (O(n^3))");
            }
            vec![bl::abod_scores(points)]
        }
        "FastABOD" => {
            if n > 60_000 {
                return MethodRun::skipped(method, "excessive runtime");
            }
            [2usize, 5, 10]
                .iter()
                .map(|&k| bl::fast_abod_scores(points, &KdTreeBuilder::default(), k))
                .collect()
        }
        "LOCI" => {
            if n > 6_000 {
                return MethodRun::skipped(method, "excessive runtime (O(n^2))");
            }
            let l = bl::estimate_diameter(points, &Euclidean, &KdTreeBuilder::default());
            vec![bl::loci_scores(
                points,
                &Euclidean,
                &KdTreeBuilder::default(),
                &bl::radius_grid(l),
                0.5,
                20,
            )]
        }
        "ALOCI" => [3usize, 4, 5]
            .iter()
            .map(|&levels| bl::aloci_scores(points, levels, 20))
            .collect(),
        "DB-Out" => {
            if n > 120_000 {
                return MethodRun::skipped(method, "excessive runtime");
            }
            let l = bl::estimate_diameter(points, &Euclidean, &KdTreeBuilder::default());
            bl::radius_grid(l)
                .iter()
                .map(|&r| bl::db_out_scores(points, &Euclidean, &KdTreeBuilder::default(), r))
                .collect()
        }
        "LOF" => [1usize, 5, 10]
            .iter()
            .map(|&k| bl::lof_scores(points, &Euclidean, &KdTreeBuilder::default(), k))
            .collect(),
        "ODIN" => [1usize, 5, 10]
            .iter()
            .map(|&k| bl::odin_scores(points, &Euclidean, &KdTreeBuilder::default(), k))
            .collect(),
        "iForest" => [(100usize, 256usize), (100, 1024), (32, 256)]
            .iter()
            .map(|&(t, psi)| bl::iforest_scores(points, t, psi, 42))
            .collect(),
        "Gen2Out" => {
            vec![bl::gen2out(points, &KdTreeBuilder::default(), 100, 256, 0.05, 42).point_scores]
        }
        "D.MCA" => {
            if n > 120_000 {
                return MethodRun::skipped(method, "excessive runtime");
            }
            vec![bl::dmca(points, &KdTreeBuilder::default(), 64, 128, 0.05, 42).point_scores]
        }
        "RDA" => [(1usize, 2usize), (2, 2), (4, 2)]
            .iter()
            .filter(|&&(k, _)| k <= points.first().map_or(1, Vec::len))
            .map(|&(k, rounds)| bl::rpca_scores(points, k, rounds))
            .collect(),
        other => panic!("unknown baseline {other}"),
    };
    let runtime = t0.elapsed();
    let best = score_sets
        .iter()
        .map(|s| {
            (
                auroc(s, labels),
                mccatch_eval::average_precision(s, labels),
                mccatch_eval::max_f1(s, labels),
            )
        })
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one configuration");
    MethodRun {
        method,
        auroc: best.0,
        ap: best.1,
        max_f1: best.2,
        runtime,
        skipped: None,
    }
}

/// Renders an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats an `f64` cell, blanking NaN as the paper's skip markers.
pub fn cell(v: f64) -> String {
    if v.is_nan() {
        "--".to_owned()
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults_and_flags() {
        let args = Args::default();
        assert_eq!(args.get("scale", 0.5f64), 0.5);
        assert!(!args.flag("verbose"));
    }

    #[test]
    fn baseline_and_mccatch_agree_on_a_toy() {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        pts.push(vec![90.0, 90.0]);
        let mut labels = vec![false; 100];
        labels.push(true);
        let (m, _) = run_mccatch(&pts, &labels);
        assert!(m.auroc > 0.99);
        for method in ["LOF", "iForest", "ODIN"] {
            let r = run_baseline(method, &pts, &labels);
            assert!(r.auroc > 0.9, "{method}: {}", r.auroc);
        }
    }

    #[test]
    fn abod_guard_skips_large_inputs() {
        let pts: Vec<Vec<f64>> = (0..5000).map(|i| vec![i as f64, 0.0]).collect();
        let labels = vec![false; 5000];
        let r = run_baseline("ABOD", &pts, &labels);
        assert!(r.skipped.is_some());
    }
}
