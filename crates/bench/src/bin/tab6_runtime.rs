//! Regenerates **Tab. VI** (runtime of the microcluster detectors):
//! wall-clock of MCCATCH versus Gen2Out versus D.MCA on the large axiom
//! scenarios and on the HTTP / Satellite / Speech analogues.
//!
//! The paper ran ~1M-point axiom sets (MCCATCH 12 min vs Gen2Out 2 h vs
//! D.MCA > 10 h on a stock desktop). Defaults here are scaled for quick
//! runs; pass `--axiom-n 1000000 --full` to match the paper's sizes.

use mccatch_baselines::{dmca, gen2out};
use mccatch_bench::{print_table, Args};
use mccatch_core::McCatch;
use mccatch_data::{axiom_scenario, benchmark_by_name, Axiom, InlierShape};
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use std::time::{Duration, Instant};

fn time_all(name: &str, points: &[Vec<f64>], dmca_cap: usize) -> Vec<String> {
    let t0 = Instant::now();
    // MCCATCH runs through the erased serving handle, the same code path
    // a long-lived service would hold on to.
    let model = McCatch::builder()
        .build()
        .expect("valid params")
        .fit(points.to_vec(), Euclidean, KdTreeBuilder::default())
        .expect("fit")
        .into_model();
    let out = model.detect_output();
    let t_mccatch = t0.elapsed();
    let t0 = Instant::now();
    let _ = gen2out(points, &KdTreeBuilder::default(), 100, 256, 0.05, 42);
    let t_gen2out = t0.elapsed();
    let t_dmca = if points.len() <= dmca_cap {
        let t0 = Instant::now();
        let _ = dmca(points, &KdTreeBuilder::default(), 64, 128, 0.05, 42);
        Some(t0.elapsed())
    } else {
        None
    };
    vec![
        format!("{name} (n={})", points.len()),
        fmt(t_dmca.unwrap_or(Duration::MAX)),
        fmt(t_gen2out),
        fmt(t_mccatch),
        out.microclusters.len().to_string(),
    ]
}

fn fmt(d: Duration) -> String {
    if d == Duration::MAX {
        "skipped".to_owned()
    } else if d.as_secs() >= 60 {
        format!("{:.1}min", d.as_secs_f64() / 60.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

fn main() {
    let args = Args::parse();
    let axiom_n: usize = args.get("axiom-n", 100_000);
    let full = args.flag("full");
    let dmca_cap: usize = args.get("dmca-cap", 300_000);

    println!("Tab. VI — runtime of the microcluster detectors");
    println!();
    let mut rows = Vec::new();

    let iso = axiom_scenario(InlierShape::Gaussian, Axiom::Isolation, axiom_n, 1);
    rows.push(time_all(
        "Gauss. (Isolation Ax.)",
        &iso.data.points,
        dmca_cap,
    ));
    let card = axiom_scenario(InlierShape::Cross, Axiom::Cardinality, axiom_n, 1);
    rows.push(time_all(
        "Cross (Cardinality Ax.)",
        &card.data.points,
        dmca_cap,
    ));

    for name in ["Http", "Satellite", "Speech"] {
        let spec = benchmark_by_name(name).expect("preset");
        let scale = if full {
            1.0
        } else {
            (50_000.0 / spec.n as f64).min(1.0)
        };
        let data = spec.generate_scaled(scale, 1);
        rows.push(time_all(name, &data.points, dmca_cap));
    }

    print_table(
        &["dataset", "D.MCA", "Gen2Out", "MCCATCH", "mccatch #mcs"],
        &rows,
    );
    println!();
    println!("paper Tab. VI (1M axiom sets, full HTTP): D.MCA >10h, Gen2Out 2h, MCCATCH 12min;");
    println!(
        "HTTP 222K: D.MCA 6min, Gen2Out 18min, MCCATCH 4min — MCCATCH fastest in nearly all cases."
    );
}
