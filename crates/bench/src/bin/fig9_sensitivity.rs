//! Regenerates **Fig. 9** (hyperparameter sensitivity): AUROC as each of
//! the three hyperparameters moves around its default —
//! `a ∈ {13..17}`, `b ∈ {0.08..0.12}`, `c ∈ {⌈0.08n⌉..⌈0.12n⌉}` — on the
//! labeled dataset analogues. The paper's point: all lines are near flat
//! ("accuracy has a smooth plateau"), so MCCATCH needs no tuning.
//!
//! Options: `--cap 3000` size cap per dataset, `--seed 9`.

use mccatch_bench::{detect, print_table, Args};
use mccatch_core::Params;
use mccatch_data::BENCHMARKS;
use mccatch_eval::auroc;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;

fn run(points: &[Vec<f64>], labels: &[bool], params: &Params) -> f64 {
    let out = detect(points, &Euclidean, &KdTreeBuilder::default(), params);
    auroc(&out.point_scores, labels)
}

fn main() {
    let args = Args::parse();
    let cap: usize = args.get("cap", 3000);
    let seed: u64 = args.get("seed", 9);

    println!("Fig. 9 — hyperparameter sensitivity (AUROC per setting; cap = {cap})");
    let datasets: Vec<_> = BENCHMARKS
        .iter()
        .filter(|s| s.name != "Speech") // 400-dim: heavy, identical behaviour
        .map(|s| {
            let scale = (cap as f64 / s.n as f64).min(1.0);
            (s.name, s.generate_scaled(scale, seed))
        })
        .collect();

    // Sweep a (number of radii).
    println!();
    println!("sweep a (b = 0.1, c = default):");
    let a_values = [13usize, 14, 15, 16, 17];
    let mut rows = Vec::new();
    for (name, data) in &datasets {
        let mut row = vec![name.to_string()];
        for &a in &a_values {
            let p = Params {
                num_radii: a,
                ..Params::default()
            };
            row.push(format!("{:.3}", run(&data.points, &data.labels, &p)));
        }
        rows.push(row);
    }
    print_table(&["dataset", "a=13", "a=14", "a=15", "a=16", "a=17"], &rows);

    // Sweep b (maximum plateau slope).
    println!();
    println!("sweep b (a = 15, c = default):");
    let b_values = [0.08f64, 0.09, 0.10, 0.11, 0.12];
    let mut rows = Vec::new();
    for (name, data) in &datasets {
        let mut row = vec![name.to_string()];
        for &b in &b_values {
            let p = Params {
                max_plateau_slope: b,
                ..Params::default()
            };
            row.push(format!("{:.3}", run(&data.points, &data.labels, &p)));
        }
        rows.push(row);
    }
    print_table(
        &["dataset", "b=0.08", "b=0.09", "b=0.10", "b=0.11", "b=0.12"],
        &rows,
    );

    // Sweep c (maximum microcluster cardinality).
    println!();
    println!("sweep c (a = 15, b = 0.1):");
    let c_fracs = [0.08f64, 0.09, 0.10, 0.11, 0.12];
    let mut rows = Vec::new();
    let mut worst_spread = 0.0f64;
    for (name, data) in &datasets {
        let mut row = vec![name.to_string()];
        let mut values = Vec::new();
        for &f in &c_fracs {
            let p = Params {
                max_mc_cardinality: Some(((data.len() as f64) * f).ceil() as usize),
                ..Params::default()
            };
            let v = run(&data.points, &data.labels, &p);
            values.push(v);
            row.push(format!("{v:.3}"));
        }
        let spread = values.iter().cloned().fold(f64::MIN, f64::max)
            - values.iter().cloned().fold(f64::MAX, f64::min);
        worst_spread = worst_spread.max(spread);
        rows.push(row);
    }
    print_table(
        &["dataset", "c=8%", "c=9%", "c=10%", "c=11%", "c=12%"],
        &rows,
    );
    println!();
    println!("paper Fig. 9: all lines near flat — no hyperparameter fine-tuning needed.");
    println!("(worst AUROC spread across the c sweep above: {worst_spread:.3})");
}
