//! Regenerates **Fig. 3** (the 'Oracle' plot intuition) and **Fig. 4**
//! (the MDL cutoff): builds the five-points-of-interest toy scene —
//! inlier 'A', halo point 'B', microcluster core 'C', microcluster halo
//! 'D', isolate 'E' — and dumps, in plain TSV, (i) the neighborhood count
//! curves of the points of interest, (ii) every point of the Oracle plot,
//! and (iii) the histogram of 1NN distances with the computed cutoff.
//!
//! Pipe to a file and plot with any tool:
//! `cargo run --release -p mccatch-bench --bin fig3_oracle > fig3.tsv`

use mccatch_bench::detect;
use mccatch_core::Params;
use mccatch_data::rng::{gaussian_point, rng};
use mccatch_index::{BruteForceBuilder, IndexBuilder, RangeIndex};
use mccatch_metric::Euclidean;

fn main() {
    // Toy scene (mirrors Fig. 3(i)): a 2-d Gaussian blob, a halo point, an
    // 8-point microcluster with its own halo point, and a far isolate.
    let mut r = rng(33);
    let mut points: Vec<Vec<f64>> = (0..500)
        .map(|_| {
            // truncated Gaussian blob at (30, 30)
            loop {
                let p = gaussian_point(&mut r, &[30.0, 30.0], 4.0);
                if (p[0] - 30.0).powi(2) + (p[1] - 30.0).powi(2) <= 64.0 {
                    return p;
                }
            }
        })
        .collect();
    let a_id = 0u32; // some blob inlier
    let b_id = points.len() as u32; // halo point
    points.push(vec![43.0, 30.0]);
    let c_id = points.len() as u32; // microcluster core
    for k in 0..8 {
        points.push(vec![
            70.0 + 0.15 * (k % 4) as f64,
            75.0 + 0.15 * (k / 4) as f64,
        ]);
    }
    let d_id = points.len() as u32; // microcluster halo
    points.push(vec![72.5, 75.0]);
    let e_id = points.len() as u32; // isolate
    points.push(vec![110.0, 5.0]);

    let out = detect(&points, &Euclidean, &BruteForceBuilder, &Params::default());

    println!("# Fig. 3(iii): neighborhood count curves for the points of interest");
    println!("# columns: radius_index radius count_A count_B count_C count_D count_E");
    let index = BruteForceBuilder.build_all_ref(&points, &Euclidean);
    for (k, &radius) in out.radii.iter().enumerate() {
        let c = |i: u32| index.range_count(&points[i as usize], radius);
        println!(
            "{k}\t{radius:.5}\t{}\t{}\t{}\t{}\t{}",
            c(a_id),
            c(b_id),
            c(c_id),
            c(d_id),
            c(e_id)
        );
    }

    println!();
    println!("# Fig. 3(ii): the Oracle plot (x = 1NN Distance, y = Group 1NN Distance)");
    println!("# columns: point_id x y kind");
    for (i, op) in out.oracle.points().iter().enumerate() {
        let kind = match i as u32 {
            i if i == a_id => "A-inlier",
            i if i == b_id => "B-halo",
            i if i == c_id => "C-mc",
            i if i == d_id => "D-mc-halo",
            i if i == e_id => "E-isolate",
            _ => ".",
        };
        println!("{i}\t{:.5}\t{:.5}\t{kind}", op.x, op.y);
    }

    println!();
    println!("# Fig. 4: histogram of 1NN distances and the MDL cutoff");
    println!("# columns: bin radius count");
    for (k, (&h, &radius)) in out.oracle.histogram().iter().zip(&out.radii).enumerate() {
        println!("{k}\t{radius:.5}\t{h}");
    }
    println!(
        "# cutoff d = {:.5} (bin {:?}, mode bin {:?})",
        out.cutoff.d, out.cutoff.cut_index, out.cutoff.mode_index
    );

    println!();
    println!("# detected microclusters (most strange first):");
    for (rank, mc) in out.microclusters.iter().enumerate() {
        println!(
            "# {}: size {} score {:.3} bridge {:.3} members {:?}",
            rank + 1,
            mc.cardinality(),
            mc.score,
            mc.bridge_length,
            mc.members
        );
    }
    // Verify the narrative of Fig. 3: C and D gel; B and E are singletons.
    let c_cluster = out.cluster_of(c_id).expect("C found");
    assert!(c_cluster.members.contains(&d_id), "C and D must gel");
    assert!(out.cluster_of(b_id).expect("B found").is_singleton());
    assert!(out.cluster_of(e_id).expect("E found").is_singleton());
    assert!(!out.is_outlier(a_id));
    eprintln!("fig3_oracle: narrative checks passed (A inlier; B,E singletons; C+D gelled)");
}
