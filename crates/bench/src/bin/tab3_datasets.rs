//! Regenerates **Tab. III** (summary of datasets): cardinality, embedding
//! dimensionality, intrinsic (correlation fractal) dimensionality and
//! outlier percentage for every dataset analogue, including the
//! nondimensional ones (whose fractal dimension is computed from distances
//! alone — footnote 7 of the paper).
//!
//! Options: `--cap 4000` size cap for the fractal estimates, `--seed 9`.

use mccatch_bench::{print_table, Args};
use mccatch_data::{
    diagonal, fingerprints, last_names, shanghai, skeletons, uniform, volcanoes, BENCHMARKS,
};
use mccatch_eval::correlation_dimension;
use mccatch_index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch_metric::{Euclidean, Levenshtein, TreeEditDistance};

/// "n/m" (not measurable) when distance concentration leaves no scaling
/// range at this sample size.
fn fmt_dim(d: f64) -> String {
    if d.is_nan() {
        "n/m".to_owned()
    } else {
        format!("{d:.1}")
    }
}

fn main() {
    let args = Args::parse();
    let cap: usize = args.get("cap", 4000);
    let seed: u64 = args.get("seed", 9);
    println!("Tab. III — summary of dataset analogues (fractal dim from <= {cap} samples)");
    println!();
    let mut rows = Vec::new();

    // Nondimensional.
    let names = last_names(2_000.min(cap), 50, seed);
    let fd = correlation_dimension(
        &names.points,
        &Levenshtein,
        &SlimTreeBuilder::default(),
        15,
        400,
    );
    rows.push(vec![
        "Last Names".into(),
        "5,050 (analogue scaled)".into(),
        "-".into(),
        fmt_dim(fd.dimension),
        format!("{:.2}", names.outlier_percent()),
    ]);
    let prints = fingerprints(398, 10, seed);
    let fd = correlation_dimension(
        &prints.points,
        &Levenshtein,
        &SlimTreeBuilder::default(),
        15,
        400,
    );
    rows.push(vec![
        "Fingerprints".into(),
        prints.len().to_string(),
        "-".into(),
        fmt_dim(fd.dimension),
        format!("{:.2}", prints.outlier_percent()),
    ]);
    let skel = skeletons(200, seed);
    let fd = correlation_dimension(
        &skel.points,
        &TreeEditDistance,
        &SlimTreeBuilder::default(),
        15,
        203,
    );
    rows.push(vec![
        "Skeletons".into(),
        skel.len().to_string(),
        "-".into(),
        fmt_dim(fd.dimension),
        format!("{:.2}", skel.outlier_percent()),
    ]);

    // Vector benchmarks.
    for spec in BENCHMARKS {
        let scale = (cap as f64 / spec.n as f64).min(1.0);
        let data = spec.generate_scaled(scale, seed);
        let fd =
            correlation_dimension(&data.points, &Euclidean, &KdTreeBuilder::default(), 15, 500);
        rows.push(vec![
            spec.name.into(),
            format!("{} (of {})", data.len(), spec.n),
            spec.dim.to_string(),
            fmt_dim(fd.dimension),
            format!("{:.2}", data.outlier_percent()),
        ]);
    }

    // Satellite tiles.
    for img in [shanghai(seed), volcanoes(seed)] {
        let fd = correlation_dimension(
            &img.data.points,
            &Euclidean,
            &KdTreeBuilder::default(),
            15,
            500,
        );
        rows.push(vec![
            img.data.name.clone(),
            img.data.len().to_string(),
            "3".into(),
            fmt_dim(fd.dimension),
            format!("{:.2} (planted)", img.data.outlier_percent()),
        ]);
    }

    // Synthetic scalability sets.
    for dim in [2usize, 20, 50] {
        let pts = uniform(cap, dim, seed);
        let fd = correlation_dimension(&pts, &Euclidean, &KdTreeBuilder::default(), 15, 500);
        rows.push(vec![
            format!("Uniform-{dim}d"),
            format!("{} (of 1M)", cap),
            dim.to_string(),
            fmt_dim(fd.dimension),
            "0".into(),
        ]);
        let pts = diagonal(cap, dim, seed);
        let fd = correlation_dimension(&pts, &Euclidean, &KdTreeBuilder::default(), 15, 500);
        rows.push(vec![
            format!("Diagonal-{dim}d"),
            format!("{} (of 1M)", cap),
            dim.to_string(),
            fmt_dim(fd.dimension),
            "0".into(),
        ]);
    }

    print_table(
        &[
            "dataset",
            "# points",
            "# features",
            "fractal dim",
            "% outliers",
        ],
        &rows,
    );
    println!();
    println!(
        "paper Tab. III reference fractal dims: Last Names 5.3, Fingerprints 8.0, Skeletons 2.1,"
    );
    println!("Http 1.2, Shuttle 1.8, Uniform-d ~ d, Diagonal 1.0.");
}
