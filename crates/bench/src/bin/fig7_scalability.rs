//! Regenerates **Fig. 7** (scalability): MCCATCH runtime versus data size
//! on the Uniform and Diagonal workloads at several embedding
//! dimensionalities, with the log-log slope fitted and compared to
//! Lemma 1's prediction `2 − 1/u` (`u` = correlation fractal dimension;
//! Diagonal has `u = 1` ⇒ slope 1, Uniform has `u = d`).
//!
//! Wall-clock in the paper; here we report wall-clock *and* the number of
//! metric-distance evaluations (machine-independent, what Lemma 1 really
//! bounds).
//!
//! Options: `--max-n 160000` largest sample (paper: 1M; pass 1000000 to
//! match), `--steps 5` sweep points, `--dims 2,20,50`.

use mccatch_bench::{print_table, Args};
use mccatch_core::McCatch;
use mccatch_data::{diagonal, uniform};
use mccatch_eval::{correlation_dimension, linear_regression};
use mccatch_index::SlimTreeBuilder;
use mccatch_metric::{CountingMetric, Euclidean};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let max_n: usize = args.get("max-n", 160_000);
    let steps: usize = args.get("steps", 5);
    let dims: Vec<usize> = args
        .get("dims", "2,20,50".to_owned())
        .split(',')
        .map(|d| d.parse().expect("dim list"))
        .collect();

    println!("Fig. 7 — runtime vs. data size (max n = {max_n}, slim-tree, distance-counted)");
    println!();
    let mut summary = Vec::new();
    for &dim in &dims {
        for workload in ["Uniform", "Diagonal"] {
            // Sample sizes: geometric sweep ending at max_n.
            let sizes: Vec<usize> = (0..steps)
                .map(|i| (max_n as f64 / 2f64.powi((steps - 1 - i) as i32)) as usize)
                .collect();
            let gen = |n: usize| -> Vec<Vec<f64>> {
                match workload {
                    "Uniform" => uniform(n, dim, 7),
                    _ => diagonal(n, dim, 7),
                }
            };
            // Expected slope 2 - 1/u. Like the paper, the nominal intrinsic
            // dimension sets the expectation (Uniform: u = d, Diagonal:
            // u = 1); the measured correlation dimension is reported as a
            // diagnostic (it saturates for high-d Uniform at laptop sample
            // sizes — distance concentration).
            let nominal_u = if workload == "Uniform" {
                dim as f64
            } else {
                1.0
            };
            let sample = gen(sizes[sizes.len() / 2].min(20_000));
            let fd =
                correlation_dimension(&sample, &Euclidean, &SlimTreeBuilder::default(), 15, 500);
            let u = nominal_u;
            let expected = 2.0 - 1.0 / u;

            let mut log_n = Vec::new();
            let mut log_t = Vec::new();
            let mut log_d = Vec::new();
            let mut rows = Vec::new();
            for &n in &sizes {
                let pts = gen(n);
                // The fit takes the metric by value; wrapping the counter
                // in an Arc keeps a handle to read it back afterwards.
                let metric = Arc::new(CountingMetric::new(Euclidean));
                let t0 = Instant::now();
                let model = McCatch::builder()
                    .build()
                    .expect("valid params")
                    .fit(pts, Arc::clone(&metric), SlimTreeBuilder::default())
                    .expect("fit")
                    .into_model();
                let out = model.detect_output();
                let wall = t0.elapsed();
                let dists = metric.calls();
                log_n.push((n as f64).log2());
                log_t.push(wall.as_secs_f64().max(1e-6).log2());
                log_d.push((dists as f64).log2());
                rows.push(vec![
                    format!("{workload}-{dim}d"),
                    n.to_string(),
                    format!("{:.3}s", wall.as_secs_f64()),
                    format!("{:.3}s", out.stats.t_count.as_secs_f64()),
                    dists.to_string(),
                    out.stats.dist_count.to_string(),
                    out.num_outliers().to_string(),
                ]);
            }
            print_table(
                &[
                    "workload",
                    "n",
                    "wall",
                    "count stage",
                    "distance calls",
                    "count dists",
                    "outliers",
                ],
                &rows,
            );
            let slope_t = linear_regression(&log_n, &log_t);
            let slope_d = linear_regression(&log_n, &log_d);
            println!(
                "  nominal u = {:.0} (measured {:.2}, R2 {:.2}); expected slope {:.2}; measured: wall {:.2} (R2 {:.2}), distances {:.2} (R2 {:.2})",
                u, fd.dimension, fd.r2, expected, slope_t.slope, slope_t.r2, slope_d.slope, slope_d.r2
            );
            println!();
            summary.push(vec![
                format!("{workload}-{dim}d"),
                format!("{u:.0} ({:.1})", fd.dimension),
                format!("{expected:.2}"),
                format!("{:.2}", slope_t.slope),
                format!("{:.2}", slope_d.slope),
            ]);
        }
    }
    println!("summary (paper Fig. 7: expected slopes 1.00 for Diagonal; 1.50/1.95/1.98 for Uniform 2/20/50-d):");
    print_table(
        &[
            "workload",
            "u nominal (meas.)",
            "expected 2-1/u",
            "wall slope",
            "distance slope",
        ],
        &summary,
    );
    println!();
    println!("note: subquadratic in every case (slope < 2), regardless of embedding dimension.");
}
