//! Regenerates **Fig. 6** (accuracy comparison grid) and **Tab. IV**
//! (harmonic-mean ranks for AUROC / AP / Max-F1).
//!
//! For every labeled dataset analogue, runs MCCATCH (untuned defaults) and
//! the 11 baselines (each tuned over its Tab. II grid, best configuration
//! kept) and prints the AUROC grid with win/tie/lose judgments against
//! MCCATCH (±0.1 AUROC counts as a tie, as in the paper), then the Tab. IV
//! rank aggregation over AUROC, AP and Max-F1.
//!
//! Options: `--cap 4000` caps dataset sizes (scaled generation keeps the
//! outlier fractions); `--full` uses the paper's full cardinalities
//! (slow); `--seed 9`.

use mccatch_bench::{
    cell, detect, print_table, run_baseline, run_mccatch, Args, MethodRun, FIG6_METHODS,
};
use mccatch_core::Params;
use mccatch_data::{fingerprints, last_names, skeletons, BENCHMARKS};
use mccatch_eval::{auroc, average_precision, max_f1};
use mccatch_eval::{harmonic_mean, rank_descending};
use mccatch_index::SlimTreeBuilder;
use mccatch_metric::{Levenshtein, TreeEditDistance};
use std::time::Instant;

/// One method's `(auroc, ap, maxf1)` samples across datasets.
type MethodMetrics = (&'static str, Vec<(f64, f64, f64)>);

fn main() {
    let args = Args::parse();
    let cap: usize = args.get("cap", 4000);
    let full = args.flag("full");
    let seed: u64 = args.get("seed", 9);

    println!(
        "Fig. 6 / Tab. IV — accuracy comparison (cap = {})",
        if full { "full".into() } else { cap.to_string() }
    );
    println!();

    // method -> (auroc, ap, maxf1) per dataset (NaN = skipped/not applicable)
    let mut per_method: Vec<MethodMetrics> =
        FIG6_METHODS.iter().map(|&m| (m, Vec::new())).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut dataset_names: Vec<String> = Vec::new();

    // ---- vector benchmarks (Tab. III analogues) ----
    for spec in BENCHMARKS {
        let scale = if full {
            1.0
        } else {
            (cap as f64 / spec.n as f64).min(1.0)
        };
        let data = spec.generate_scaled(scale, seed);
        let (mc_run, _) = run_mccatch(&data.points, &data.labels);
        let mut row = vec![format!("{} (n={})", spec.name, data.len())];
        let mut runs: Vec<MethodRun> = Vec::new();
        for &method in FIG6_METHODS.iter().take(FIG6_METHODS.len() - 1) {
            runs.push(run_baseline(method, &data.points, &data.labels));
        }
        runs.push(mc_run);
        for (slot, run) in per_method.iter_mut().zip(&runs) {
            slot.1.push((run.auroc, run.ap, run.max_f1));
        }
        for run in &runs {
            let judged = if run.method == "MCCATCH" {
                cell(run.auroc)
            } else if run.skipped.is_some() {
                "skip".to_owned()
            } else {
                let mc = runs.last().expect("mccatch last").auroc;
                let mark = if mc > run.auroc + 0.1 {
                    "W" // MCCATCH wins
                } else if mc < run.auroc - 0.1 {
                    "L"
                } else {
                    "T"
                };
                format!("{} {}", cell(run.auroc), mark)
            };
            row.push(judged);
        }
        dataset_names.push(spec.name.to_owned());
        rows.push(row);
    }

    // ---- nondimensional datasets: only MCCATCH applies (goal G1) ----
    let t0 = Instant::now();
    let names = last_names(if full { 5000 } else { 2000.min(cap) }, 50, seed);
    let out = detect(
        &names.points,
        &Levenshtein,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    nondim_row(
        &mut rows,
        &mut per_method,
        &mut dataset_names,
        "Last Names",
        names.len(),
        (
            auroc(&out.point_scores, &names.labels),
            average_precision(&out.point_scores, &names.labels),
            max_f1(&out.point_scores, &names.labels),
        ),
    );
    let prints = fingerprints(if full { 398 } else { 398.min(cap) }, 10, seed);
    let out = detect(
        &prints.points,
        &Levenshtein,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    nondim_row(
        &mut rows,
        &mut per_method,
        &mut dataset_names,
        "Fingerprints",
        prints.len(),
        (
            auroc(&out.point_scores, &prints.labels),
            average_precision(&out.point_scores, &prints.labels),
            max_f1(&out.point_scores, &prints.labels),
        ),
    );
    let skel = skeletons(200, seed);
    let out = detect(
        &skel.points,
        &TreeEditDistance,
        &SlimTreeBuilder::default(),
        &Params::default(),
    );
    nondim_row(
        &mut rows,
        &mut per_method,
        &mut dataset_names,
        "Skeletons",
        skel.len(),
        (
            auroc(&out.point_scores, &skel.labels),
            average_precision(&out.point_scores, &skel.labels),
            max_f1(&out.point_scores, &skel.labels),
        ),
    );
    let _ = t0;

    let mut headers = vec!["dataset (AUROC; W/T/L vs MCCATCH)"];
    headers.extend(FIG6_METHODS);
    print_table(&headers, &rows);

    // ---- Tab. IV: harmonic mean of rank positions across datasets ----
    println!();
    println!("Tab. IV — harmonic mean of per-dataset ranking positions (lower is better)");
    let n_datasets = dataset_names.len();
    let mut tab4: Vec<Vec<String>> = Vec::new();
    for (metric_idx, metric_name) in ["AUROC", "AP", "Max-F1"].iter().enumerate() {
        // Rank methods per dataset (NaN = worst).
        let mut rank_lists: Vec<Vec<f64>> = vec![Vec::new(); per_method.len()];
        for d in 0..n_datasets {
            let values: Vec<f64> = per_method
                .iter()
                .map(|(_, v)| {
                    let t = v[d];
                    let x = [t.0, t.1, t.2][metric_idx];
                    if x.is_nan() {
                        -1.0 // skipped: sorts last
                    } else {
                        x
                    }
                })
                .collect();
            let ranks = rank_descending(&values);
            for (list, (&r, &v)) in rank_lists.iter_mut().zip(ranks.iter().zip(&values)) {
                if v >= 0.0 {
                    list.push(r);
                }
            }
        }
        let mut row = vec![format!("H. Mean Rank ({metric_name})")];
        for (m, list) in per_method.iter().zip(&rank_lists) {
            row.push(if list.is_empty() {
                "--".to_owned()
            } else {
                format!(
                    "{:.1} ({}/{} ds)",
                    harmonic_mean(list),
                    list.len(),
                    n_datasets
                )
            });
            let _ = m;
        }
        tab4.push(row);
    }
    let mut headers = vec!["metric"];
    headers.extend(FIG6_METHODS);
    print_table(&headers, &tab4);
    println!();
    println!("paper Tab. IV: MCCATCH best H-mean rank on all three metrics (1.8 / 2.3 / 1.8);");
    println!(
        "paper Fig. 6: MCCATCH wins on microcluster datasets + nondimensional, ties elsewhere."
    );
}

/// Adds a row for a nondimensional dataset: baselines print the paper's
/// NON-APPL / NEED-MODIF markers and contribute no rank sample.
fn nondim_row(
    rows: &mut Vec<Vec<String>>,
    per_method: &mut [MethodMetrics],
    dataset_names: &mut Vec<String>,
    name: &str,
    n: usize,
    mccatch_metrics: (f64, f64, f64),
) {
    let mut row = vec![format!("{name} (n={n}) [metric-only]")];
    for (method, slot) in per_method.iter_mut() {
        if *method == "MCCATCH" {
            slot.push(mccatch_metrics);
            row.push(cell(mccatch_metrics.0));
        } else {
            slot.push((f64::NAN, f64::NAN, f64::NAN));
            // Distance-based methods could be adapted (NEED MODIF.); the
            // feature-based ones cannot run at all (NON APPL.).
            let marker = match *method {
                "DB-Out" | "LOCI" | "LOF" | "ODIN" => "modif",
                _ => "n/a",
            };
            row.push(marker.to_owned());
        }
    }
    dataset_names.push(name.to_owned());
    rows.push(row);
}
