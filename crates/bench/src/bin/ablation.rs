//! Ablation study for MCCATCH's two signature design choices (Sec. IV-D
//! and IV-G of the paper):
//!
//! 1. **MDL cutoff vs. `k·σ`** — the paper motivates the MDL cutoff by
//!    asking "can we get rid of the k parameter too?". Here we compare the
//!    flags produced by Def. 6 with the classic `mean + 3σ` threshold on
//!    the 1NN-distance histogram, measuring the F1 of the flagged set
//!    against ground truth.
//! 2. **Sparse-focused counting on/off** — how many distance evaluations
//!    the `q > c` early-drop principle saves (counting with `c = n`
//!    disables it).
//!
//! Options: `--cap 3000`, `--seed 9`.

use mccatch_bench::{detect, print_table, Args};
use mccatch_core::Params;
use mccatch_data::BENCHMARKS;
use mccatch_index::SlimTreeBuilder;
use mccatch_metric::{CountingMetric, Euclidean};

/// F1 of a flagged set against boolean ground truth.
fn flag_f1(flagged: &[bool], labels: &[bool]) -> f64 {
    let tp = flagged
        .iter()
        .zip(labels)
        .filter(|&(&f, &l)| f && l)
        .count() as f64;
    let fp = flagged
        .iter()
        .zip(labels)
        .filter(|&(&f, &l)| f && !l)
        .count() as f64;
    let fnn = flagged
        .iter()
        .zip(labels)
        .filter(|&(&f, &l)| !f && l)
        .count() as f64;
    if tp == 0.0 {
        return 0.0;
    }
    2.0 * tp / (2.0 * tp + fp + fnn)
}

fn main() {
    let args = Args::parse();
    let cap: usize = args.get("cap", 3000);
    let seed: u64 = args.get("seed", 9);

    // ---- Ablation 1: cutoff rule ----
    println!("Ablation 1 — cutoff rule: MDL (Def. 6) vs mean+3sigma on the 1NN histogram");
    println!();
    let mut rows = Vec::new();
    for spec in BENCHMARKS.iter().filter(|s| s.name != "Speech") {
        let scale = (cap as f64 / spec.n as f64).min(1.0);
        let data = spec.generate_scaled(scale, seed);
        let out = detect(
            &data.points,
            &Euclidean,
            &mccatch_index::KdTreeBuilder::default(),
            &Params::default(),
        );
        // MDL flags.
        let mut mdl_flags = vec![false; data.len()];
        for &o in &out.outliers {
            mdl_flags[o as usize] = true;
        }
        // k-sigma flags: x or y above mean_x + 3 std_x (computed over the
        // quantized 1NN distances, the same data Def. 6 sees).
        let xs: Vec<f64> = out.oracle.points().iter().map(|p| p.x).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        let d_sigma = mean + 3.0 * var.sqrt();
        let sigma_flags: Vec<bool> = out
            .oracle
            .points()
            .iter()
            .map(|p| p.x >= d_sigma || p.y >= d_sigma)
            .collect();
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.3}", flag_f1(&mdl_flags, &data.labels)),
            format!("{:.3}", flag_f1(&sigma_flags, &data.labels)),
            format!("{:.4}", out.cutoff.d),
            format!("{d_sigma:.4}"),
        ]);
    }
    print_table(
        &[
            "dataset",
            "F1 (MDL)",
            "F1 (3-sigma)",
            "d (MDL)",
            "d (3-sigma)",
        ],
        &rows,
    );

    // ---- Ablation 2: sparse-focused counting ----
    println!();
    println!("Ablation 2 — sparse-focused principle: distance calls with/without the c-cutoff");
    println!();
    let mut rows = Vec::new();
    for spec in BENCHMARKS
        .iter()
        .filter(|s| s.n >= 1_000 && s.name != "Speech")
        .take(6)
    {
        let scale = (cap as f64 / spec.n as f64).min(1.0);
        let data = spec.generate_scaled(scale, seed);
        // CountingMetric is not Clone (shared atomic): the Arc is the
        // metric, so the fit's internal clone shares our counter.
        let count_with = {
            let m = std::sync::Arc::new(CountingMetric::new(Euclidean));
            let _ = detect(
                &data.points,
                &m,
                &SlimTreeBuilder::default(),
                &Params::default(),
            );
            m.calls()
        };
        let count_without = {
            let m = std::sync::Arc::new(CountingMetric::new(Euclidean));
            let p = Params {
                max_mc_cardinality: Some(data.len()), // never drop anyone
                ..Params::default()
            };
            let _ = detect(&data.points, &m, &SlimTreeBuilder::default(), &p);
            m.calls()
        };
        rows.push(vec![
            spec.name.to_owned(),
            data.len().to_string(),
            count_with.to_string(),
            count_without.to_string(),
            format!("{:.2}x", count_without as f64 / count_with.max(1) as f64),
        ]);
    }
    print_table(
        &[
            "dataset",
            "n",
            "dist calls (sparse)",
            "dist calls (full)",
            "savings",
        ],
        &rows,
    );
    println!();
    println!(
        "note: 'full' also changes c, so its flags differ; the column isolates join cost only."
    );
}
