//! Regenerates **Tab. V** (axiom obedience): for each axiom × inlier shape,
//! generate `--trials` random scenario instances, score the two planted
//! microclusters with MCCATCH and with Gen2Out (the only competitor that
//! scores groups), and test `score(green) > score(red)` with a one-sided
//! Welch t-test.
//!
//! Options: `--trials 50` (paper: 50), `--inliers 20000` (paper: ~1M; the
//! geometry is size-invariant, see `mccatch-data`), `--seed 0`.

use mccatch_baselines::gen2out;
use mccatch_bench::{detect, print_table, Args};
use mccatch_core::Params;
use mccatch_data::{axiom_scenario, Axiom, InlierShape};
use mccatch_eval::welch_t_test;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;

/// Score of the planted microcluster under MCCATCH: the score of the
/// cluster containing the majority of its members, `None` if missed.
fn mccatch_mc_score(points: &[Vec<f64>], members: &[u32]) -> Option<f64> {
    let out = detect(
        points,
        &Euclidean,
        &KdTreeBuilder::default(),
        &Params::default(),
    );
    let mc = out.cluster_of(members[0])?;
    let recovered = members
        .iter()
        .filter(|m| mc.members.binary_search(m).is_ok())
        .count();
    (recovered * 2 >= members.len()).then_some(mc.score)
}

/// Score of the planted microcluster under Gen2Out, `None` if no reported
/// group contains a majority of its members.
fn gen2out_mc_score(points: &[Vec<f64>], members: &[u32]) -> Option<f64> {
    let res = gen2out(points, &KdTreeBuilder::default(), 100, 256, 0.05, 42);
    res.groups
        .iter()
        .find(|g| {
            let hit = members
                .iter()
                .filter(|m| g.members.binary_search(m).is_ok())
                .count();
            hit * 2 >= members.len()
        })
        .map(|g| g.score)
}

fn main() {
    let args = Args::parse();
    let trials: usize = args.get("trials", 50);
    let n_inliers: usize = args.get("inliers", 20_000);
    let seed0: u64 = args.get("seed", 0);

    println!("Tab. V — axiom obedience ({trials} trials per cell, {n_inliers} inliers)");
    println!();
    let mut rows = Vec::new();
    for axiom in Axiom::ALL {
        for shape in InlierShape::ALL {
            let mut mc_green = Vec::new();
            let mut mc_red = Vec::new();
            let mut g2_green = Vec::new();
            let mut g2_red = Vec::new();
            let mut mc_missed = 0usize;
            let mut g2_missed = 0usize;
            for t in 0..trials {
                let s = axiom_scenario(shape, axiom, n_inliers, seed0 + t as u64);
                match (
                    mccatch_mc_score(&s.data.points, &s.red),
                    mccatch_mc_score(&s.data.points, &s.green),
                ) {
                    (Some(r), Some(g)) => {
                        mc_red.push(r);
                        mc_green.push(g);
                    }
                    _ => mc_missed += 1,
                }
                match (
                    gen2out_mc_score(&s.data.points, &s.red),
                    gen2out_mc_score(&s.data.points, &s.green),
                ) {
                    (Some(r), Some(g)) => {
                        g2_red.push(r);
                        g2_green.push(g);
                    }
                    _ => g2_missed += 1,
                }
            }
            let fmt = |green: &[f64], red: &[f64], missed: usize| -> (String, String) {
                if green.len() < 2 {
                    return ("Fail".into(), format!("missed {missed}/{trials}"));
                }
                let t = welch_t_test(green, red);
                if missed * 2 > trials {
                    ("Fail".into(), format!("missed {missed}/{trials}"))
                } else {
                    (format!("{:.1}", t.t), format!("{:.1e}", t.p_greater))
                }
            };
            let (mc_stat, mc_p) = fmt(&mc_green, &mc_red, mc_missed);
            let (g2_stat, g2_p) = fmt(&g2_green, &g2_red, g2_missed);
            rows.push(vec![
                format!("{} / {}", axiom.name(), shape.name()),
                mc_stat,
                mc_p,
                format!("{mc_missed}/{trials}"),
                g2_stat,
                g2_p,
                format!("{g2_missed}/{trials}"),
            ]);
        }
    }
    print_table(
        &[
            "axiom / shape",
            "MCCATCH t",
            "p-value",
            "missed",
            "Gen2Out t",
            "p-value",
            "missed",
        ],
        &rows,
    );
    println!();
    println!("paper Tab. V: MCCATCH passes all six cells (t 2.6..1153, p << 0.01);");
    println!("Gen2Out passes only the Gaussian cells and fails Cross/Arc by missing the mcs.");
}
