//! A lock-free log₂-bucketed latency histogram.
//!
//! The bucket layout is fixed at compile time: bucket `i` counts
//! durations of at most `2^(FIRST_POW + i)` nanoseconds, from
//! [`FIRST_POW`] (≈ 1 µs) through [`LAST_POW`] (≈ 69 s), plus one
//! overflow bucket that becomes the `+Inf` series in the Prometheus
//! exposition. Fixed bounds make every histogram in the process
//! mergeable by plain element-wise addition — shard and tenant series
//! aggregate without resampling.
//!
//! Recording is two relaxed `fetch_add`s (bucket + sum) and a
//! compare-and-swap that only runs when a new maximum is observed, so
//! the hot path costs a handful of nanoseconds and never blocks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log₂ of the first bucket bound in nanoseconds: `2^10` ns ≈ 1.02 µs.
pub const FIRST_POW: u32 = 10;

/// log₂ of the last finite bucket bound in nanoseconds: `2^36` ns ≈ 68.7 s.
pub const LAST_POW: u32 = 36;

/// Number of finite buckets; the slot after them counts overflow
/// (`+Inf`).
pub const BUCKETS: usize = (LAST_POW - FIRST_POW + 1) as usize;

/// Index of the finite bucket for `nanos`, or [`BUCKETS`] (overflow).
fn bucket_index(nanos: u64) -> usize {
    // Smallest p with nanos <= 2^p, i.e. ceil(log2(nanos)).
    let p = if nanos <= 1 {
        0
    } else {
        64 - (nanos - 1).leading_zeros()
    };
    (p.saturating_sub(FIRST_POW) as usize).min(BUCKETS)
}

/// Upper bound of finite bucket `i`, in nanoseconds.
fn bucket_bound_nanos(i: usize) -> u64 {
    1u64 << (FIRST_POW + i as u32)
}

/// Renders a nanosecond count as an exact decimal number of seconds
/// (`1024` → `"0.000001024"`), so bucket bounds are byte-stable across
/// platforms and never go through floating point.
pub(crate) fn nanos_as_seconds(nanos: u64) -> String {
    let secs = nanos / 1_000_000_000;
    let frac = nanos % 1_000_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let mut f = format!("{frac:09}");
        while f.ends_with('0') {
            f.pop();
        }
        format!("{secs}.{f}")
    }
}

/// A mergeable, lock-free latency histogram with fixed log₂ buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    /// Per-bucket observation counts; the last slot is overflow.
    buckets: [AtomicU64; BUCKETS + 1],
    /// Total observed nanoseconds across all recordings.
    sum_nanos: AtomicU64,
    /// Largest single observation, in nanoseconds.
    max_nanos: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS + 1],
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        self.record_nanos(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one observation of `nanos` nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.record_many(nanos, 1);
    }

    /// Records `n` observations of `nanos_each` nanoseconds in one go —
    /// the amortized path for per-NDJSON-line accounting, where a batch
    /// of `n` lines took `n * nanos_each` total.
    pub fn record_many(&self, nanos_each: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(nanos_each)].fetch_add(n, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(nanos_each.saturating_mul(n), Ordering::Relaxed);
        let mut seen = self.max_nanos.load(Ordering::Relaxed);
        while nanos_each > seen {
            match self.max_nanos.compare_exchange_weak(
                seen,
                nanos_each,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }

    /// A consistent-enough point-in-time copy for rendering and
    /// quantile estimation (individual loads are relaxed; counters only
    /// grow, so any tearing is bounded by in-flight recordings).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS + 1];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s counters: mergeable, renderable,
/// and queryable for quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; the last slot is overflow (`+Inf`).
    pub buckets: [u64; BUCKETS + 1],
    /// Total observed nanoseconds.
    pub sum_nanos: u64,
    /// Largest single observation, in nanoseconds.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds `other`'s counts into `self` — merging shard histograms is
    /// exact because every histogram shares the same bucket bounds.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// The largest single observation, in seconds.
    pub fn max_seconds(&self) -> f64 {
        self.max_nanos as f64 / 1e9
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in seconds: the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` observation,
    /// clamped to the observed maximum (so `quantile(1.0)` is exact).
    /// Returns `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                if i >= BUCKETS {
                    return self.max_seconds();
                }
                return (bucket_bound_nanos(i) as f64 / 1e9).min(self.max_seconds());
            }
        }
        self.max_seconds()
    }
}

/// Appends one Prometheus `histogram` family to `out`: a `HELP`/`TYPE`
/// header, then cumulative `_bucket{…,le="…"}` series (ending in
/// `le="+Inf"`), `_sum` (seconds), and `_count` per labeled series.
///
/// `series` pairs a label body (the text between `{}`, e.g.
/// `endpoint="score"` — empty for an unlabeled series) with its
/// snapshot. Empty bucket tails are still emitted so scrapers see a
/// fixed schema.
pub fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(String, HistogramSnapshot)],
) {
    use std::fmt::Write;
    let _ = write!(out, "# HELP {name} {help}\n# TYPE {name} histogram\n");
    for (labels, snap) in series {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative += snap.buckets[i];
            let le = nanos_as_seconds(bucket_bound_nanos(i));
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
            );
        }
        cumulative += snap.buckets[BUCKETS];
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
        );
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{braces} {}", snap.sum_nanos as f64 / 1e9);
        let _ = writeln!(out, "{name}_count{braces} {cumulative}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_log2_grid() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1024), 0); // 2^10 is still bucket 0
        assert_eq!(bucket_index(1025), 1);
        assert_eq!(bucket_index(2048), 1);
        assert_eq!(bucket_index(1u64 << LAST_POW), BUCKETS - 1);
        assert_eq!(bucket_index((1u64 << LAST_POW) + 1), BUCKETS);
        assert_eq!(bucket_index(u64::MAX), BUCKETS);
    }

    #[test]
    fn nanos_render_as_exact_decimal_seconds() {
        assert_eq!(nanos_as_seconds(1024), "0.000001024");
        assert_eq!(nanos_as_seconds(1_000_000_000), "1");
        assert_eq!(nanos_as_seconds(1u64 << 36), "68.719476736");
        assert_eq!(nanos_as_seconds(1_500_000_000), "1.5");
    }

    #[test]
    fn record_accumulates_count_sum_and_max() {
        let h = Histogram::new();
        h.record_nanos(2_000); // bucket 1
        h.record_nanos(2_000);
        h.record_nanos(5_000_000); // ~5ms
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum_nanos, 5_004_000);
        assert_eq!(s.max_nanos, 5_000_000);
        assert_eq!(s.buckets[1], 2);
    }

    #[test]
    fn record_many_is_n_observations_at_once() {
        let h = Histogram::new();
        h.record_many(3_000, 10);
        h.record_many(3_000, 0); // no-op
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.sum_nanos, 30_000);
        assert_eq!(s.max_nanos, 3_000);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_nanos(1_000); // bucket 0, bound 1.024 µs
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000); // ~1 ms
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1.024e-6);
        assert_eq!(s.quantile(0.9), 1.024e-6);
        // p99 lands in the ~1ms bucket but is clamped to the observed max.
        assert_eq!(s.quantile(0.99), 1e-3);
        assert_eq!(s.quantile(1.0), 1e-3);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn overflow_quantile_reports_the_observed_max() {
        let h = Histogram::new();
        h.record_nanos(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS], 1);
        assert_eq!(s.quantile(0.5), u64::MAX as f64 / 1e9);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let a = Histogram::new();
        a.record_nanos(1_000);
        let b = Histogram::new();
        b.record_nanos(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum_nanos, 1_001_000);
        assert_eq!(m.max_nanos, 1_000_000);
    }

    #[test]
    fn exposition_is_cumulative_and_ends_at_inf() {
        let h = Histogram::new();
        h.record_nanos(1_000);
        h.record_nanos(2_000);
        let mut out = String::new();
        render_histogram(
            &mut out,
            "x_seconds",
            "test.",
            &[(String::new(), h.snapshot())],
        );
        assert!(out.contains("# TYPE x_seconds histogram"));
        assert!(out.contains("x_seconds_bucket{le=\"0.000001024\"} 1"));
        assert!(out.contains("x_seconds_bucket{le=\"0.000002048\"} 2"));
        assert!(out.contains("x_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("x_seconds_count 2"));
        assert!(out.contains("x_seconds_sum 0.000003"));
    }

    #[test]
    fn labeled_series_join_labels_with_a_comma() {
        let h = Histogram::new();
        h.record_nanos(1_000);
        let mut out = String::new();
        render_histogram(
            &mut out,
            "x_seconds",
            "test.",
            &[("endpoint=\"score\"".to_owned(), h.snapshot())],
        );
        assert!(out.contains("x_seconds_bucket{endpoint=\"score\",le=\"0.000001024\"} 1"));
        assert!(out.contains("x_seconds_count{endpoint=\"score\"} 1"));
        assert!(out.contains("x_seconds_sum{endpoint=\"score\"} 0.000001"));
    }
}
