//! Per-request tracing: span trees, `traceparent` propagation, a
//! tail-based sampler for slow-or-failed traces, and Chrome
//! trace-event export.
//!
//! Aggregate histograms ([`crate::Histogram`], the global
//! [`crate::StageRecorder`]) answer "how slow is the p99"; this module
//! answers "*why was this request slow*". A [`Trace`] collects a tree
//! of timed [`SpanRecord`]s — ids, parent ids, start offsets from the
//! trace's birth, durations, and key=value attributes — cheaply enough
//! to run on the serving hot path: span collection is one short
//! mutex-guarded `Vec::push` per closed span, and when tracing is
//! disabled the fast path is a single relaxed atomic load
//! ([`Sampler::enabled`]).
//!
//! Three pieces compose:
//!
//! * **Span trees** — [`Trace::root_span`] opens the root;
//!   [`TraceSpan::child`] nests; a cloneable, `Send` [`SpanHandle`]
//!   carries "attach children here" across the tenant shard fan-out's
//!   worker threads. [`SpanHandle::make_current`] installs a span as
//!   the thread's implicit parent so deep layers (the `fit_*` stages
//!   in `mccatch-core`) attach via [`crate::record_stage`] without any
//!   signature changes — and keep recording into the global
//!   [`crate::StageRecorder`] exactly as before when no trace is
//!   active.
//! * **Tail sampling** — traces are offered to the process-global
//!   [`sampler()`] *after* they finish, so the decision can look at
//!   the actual duration and error flag: only traces at least as slow
//!   as the configured threshold, or ending in error, enter the
//!   bounded ring.
//! * **Export** — [`chrome_trace_json`] renders sampled traces as
//!   Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`); every child interval is clamped to nest
//!   inside its parent's so the viewer's flame layout is always
//!   well-formed.
//!
//! W3C-style `traceparent` headers ([`parse_traceparent`] /
//! [`render_traceparent`]) tie a trace to the caller's distributed
//! context: the server adopts a valid inbound trace id and echoes
//! `00-{trace-id}-{our-root-span-id}-{flags}` on every response,
//! generating fresh ids ([`gen_trace_id`], [`gen_span_id`]) when the
//! header is absent or malformed.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard cap on collected spans per trace; spans past the cap are
/// counted in [`TraceData::dropped_spans`] instead of stored, so a
/// pathological request (say, a 100k-line ingest batch) cannot balloon
/// memory.
pub const MAX_SPANS: usize = 512;

// ---------------------------------------------------------------------
// Ids and traceparent propagation
// ---------------------------------------------------------------------

/// One draw from the process entropy well: the std hasher's per-thread
/// random keys mixed with wall clock and a global counter. Not
/// cryptographic — trace ids need uniqueness, not unpredictability.
fn entropy() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    static CTR: AtomicU64 = AtomicU64::new(0);
    let mut h = RandomState::new().build_hasher();
    h.write_u64(CTR.fetch_add(1, Ordering::Relaxed));
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    h.write_u64(now);
    h.finish()
}

/// A fresh non-zero 128-bit trace id.
pub fn gen_trace_id() -> u128 {
    loop {
        let id = ((entropy() as u128) << 64) | entropy() as u128;
        if id != 0 {
            return id;
        }
    }
}

/// A fresh non-zero 64-bit span id (the wire-visible root span id when
/// no trace is being collected).
pub fn gen_span_id() -> u64 {
    loop {
        let id = entropy();
        if id != 0 {
            return id;
        }
    }
}

/// A parsed inbound `traceparent` header: the caller's trace id and
/// the span id of the caller-side parent span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 128-bit trace id shared by every span of the distributed
    /// trace. Never zero.
    pub trace_id: u128,
    /// The caller's span id — the remote parent of our root span.
    /// Never zero.
    pub parent_id: u64,
}

fn is_lower_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Parses a W3C `traceparent` header
/// (`00-{trace-id:32x}-{parent-id:16x}-{flags:2x}`). Returns `None`
/// for anything malformed: wrong field widths, uppercase hex, the
/// forbidden `ff` version, all-zero ids, or trailing fields on
/// version 00. A `None` means the server starts a fresh trace rather
/// than propagating garbage.
pub fn parse_traceparent(header: &str) -> Option<TraceContext> {
    let mut parts = header.trim().split('-');
    let version = parts.next()?;
    let trace = parts.next()?;
    let parent = parts.next()?;
    let flags = parts.next()?;
    if version.len() != 2 || version == "ff" || !is_lower_hex(version) {
        return None;
    }
    if trace.len() != 32 || !is_lower_hex(trace) {
        return None;
    }
    if parent.len() != 16 || !is_lower_hex(parent) {
        return None;
    }
    if flags.len() != 2 || !is_lower_hex(flags) {
        return None;
    }
    // Version 00 defines exactly four fields; later versions may
    // append more, which we ignore.
    if version == "00" && parts.next().is_some() {
        return None;
    }
    let trace_id = u128::from_str_radix(trace, 16).ok()?;
    let parent_id = u64::from_str_radix(parent, 16).ok()?;
    if trace_id == 0 || parent_id == 0 {
        return None;
    }
    Some(TraceContext {
        trace_id,
        parent_id,
    })
}

/// Renders the `traceparent` value the server echoes on a response:
/// version 00, the (propagated or generated) trace id, *our* root span
/// id as the parent for any downstream hop, and flags `01` when the
/// trace was collected (sampling candidate) or `00` when tracing was
/// off.
pub fn render_traceparent(trace_id: u128, span_id: u64, sampled: bool) -> String {
    format!(
        "00-{trace_id:032x}-{span_id:016x}-{:02x}",
        u8::from(sampled)
    )
}

// ---------------------------------------------------------------------
// Trace collection
// ---------------------------------------------------------------------

/// One closed span: a named, timed node of a trace's tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Id unique within the trace (allocated from 1 upward; parents
    /// always carry smaller ids than their children).
    pub id: u64,
    /// The parent span's id, or 0 for a root span.
    pub parent: u64,
    /// Span name (`"request"`, `"tenant_fanout"`, `"fit_build"`, …).
    pub name: &'static str,
    /// Start offset from the trace's birth, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
    /// Key=value attributes (shard index, batch line count, …).
    pub attrs: Vec<(&'static str, String)>,
}

#[derive(Debug)]
struct TraceInner {
    trace_id: u128,
    remote_parent: u64,
    kind: &'static str,
    started: Instant,
    next_id: AtomicU64,
    error: AtomicBool,
    dropped: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceInner {
    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn offset_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.started).as_nanos() as u64
    }

    fn push(&self, rec: SpanRecord) {
        let mut spans = match self.spans.lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        if spans.len() >= MAX_SPANS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(rec);
    }
}

/// A live trace collecting spans. Cloning is cheap (an `Arc` bump);
/// clones share the same span tree, so one clone can ride into a
/// background thread while the request path finishes the trace.
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Trace {
    /// Starts a trace now. `kind` labels the lifecycle (`"request"`,
    /// `"refit"`); `ctx` is the parsed inbound `traceparent`, whose
    /// trace id is adopted when present.
    pub fn start(kind: &'static str, ctx: Option<TraceContext>) -> Self {
        Self::start_at(kind, ctx, Instant::now())
    }

    /// Starts a trace whose clock-zero is `at` — the server uses the
    /// instant the request head finished parsing, so the `parse` span
    /// can be recorded retroactively at offset 0.
    pub fn start_at(kind: &'static str, ctx: Option<TraceContext>, at: Instant) -> Self {
        Self {
            inner: Arc::new(TraceInner {
                trace_id: ctx.map(|c| c.trace_id).unwrap_or_else(gen_trace_id),
                remote_parent: ctx.map(|c| c.parent_id).unwrap_or(0),
                kind,
                started: at,
                next_id: AtomicU64::new(1),
                error: AtomicBool::new(false),
                dropped: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The (propagated or generated) 128-bit trace id.
    pub fn trace_id(&self) -> u128 {
        self.inner.trace_id
    }

    /// Flags the trace as failed; the tail sampler keeps failed traces
    /// regardless of duration.
    pub fn set_error(&self) {
        self.inner.error.store(true, Ordering::Relaxed);
    }

    /// Opens the root span, back-dated to the trace's birth instant.
    pub fn root_span(&self, name: &'static str) -> TraceSpan {
        TraceSpan::open(Arc::clone(&self.inner), name, 0, self.inner.started)
    }

    /// Records an already-measured span retroactively (the server's
    /// `parse` span is timed before the trace object exists). Returns
    /// the allocated span id.
    pub fn add_span(&self, name: &'static str, parent: u64, start: Instant, dur: Duration) -> u64 {
        let id = self.inner.alloc_id();
        self.inner.push(SpanRecord {
            id,
            parent,
            name,
            start_ns: self.inner.offset_ns(start),
            dur_ns: dur.as_nanos() as u64,
            attrs: Vec::new(),
        });
        id
    }

    /// Closes the trace: total duration is measured now, collected
    /// spans are drained, and the trace-level `attrs` (request id,
    /// method, path, status, …) ride along. Call once, after every
    /// span guard has dropped.
    pub fn finish(&self, attrs: Vec<(&'static str, String)>) -> TraceData {
        let spans = {
            let mut guard = match self.inner.spans.lock() {
                Ok(s) => s,
                Err(p) => p.into_inner(),
            };
            std::mem::take(&mut *guard)
        };
        TraceData {
            trace_id: self.inner.trace_id,
            remote_parent: self.inner.remote_parent,
            kind: self.inner.kind,
            dur_ns: self.inner.started.elapsed().as_nanos() as u64,
            error: self.inner.error.load(Ordering::Relaxed),
            dropped_spans: self.inner.dropped.load(Ordering::Relaxed),
            attrs,
            spans,
        }
    }
}

/// An open span: records itself into the trace when dropped. Create
/// children with [`TraceSpan::child`]; ship attachment points across
/// threads with [`TraceSpan::handle`].
#[derive(Debug)]
pub struct TraceSpan {
    inner: Arc<TraceInner>,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, String)>,
}

impl TraceSpan {
    fn open(inner: Arc<TraceInner>, name: &'static str, parent: u64, start: Instant) -> Self {
        let id = inner.alloc_id();
        Self {
            inner,
            id,
            parent,
            name,
            start,
            attrs: Vec::new(),
        }
    }

    /// This span's id within the trace.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span starting now.
    pub fn child(&self, name: &'static str) -> TraceSpan {
        TraceSpan::open(Arc::clone(&self.inner), name, self.id, Instant::now())
    }

    /// Attaches a key=value attribute to this span.
    pub fn attr(&mut self, key: &'static str, value: String) {
        self.attrs.push((key, value));
    }

    /// Builder-style [`TraceSpan::attr`].
    pub fn with_attr(mut self, key: &'static str, value: String) -> Self {
        self.attrs.push((key, value));
        self
    }

    /// A cheap, cloneable, `Send` handle for attaching children to
    /// this span from other threads (the tenant fan-out workers).
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            inner: Arc::clone(&self.inner),
            id: self.id,
        }
    }

    /// Installs this span as the thread's current implicit parent (see
    /// [`current`]) until the returned guard drops.
    pub fn make_current(&self) -> CurrentGuard {
        self.handle().make_current()
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.inner.offset_ns(self.start),
            dur_ns: self.start.elapsed().as_nanos() as u64,
            attrs: std::mem::take(&mut self.attrs),
        };
        self.inner.push(rec);
    }
}

/// A cloneable, `Send` attachment point: "make children of span `id`
/// in this trace". The tenant fan-out hands one to each shard worker;
/// [`crate::record_stage`] uses the thread-current one to nest `fit_*`
/// stages under whatever triggered the fit.
#[derive(Debug, Clone)]
pub struct SpanHandle {
    inner: Arc<TraceInner>,
    id: u64,
}

impl SpanHandle {
    /// The id of the span this handle attaches children to.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span starting now.
    pub fn child(&self, name: &'static str) -> TraceSpan {
        TraceSpan::open(Arc::clone(&self.inner), name, self.id, Instant::now())
    }

    /// Records an already-measured child retroactively: the span is
    /// back-dated so it *ends* now and lasted `elapsed`. This is how
    /// pre-measured stage durations become trace spans.
    pub fn record(&self, name: &'static str, elapsed: Duration) {
        let id = self.inner.alloc_id();
        let end_ns = self.inner.offset_ns(Instant::now());
        let dur_ns = elapsed.as_nanos() as u64;
        self.inner.push(SpanRecord {
            id,
            parent: self.id,
            name,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
            attrs: Vec::new(),
        });
    }

    /// Installs this span as the thread's current implicit parent
    /// until the returned guard drops. Guards nest: the previous
    /// current span is restored on drop.
    pub fn make_current(&self) -> CurrentGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        CurrentGuard {
            _not_send: PhantomData,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<SpanHandle>> = const { RefCell::new(Vec::new()) };
}

/// The thread's current implicit parent span, if a traced region is
/// active on this thread. Cheap when tracing is off: one thread-local
/// read of an empty vector.
pub fn current() -> Option<SpanHandle> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Restores the previous thread-current span on drop. Deliberately
/// `!Send`: the guard must drop on the thread that created it.
#[derive(Debug)]
pub struct CurrentGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Attaches a pre-measured stage duration to the thread-current span,
/// if any. Called by [`crate::record_stage`] after the histogram
/// recording, so stage timings appear in traces with zero changes to
/// the recording sites.
pub(crate) fn attach_stage(stage: &'static str, elapsed: Duration) {
    if let Some(h) = current() {
        h.record(stage, elapsed);
    }
}

// ---------------------------------------------------------------------
// Finished traces and the tail sampler
// ---------------------------------------------------------------------

/// A finished, immutable trace: what the sampler stores and the
/// exporter renders.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// The 128-bit trace id (propagated or generated).
    pub trace_id: u128,
    /// The inbound `traceparent`'s span id, or 0 when none was sent.
    pub remote_parent: u64,
    /// Lifecycle label: `"request"` or `"refit"`.
    pub kind: &'static str,
    /// Total trace duration in nanoseconds.
    pub dur_ns: u64,
    /// Whether the trace ended in error (5xx, failed refit).
    pub error: bool,
    /// Spans discarded past the [`MAX_SPANS`] cap.
    pub dropped_spans: u64,
    /// Trace-level attributes (request id, method, path, status, …).
    pub attrs: Vec<(&'static str, String)>,
    /// The collected spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

#[derive(Debug)]
struct SamplerRing {
    cap: usize,
    traces: VecDeque<Arc<TraceData>>,
}

/// The process-global tail sampler: finished traces are offered here,
/// and only those at least `slow_ns` long — or flagged as errors — are
/// kept, newest-last, in a bounded ring served by
/// `GET /admin/debug/trace`.
#[derive(Debug)]
pub struct Sampler {
    /// Threshold in nanoseconds; `u64::MAX` means tracing is disabled
    /// (the one-branch fast path the serving loop checks per request).
    slow_ns: AtomicU64,
    seen: AtomicU64,
    kept: AtomicU64,
    ring: Mutex<SamplerRing>,
}

impl Sampler {
    fn new() -> Self {
        Self {
            slow_ns: AtomicU64::new(u64::MAX),
            seen: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            ring: Mutex::new(SamplerRing {
                cap: 64,
                traces: VecDeque::new(),
            }),
        }
    }

    /// Whether tracing is on — one relaxed atomic load, the only cost
    /// the serving loop pays per request when tracing is off.
    pub fn enabled(&self) -> bool {
        self.slow_ns.load(Ordering::Relaxed) != u64::MAX
    }

    /// Enables tracing: keep traces at least `slow_ms` long (0 keeps
    /// everything) in a ring of at most `capacity` traces.
    pub fn configure(&self, slow_ms: u64, capacity: usize) {
        let mut ring = self.lock_ring();
        ring.cap = capacity;
        while ring.traces.len() > capacity {
            ring.traces.pop_front();
        }
        drop(ring);
        self.slow_ns
            .store(slow_ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Disables tracing and empties the ring (used by tests; servers
    /// never turn a neighbor's tracing off).
    pub fn disable(&self) {
        self.slow_ns.store(u64::MAX, Ordering::Relaxed);
        self.lock_ring().traces.clear();
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, SamplerRing> {
        match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Offers a finished trace. Returns the retained `Arc` when the
    /// trace was slow or failed and therefore kept, `None` when it was
    /// discarded (the common case — that is the point of tail
    /// sampling).
    pub fn offer(&self, trace: TraceData) -> Option<Arc<TraceData>> {
        self.seen.fetch_add(1, Ordering::Relaxed);
        let slow_ns = self.slow_ns.load(Ordering::Relaxed);
        if slow_ns == u64::MAX || (trace.dur_ns < slow_ns && !trace.error) {
            return None;
        }
        self.kept.fetch_add(1, Ordering::Relaxed);
        let kept = Arc::new(trace);
        let mut ring = self.lock_ring();
        if ring.cap == 0 {
            return Some(kept);
        }
        if ring.traces.len() == ring.cap {
            ring.traces.pop_front();
        }
        ring.traces.push_back(Arc::clone(&kept));
        Some(kept)
    }

    /// The retained traces, oldest first.
    pub fn traces(&self) -> Vec<Arc<TraceData>> {
        self.lock_ring().traces.iter().cloned().collect()
    }

    /// Finished traces offered since boot.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Traces kept by the tail decision since boot.
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }
}

/// The process-global tail sampler (mirrors [`crate::global`] for
/// stage histograms): background refit traces from `mccatch-stream`
/// land in the same ring as request traces without any plumbing.
pub fn sampler() -> &'static Sampler {
    static GLOBAL: OnceLock<Sampler> = OnceLock::new();
    GLOBAL.get_or_init(Sampler::new)
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(&crate::json_escape(s));
    out.push('"');
}

/// Resolves every span's `[start, end]` interval, clamped to nest
/// inside its parent's (ids are allocated in creation order, so a
/// parent's id is always smaller than its children's and one ascending
/// pass suffices). Returns `(index, start_ns, end_ns)` per span.
fn clamped_intervals(spans: &[SpanRecord]) -> Vec<(usize, u64, u64)> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| spans[i].id);
    let mut bounds: HashMap<u64, (u64, u64)> = HashMap::with_capacity(spans.len());
    let mut out = Vec::with_capacity(spans.len());
    for i in order {
        let s = &spans[i];
        let raw = (s.start_ns, s.start_ns.saturating_add(s.dur_ns));
        let (lo, hi) = match bounds.get(&s.parent) {
            Some(&(ps, pe)) => {
                let lo = raw.0.clamp(ps, pe);
                let hi = raw.1.clamp(lo, pe);
                (lo, hi)
            }
            // Root span, or an unknown parent (dropped past the span
            // cap): keep the raw interval.
            None => raw,
        };
        bounds.insert(s.id, (lo, hi));
        out.push((i, lo, hi));
    }
    out
}

/// Renders finished traces as Chrome trace-event JSON —
/// `{"displayTimeUnit":"ms","traceEvents":[…]}` — loadable in Perfetto
/// or `chrome://tracing`. Each trace gets its own `tid` (named by a
/// thread-name metadata event carrying the trace id, kind, and
/// trace-level attributes); spans become `"ph":"X"` complete events
/// whose microsecond intervals nest inside their parents'.
pub fn chrome_trace_json<'a, I>(traces: I) -> String
where
    I: IntoIterator<Item = &'a TraceData>,
{
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };
    for (t_idx, trace) in traces.into_iter().enumerate() {
        let tid = t_idx + 1;
        // Thread-name metadata: how Perfetto labels the track.
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        let label = format!(
            "{} {:032x} ({:.3} ms{})",
            trace.kind,
            trace.trace_id,
            trace.dur_ns as f64 / 1e6,
            if trace.error { ", error" } else { "" }
        );
        push_json_str(&mut out, &label);
        let _ = write!(out, ",\"trace_id\":\"{:032x}\"", trace.trace_id);
        if trace.remote_parent != 0 {
            let _ = write!(out, ",\"remote_parent\":\"{:016x}\"", trace.remote_parent);
        }
        if trace.dropped_spans > 0 {
            let _ = write!(out, ",\"dropped_spans\":{}", trace.dropped_spans);
        }
        for (k, v) in &trace.attrs {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push_str("}}");
        for (i, lo, hi) in clamped_intervals(&trace.spans) {
            let s = &trace.spans[i];
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"span_id\":{},\"parent_id\":{}",
                crate::json_escape(s.name),
                crate::json_escape(trace.kind),
                lo as f64 / 1e3,
                (hi - lo) as f64 / 1e3,
                s.id,
                s.parent,
            );
            for (k, v) in &s.attrs {
                out.push(',');
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

/// Renders a finished trace's spans as one compact JSON array —
/// `[{"name":…,"id":…,"parent":…,"start_us":…,"dur_us":…},…]` — for
/// embedding in an NDJSON access-log line.
pub fn spans_json(trace: &TraceData) -> String {
    let mut out = String::with_capacity(64 * trace.spans.len() + 2);
    out.push('[');
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"start_us\":{:.3},\"dur_us\":{:.3}}}",
            crate::json_escape(s.name),
            s.id,
            s.parent,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips_and_rejects_malformed_headers() {
        let tid = 0x0af7651916cd43dd8448eb211c80319cu128;
        let sid = 0x00f067aa0ba902b7u64;
        let header = render_traceparent(tid, sid, true);
        assert_eq!(
            header,
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01"
        );
        let ctx = parse_traceparent(&header).expect("round trip");
        assert_eq!(ctx.trace_id, tid);
        assert_eq!(ctx.parent_id, sid);

        for bad in [
            "",
            "00",
            "00-abc-def-01",
            // uppercase hex
            "00-0AF7651916CD43DD8448EB211C80319C-00f067aa0ba902b7-01",
            // all-zero ids
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
            // forbidden version
            "ff-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01",
            // version 00 with trailing field
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01-extra",
            // non-hex
            "00-0af7651916cd43dd8448eb211c80319g-00f067aa0ba902b7-01",
        ] {
            assert!(parse_traceparent(bad).is_none(), "accepted {bad:?}");
        }
        // A future version may carry trailing fields.
        assert!(
            parse_traceparent("01-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01-x")
                .is_some()
        );
    }

    #[test]
    fn generated_ids_are_nonzero_and_distinct() {
        let a = gen_trace_id();
        let b = gen_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(gen_span_id(), 0);
    }

    #[test]
    fn span_tree_collects_ids_parents_offsets_and_attrs() {
        let trace = Trace::start("request", None);
        {
            let root = trace.root_span("request");
            {
                let mut child = root.child("handle");
                child.attr("endpoint", "score".into());
                std::thread::sleep(Duration::from_millis(2));
                let grand = child.child("score_batch").with_attr("lines", "3".into());
                drop(grand);
            }
            trace.add_span(
                "parse",
                root.id(),
                trace_started(&trace),
                Duration::from_micros(5),
            );
        }
        let data = trace.finish(vec![("id", "req-1".into())]);
        assert_eq!(data.spans.len(), 4);
        assert!(!data.error);
        assert_eq!(data.attrs, vec![("id", "req-1".to_owned())]);

        let by_name = |n: &str| data.spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("request");
        let handle = by_name("handle");
        let batch = by_name("score_batch");
        let parse = by_name("parse");
        assert_eq!(root.parent, 0);
        assert_eq!(handle.parent, root.id);
        assert_eq!(batch.parent, handle.id);
        assert_eq!(parse.parent, root.id);
        assert_eq!(root.start_ns, 0);
        assert!(handle.dur_ns >= 2_000_000, "slept 2ms: {}", handle.dur_ns);
        assert!(root.dur_ns >= handle.dur_ns);
        assert!(handle.attrs.contains(&("endpoint", "score".to_owned())));
        assert!(batch.attrs.contains(&("lines", "3".to_owned())));

        // Ids unique, parents allocated before children.
        let mut ids: Vec<u64> = data.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), data.spans.len());
        for s in &data.spans {
            assert!(s.parent < s.id);
        }
    }

    fn trace_started(trace: &Trace) -> Instant {
        trace.inner.started
    }

    #[test]
    fn span_cap_bounds_memory_and_counts_drops() {
        let trace = Trace::start("request", None);
        let root = trace.root_span("request");
        for _ in 0..(MAX_SPANS + 10) {
            drop(root.child("score"));
        }
        drop(root);
        let data = trace.finish(Vec::new());
        assert_eq!(data.spans.len(), MAX_SPANS);
        // 10 children past the cap plus the root itself.
        assert_eq!(data.dropped_spans, 11);
    }

    #[test]
    fn handles_attach_children_across_threads() {
        let trace = Trace::start("request", None);
        let root = trace.root_span("request");
        let fanout = root.child("tenant_fanout");
        std::thread::scope(|scope| {
            for shard in 0..3u64 {
                let h = fanout.handle();
                scope.spawn(move || {
                    let mut s = h.child("shard_score");
                    s.attr("shard", shard.to_string());
                });
            }
        });
        drop(fanout);
        drop(root);
        let data = trace.finish(Vec::new());
        let fanout_id = data
            .spans
            .iter()
            .find(|s| s.name == "tenant_fanout")
            .unwrap()
            .id;
        let shards: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.name == "shard_score")
            .collect();
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.parent == fanout_id));
    }

    #[test]
    fn current_span_nests_and_restores_on_guard_drop() {
        assert!(current().is_none());
        let trace = Trace::start("request", None);
        let root = trace.root_span("request");
        {
            let _g = root.make_current();
            let top = current().expect("root current");
            assert_eq!(top.id(), root.id());
            let child = root.child("handle");
            {
                let _g2 = child.make_current();
                assert_eq!(current().unwrap().id(), child.id());
            }
            assert_eq!(current().unwrap().id(), root.id());
        }
        assert!(current().is_none());

        // attach_stage is a no-op without a current span…
        attach_stage("fit_build", Duration::from_millis(1));
        // …and attaches a back-dated child with one.
        {
            let _g = root.make_current();
            attach_stage("fit_build", Duration::from_millis(1));
        }
        drop(root);
        let data = trace.finish(Vec::new());
        let fits: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.name == "fit_build")
            .collect();
        assert_eq!(fits.len(), 1);
        assert_eq!(fits[0].dur_ns, 1_000_000);
    }

    #[test]
    fn tail_sampler_keeps_slow_or_failed_traces_in_a_bounded_ring() {
        // A private sampler (not the global one) so tests stay
        // independent.
        let s = Sampler::new();
        assert!(!s.enabled());

        // Disabled: everything is discarded.
        let t = Trace::start("request", None).finish(Vec::new());
        assert!(s.offer(t).is_none());

        s.configure(10, 2);
        assert!(s.enabled());

        let mk = |dur_ms: u64, error: bool| {
            let trace = Trace::start("request", None);
            if error {
                trace.set_error();
            }
            let mut data = trace.finish(Vec::new());
            data.dur_ns = dur_ms * 1_000_000;
            data
        };
        assert!(s.offer(mk(5, false)).is_none(), "fast and clean: dropped");
        assert!(s.offer(mk(50, false)).is_some(), "slow: kept");
        assert!(s.offer(mk(5, true)).is_some(), "error: kept despite speed");
        assert!(s.offer(mk(10, false)).is_some(), "at threshold: kept");
        // Includes the offer made while disabled.
        assert_eq!(s.seen(), 5);
        assert_eq!(s.kept(), 3);
        // Ring capacity 2: the oldest kept trace was evicted.
        assert_eq!(s.traces().len(), 2);

        s.disable();
        assert!(!s.enabled());
        assert!(s.traces().is_empty());
    }

    #[test]
    fn chrome_export_emits_nested_complete_events() {
        let trace = Trace::start("request", None);
        let root = trace.root_span("request");
        drop(root.child("handle"));
        drop(root);
        let data = trace.finish(vec![("id", "r-1".into())]);
        let json = chrome_trace_json([&data]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"request\""), "{json}");
        assert!(json.contains("\"name\":\"handle\""), "{json}");
        assert!(json.contains("\"id\":\"r-1\""), "{json}");
        assert!(json.contains(&format!("\"trace_id\":\"{:032x}\"", data.trace_id)));

        let line = spans_json(&data);
        assert!(line.starts_with('[') && line.ends_with(']'));
        assert!(line.contains("\"name\":\"handle\""), "{line}");
    }

    #[test]
    fn clamping_forces_children_inside_their_parents() {
        // Hand-built records with a child leaking past its parent's
        // end: the export must clamp it back inside.
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "request",
                start_ns: 1_000,
                dur_ns: 10_000,
                attrs: Vec::new(),
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "handle",
                start_ns: 500,
                dur_ns: 50_000,
                attrs: Vec::new(),
            },
        ];
        let bounds = clamped_intervals(&spans);
        let child = bounds.iter().find(|(i, _, _)| *i == 1).unwrap();
        assert_eq!((child.1, child.2), (1_000, 11_000));
    }
}
