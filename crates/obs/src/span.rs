//! Stage spans: named wall-clock timings of pipeline stages, recorded
//! into per-stage [`Histogram`]s.
//!
//! The stage names form a closed vocabulary ([`STAGES`]) spanning the
//! whole stack — the fit pipeline in `mccatch-core`, refit and model
//! swap in `mccatch-stream`, shard fan-out and restore in
//! `mccatch-tenant`, and snapshot save/load in `mccatch-persist`. All
//! layers record into one process-global [`StageRecorder`]
//! ([`global()`]), which `/metrics` scrapes as the
//! `mccatch_stage_duration_seconds` family.
//!
//! Recording sites that already measure a `Duration` call
//! [`record_stage`] directly; sites that bracket a region use the
//! [`Span`] guard, which records on drop. Both are no-ops in cost terms
//! off the serving hot path, and the [`Recorder`] trait's
//! [`RecorderOff`] implementation lets embedders stub timing out
//! entirely.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Every stage name the stack records, in exposition order.
///
/// * `fit_build` — reference-tree construction (`mccatch-core`).
/// * `fit_counting` — neighbor counting over the radius grid.
/// * `fit_plotting` — oracle-plot assembly and MDL plateau search.
/// * `fit_gelling` — microcluster gelling (`spot_microclusters`).
/// * `fit_scoring` — per-microcluster scoring.
/// * `stream_refit` — a full background refit (`mccatch-stream`).
/// * `stream_swap` — publishing the refit model into the store.
/// * `tenant_fanout` — scatter/gather of a query across shards.
/// * `tenant_restore` — rebuilding one tenant at warm restart.
/// * `persist_save` — serializing a model snapshot.
/// * `persist_load` — deserializing a model snapshot.
pub const STAGES: &[&str] = &[
    "fit_build",
    "fit_counting",
    "fit_plotting",
    "fit_gelling",
    "fit_scoring",
    "stream_refit",
    "stream_swap",
    "tenant_fanout",
    "tenant_restore",
    "persist_save",
    "persist_load",
];

/// The [`STAGES`] vocabulary as a compile-time enum: the discriminant
/// *is* the histogram index, so hot recording sites resolve a stage to
/// its slot with a jump table instead of a linear name scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum StageId {
    /// `fit_build` — reference-tree construction.
    FitBuild = 0,
    /// `fit_counting` — neighbor counting over the radius grid.
    FitCounting = 1,
    /// `fit_plotting` — oracle-plot assembly and MDL plateau search.
    FitPlotting = 2,
    /// `fit_gelling` — microcluster gelling.
    FitGelling = 3,
    /// `fit_scoring` — per-microcluster scoring.
    FitScoring = 4,
    /// `stream_refit` — a full background refit.
    StreamRefit = 5,
    /// `stream_swap` — publishing the refit model into the store.
    StreamSwap = 6,
    /// `tenant_fanout` — scatter/gather of a query across shards.
    TenantFanout = 7,
    /// `tenant_restore` — rebuilding one tenant at warm restart.
    TenantRestore = 8,
    /// `persist_save` — serializing a model snapshot.
    PersistSave = 9,
    /// `persist_load` — deserializing a model snapshot.
    PersistLoad = 10,
}

impl StageId {
    /// Every stage, in [`STAGES`] (exposition) order.
    pub const ALL: [StageId; 11] = [
        StageId::FitBuild,
        StageId::FitCounting,
        StageId::FitPlotting,
        StageId::FitGelling,
        StageId::FitScoring,
        StageId::StreamRefit,
        StageId::StreamSwap,
        StageId::TenantFanout,
        StageId::TenantRestore,
        StageId::PersistSave,
        StageId::PersistLoad,
    ];

    /// This stage's index into [`STAGES`] and the recorder's
    /// histograms.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The exposition name, the same `&'static str` as the matching
    /// [`STAGES`] entry.
    pub const fn name(self) -> &'static str {
        STAGES[self as usize]
    }

    /// Resolves a stage name to its id — a compiler-generated string
    /// match, not a linear scan. `None` for names outside the closed
    /// vocabulary.
    pub fn from_name(name: &str) -> Option<StageId> {
        Some(match name {
            "fit_build" => StageId::FitBuild,
            "fit_counting" => StageId::FitCounting,
            "fit_plotting" => StageId::FitPlotting,
            "fit_gelling" => StageId::FitGelling,
            "fit_scoring" => StageId::FitScoring,
            "stream_refit" => StageId::StreamRefit,
            "stream_swap" => StageId::StreamSwap,
            "tenant_fanout" => StageId::TenantFanout,
            "tenant_restore" => StageId::TenantRestore,
            "persist_save" => StageId::PersistSave,
            "persist_load" => StageId::PersistLoad,
            _ => return None,
        })
    }
}

/// A sink for stage timings. The serving stack records through this
/// trait so embedders can route timings elsewhere or disable them.
pub trait Recorder: Send + Sync {
    /// Records that `stage` (a [`STAGES`] member) took `elapsed`.
    fn record_stage(&self, stage: &'static str, elapsed: Duration);

    /// `false` when recording is a guaranteed no-op, letting callers
    /// skip even the clock reads.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op recorder: timing disabled, zero cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecorderOff;

impl Recorder for RecorderOff {
    fn record_stage(&self, _stage: &'static str, _elapsed: Duration) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A [`Recorder`] keeping one [`Histogram`] per [`STAGES`] entry.
#[derive(Debug)]
pub struct StageRecorder {
    hists: Vec<Histogram>,
}

impl Default for StageRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl StageRecorder {
    /// A recorder with one empty histogram per stage.
    pub fn new() -> Self {
        Self {
            hists: STAGES.iter().map(|_| Histogram::new()).collect(),
        }
    }

    /// Snapshots every stage histogram, in [`STAGES`] order.
    pub fn snapshot(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        STAGES
            .iter()
            .zip(&self.hists)
            .map(|(s, h)| (*s, h.snapshot()))
            .collect()
    }
}

impl StageRecorder {
    /// Records into `stage`'s histogram by index — no name resolution.
    pub fn record_stage_id(&self, stage: StageId, elapsed: Duration) {
        self.hists[stage.index()].record(elapsed);
    }
}

impl Recorder for StageRecorder {
    fn record_stage(&self, stage: &'static str, elapsed: Duration) {
        // Name resolution is a compiler-generated string match
        // (StageId::from_name), not a linear scan; unknown names are
        // ignored so embedder-side recorders stay forgiving.
        if let Some(id) = StageId::from_name(stage) {
            self.record_stage_id(id, elapsed);
        }
    }
}

/// The process-global stage recorder every layer records into and
/// `/metrics` scrapes.
pub fn global() -> &'static StageRecorder {
    static GLOBAL: OnceLock<StageRecorder> = OnceLock::new();
    GLOBAL.get_or_init(StageRecorder::new)
}

/// Records a pre-measured stage duration into the global recorder —
/// and, when the calling thread is inside a traced region, also
/// attaches it as a child span of the thread-current trace span (see
/// [`crate::trace::current`]). This is how the five `fit_*` stages
/// become children of whichever trace triggered the fit with zero
/// changes to the fit pipeline; with no trace active the behavior is
/// exactly the global histogram recording, as before.
pub fn record_stage(stage: &'static str, elapsed: Duration) {
    debug_assert!(
        StageId::from_name(stage).is_some(),
        "unknown stage name {stage:?}: not a STAGES member"
    );
    global().record_stage(stage, elapsed);
    crate::trace::attach_stage(stage, elapsed);
}

/// A drop guard that times a region into the global recorder:
/// `let _span = Span::enter("persist_save");`.
#[derive(Debug)]
pub struct Span {
    stage: &'static str,
    start: Instant,
}

impl Span {
    /// Starts timing `stage` now. Debug builds assert `stage` is a
    /// [`STAGES`] member, so a typo'd name fails loudly in tests
    /// instead of silently recording nothing.
    pub fn enter(stage: &'static str) -> Self {
        debug_assert!(
            StageId::from_name(stage).is_some(),
            "unknown stage name {stage:?}: not a STAGES member"
        );
        Self {
            stage,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        record_stage(self.stage, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_buckets_by_stage_and_ignores_unknown_names() {
        let r = StageRecorder::new();
        r.record_stage("fit_counting", Duration::from_micros(5));
        r.record_stage("fit_counting", Duration::from_micros(5));
        r.record_stage("persist_save", Duration::from_millis(1));
        r.record_stage("not_a_stage", Duration::from_secs(1));
        let snap = r.snapshot();
        assert_eq!(snap.len(), STAGES.len());
        let count_of = |name: &str| {
            snap.iter()
                .find(|(s, _)| *s == name)
                .map(|(_, h)| h.count())
                .unwrap()
        };
        assert_eq!(count_of("fit_counting"), 2);
        assert_eq!(count_of("persist_save"), 1);
        assert_eq!(count_of("fit_build"), 0);
        assert_eq!(snap.iter().map(|(_, h)| h.count()).sum::<u64>(), 3);
    }

    #[test]
    fn span_records_on_drop_into_the_global_recorder() {
        let before: u64 = global()
            .snapshot()
            .iter()
            .find(|(s, _)| *s == "stream_swap")
            .map(|(_, h)| h.count())
            .unwrap();
        {
            let _span = Span::enter("stream_swap");
        }
        let after: u64 = global()
            .snapshot()
            .iter()
            .find(|(s, _)| *s == "stream_swap")
            .map(|(_, h)| h.count())
            .unwrap();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn stage_ids_mirror_the_stages_vocabulary_exactly() {
        assert_eq!(StageId::ALL.len(), STAGES.len());
        for (i, (id, name)) in StageId::ALL.iter().zip(STAGES).enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(id.name(), *name);
            assert_eq!(StageId::from_name(name), Some(*id));
        }
        assert_eq!(StageId::from_name("not_a_stage"), None);
        assert_eq!(StageId::from_name(""), None);
    }

    #[test]
    fn record_stage_id_and_record_stage_land_in_the_same_slot() {
        let r = StageRecorder::new();
        r.record_stage_id(StageId::TenantFanout, Duration::from_micros(7));
        r.record_stage("tenant_fanout", Duration::from_micros(7));
        let snap = r.snapshot();
        let (name, h) = &snap[StageId::TenantFanout.index()];
        assert_eq!(*name, "tenant_fanout");
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a STAGES member")]
    fn span_enter_rejects_typod_stage_names_in_debug_builds() {
        let _ = Span::enter("fit_buidl");
    }

    #[test]
    fn recorder_off_is_disabled() {
        assert!(!RecorderOff.enabled());
        assert!(StageRecorder::new().enabled());
        RecorderOff.record_stage("fit_build", Duration::from_secs(1));
    }
}
