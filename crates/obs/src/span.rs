//! Stage spans: named wall-clock timings of pipeline stages, recorded
//! into per-stage [`Histogram`]s.
//!
//! The stage names form a closed vocabulary ([`STAGES`]) spanning the
//! whole stack — the fit pipeline in `mccatch-core`, refit and model
//! swap in `mccatch-stream`, shard fan-out and restore in
//! `mccatch-tenant`, and snapshot save/load in `mccatch-persist`. All
//! layers record into one process-global [`StageRecorder`]
//! ([`global()`]), which `/metrics` scrapes as the
//! `mccatch_stage_duration_seconds` family.
//!
//! Recording sites that already measure a `Duration` call
//! [`record_stage`] directly; sites that bracket a region use the
//! [`Span`] guard, which records on drop. Both are no-ops in cost terms
//! off the serving hot path, and the [`Recorder`] trait's
//! [`RecorderOff`] implementation lets embedders stub timing out
//! entirely.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Every stage name the stack records, in exposition order.
///
/// * `fit_build` — reference-tree construction (`mccatch-core`).
/// * `fit_counting` — neighbor counting over the radius grid.
/// * `fit_plotting` — oracle-plot assembly and MDL plateau search.
/// * `fit_gelling` — microcluster gelling (`spot_microclusters`).
/// * `fit_scoring` — per-microcluster scoring.
/// * `stream_refit` — a full background refit (`mccatch-stream`).
/// * `stream_swap` — publishing the refit model into the store.
/// * `tenant_fanout` — scatter/gather of a query across shards.
/// * `tenant_restore` — rebuilding one tenant at warm restart.
/// * `persist_save` — serializing a model snapshot.
/// * `persist_load` — deserializing a model snapshot.
pub const STAGES: &[&str] = &[
    "fit_build",
    "fit_counting",
    "fit_plotting",
    "fit_gelling",
    "fit_scoring",
    "stream_refit",
    "stream_swap",
    "tenant_fanout",
    "tenant_restore",
    "persist_save",
    "persist_load",
];

/// A sink for stage timings. The serving stack records through this
/// trait so embedders can route timings elsewhere or disable them.
pub trait Recorder: Send + Sync {
    /// Records that `stage` (a [`STAGES`] member) took `elapsed`.
    fn record_stage(&self, stage: &'static str, elapsed: Duration);

    /// `false` when recording is a guaranteed no-op, letting callers
    /// skip even the clock reads.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op recorder: timing disabled, zero cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecorderOff;

impl Recorder for RecorderOff {
    fn record_stage(&self, _stage: &'static str, _elapsed: Duration) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A [`Recorder`] keeping one [`Histogram`] per [`STAGES`] entry.
#[derive(Debug)]
pub struct StageRecorder {
    hists: Vec<Histogram>,
}

impl Default for StageRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl StageRecorder {
    /// A recorder with one empty histogram per stage.
    pub fn new() -> Self {
        Self {
            hists: STAGES.iter().map(|_| Histogram::new()).collect(),
        }
    }

    /// Snapshots every stage histogram, in [`STAGES`] order.
    pub fn snapshot(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        STAGES
            .iter()
            .zip(&self.hists)
            .map(|(s, h)| (*s, h.snapshot()))
            .collect()
    }
}

impl Recorder for StageRecorder {
    fn record_stage(&self, stage: &'static str, elapsed: Duration) {
        // Stage recording sites are cold (refits, restores, snapshot
        // I/O), so a linear scan over ~a dozen names is fine.
        if let Some(i) = STAGES.iter().position(|s| *s == stage) {
            self.hists[i].record(elapsed);
        }
    }
}

/// The process-global stage recorder every layer records into and
/// `/metrics` scrapes.
pub fn global() -> &'static StageRecorder {
    static GLOBAL: OnceLock<StageRecorder> = OnceLock::new();
    GLOBAL.get_or_init(StageRecorder::new)
}

/// Records a pre-measured stage duration into the global recorder.
pub fn record_stage(stage: &'static str, elapsed: Duration) {
    global().record_stage(stage, elapsed);
}

/// A drop guard that times a region into the global recorder:
/// `let _span = Span::enter("persist_save");`.
#[derive(Debug)]
pub struct Span {
    stage: &'static str,
    start: Instant,
}

impl Span {
    /// Starts timing `stage` (a [`STAGES`] member) now.
    pub fn enter(stage: &'static str) -> Self {
        Self {
            stage,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        record_stage(self.stage, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_buckets_by_stage_and_ignores_unknown_names() {
        let r = StageRecorder::new();
        r.record_stage("fit_counting", Duration::from_micros(5));
        r.record_stage("fit_counting", Duration::from_micros(5));
        r.record_stage("persist_save", Duration::from_millis(1));
        r.record_stage("not_a_stage", Duration::from_secs(1));
        let snap = r.snapshot();
        assert_eq!(snap.len(), STAGES.len());
        let count_of = |name: &str| {
            snap.iter()
                .find(|(s, _)| *s == name)
                .map(|(_, h)| h.count())
                .unwrap()
        };
        assert_eq!(count_of("fit_counting"), 2);
        assert_eq!(count_of("persist_save"), 1);
        assert_eq!(count_of("fit_build"), 0);
        assert_eq!(snap.iter().map(|(_, h)| h.count()).sum::<u64>(), 3);
    }

    #[test]
    fn span_records_on_drop_into_the_global_recorder() {
        let before: u64 = global()
            .snapshot()
            .iter()
            .find(|(s, _)| *s == "stream_swap")
            .map(|(_, h)| h.count())
            .unwrap();
        {
            let _span = Span::enter("stream_swap");
        }
        let after: u64 = global()
            .snapshot()
            .iter()
            .find(|(s, _)| *s == "stream_swap")
            .map(|(_, h)| h.count())
            .unwrap();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn recorder_off_is_disabled() {
        assert!(!RecorderOff.enabled());
        assert!(StageRecorder::new().enabled());
        RecorderOff.record_stage("fit_build", Duration::from_secs(1));
    }
}
