//! A structured NDJSON logger and the slow-request ring buffer.
//!
//! Every log line is one JSON object: a monotonic millisecond timestamp
//! (`ts_ms`, measured from logger creation so lines order correctly
//! even across wall-clock steps), a process-unique sequence number, a
//! level, an event name, and caller-supplied fields. Rendering is
//! separated from writing so a rendered line can be reused — the server
//! renders each access-log line once, writes it to the sink, and pushes
//! the same string into the slow-request [`Ring`] when the request
//! crossed the threshold.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic chatter.
    Debug,
    /// Normal operation (access-log lines live here).
    Info,
    /// Something degraded but the request was served.
    Warn,
    /// A request or subsystem failed.
    Error,
}

impl Level {
    /// The lowercase name used in the `"level"` field.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Where rendered lines go.
enum Sink {
    /// Drop everything (rendering still works, for the slow ring).
    Off,
    /// One `eprintln!`-style write per line.
    Stderr,
    /// Append to a file, writes serialized by the mutex.
    File(Mutex<File>),
    /// Append to an arbitrary writer — embedders, and the failing-sink
    /// tests that exercise the dropped-line counter.
    Writer(Mutex<Box<dyn Write + Send>>),
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Sink::Off => "Off",
            Sink::Stderr => "Stderr",
            Sink::File(_) => "File",
            Sink::Writer(_) => "Writer",
        })
    }
}

/// A leveled structured logger emitting one JSON object per line.
#[derive(Debug)]
pub struct Logger {
    min: Level,
    sink: Sink,
    start: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl Logger {
    /// A logger that drops every line (rendering still works).
    pub fn off() -> Self {
        Self::with_sink(Level::Info, Sink::Off)
    }

    /// A logger writing lines at `min` or above to stderr.
    pub fn stderr(min: Level) -> Self {
        Self::with_sink(min, Sink::Stderr)
    }

    /// A logger appending lines at `min` or above to the file at
    /// `path` (created if missing).
    pub fn file(path: &Path, min: Level) -> io::Result<Self> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self::with_sink(min, Sink::File(Mutex::new(f))))
    }

    /// A logger writing lines at `min` or above to an arbitrary
    /// writer, writes serialized by an internal mutex.
    pub fn writer(min: Level, sink: Box<dyn Write + Send>) -> Self {
        Self::with_sink(min, Sink::Writer(Mutex::new(sink)))
    }

    fn with_sink(min: Level, sink: Sink) -> Self {
        Self {
            min,
            sink,
            start: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether a line at `level` would actually be written.
    pub fn enabled(&self, level: Level) -> bool {
        level >= self.min && !matches!(self.sink, Sink::Off)
    }

    /// Lines that cleared the level gate but failed to reach the sink
    /// (I/O error on the file/writer, or a failed stderr write).
    /// Logging never takes down serving, but the drops are counted —
    /// `/metrics` exposes this as `mccatch_log_dropped_lines_total`.
    pub fn dropped_lines(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Renders one line — `{"ts_ms":…,"seq":…,"level":…,"event":…,…}`
    /// — without writing it. Always available, regardless of sink and
    /// level, so callers can reuse the rendering (e.g. the slow ring).
    pub fn render(&self, level: Level, event: &str, fields: &Fields) -> String {
        let ts_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(96 + fields.buf.len());
        let _ = write!(
            line,
            "{{\"ts_ms\":{ts_ms:.3},\"seq\":{seq},\"level\":\"{}\",\"event\":\"{}\"",
            level.name(),
            json_escape(event)
        );
        line.push_str(&fields.buf);
        line.push('}');
        line
    }

    /// Writes an already-rendered line at `level` to the sink, if the
    /// level clears the threshold. A failed write is dropped — logging
    /// must never take down serving — but counted
    /// ([`Logger::dropped_lines`]).
    pub fn write_line(&self, level: Level, line: &str) {
        if !self.enabled(level) {
            return;
        }
        let written = match &self.sink {
            Sink::Off => Ok(()),
            Sink::Stderr => {
                let mut err = io::stderr().lock();
                writeln!(err, "{line}")
            }
            Sink::File(f) => {
                let mut f = match f.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                writeln!(f, "{line}")
            }
            Sink::Writer(w) => {
                let mut w = match w.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                writeln!(w, "{line}")
            }
        };
        if written.is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders and writes in one call, returning the rendered line.
    pub fn log(&self, level: Level, event: &str, fields: &Fields) -> String {
        let line = self.render(level, event, fields);
        self.write_line(level, &line);
        line
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A builder for the caller-supplied fields of a log line. Keys are
/// appended in call order; callers must not repeat the reserved keys
/// (`ts_ms`, `seq`, `level`, `event`).
#[derive(Debug, Default, Clone)]
pub struct Fields {
    buf: String,
}

impl Fields {
    /// No fields.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let _ = write!(
            self.buf,
            ",\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        );
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        let _ = write!(self.buf, ",\"{}\":{}", json_escape(key), value);
        self
    }

    /// Appends a float field (non-finite values become `null`).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            let _ = write!(self.buf, ",\"{}\":{}", json_escape(key), value);
        } else {
            let _ = write!(self.buf, ",\"{}\":null", json_escape(key));
        }
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        let _ = write!(self.buf, ",\"{}\":{}", json_escape(key), value);
        self
    }

    /// Appends a pre-rendered JSON value verbatim — the caller
    /// guarantees `json` is valid JSON (the server embeds a trace's
    /// span array this way).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        let _ = write!(self.buf, ",\"{}\":{}", json_escape(key), json);
        self
    }
}

/// A bounded ring of rendered log lines — the in-memory buffer behind
/// `GET /admin/debug/slow`. Oldest lines are evicted first.
#[derive(Debug)]
pub struct Ring {
    cap: usize,
    lines: Mutex<VecDeque<String>>,
}

impl Ring {
    /// An empty ring holding at most `cap` lines (`cap == 0` keeps
    /// nothing).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            lines: Mutex::new(VecDeque::with_capacity(cap.min(64))),
        }
    }

    /// Appends a line, evicting the oldest once full.
    pub fn push(&self, line: String) {
        if self.cap == 0 {
            return;
        }
        let mut lines = match self.lines.lock() {
            Ok(l) => l,
            Err(p) => p.into_inner(),
        };
        if lines.len() == self.cap {
            lines.pop_front();
        }
        lines.push_back(line);
    }

    /// A copy of the buffered lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        match self.lines.lock() {
            Ok(l) => l.iter().cloned().collect(),
            Err(p) => p.into_inner().iter().cloned().collect(),
        }
    }

    /// Number of lines currently buffered.
    pub fn len(&self) -> usize {
        match self.lines.lock() {
            Ok(l) => l.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    /// Whether the ring holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_lines_are_json_objects_with_reserved_keys_first() {
        let log = Logger::off();
        let line = log.render(
            Level::Info,
            "request",
            &Fields::new()
                .str("path", "/score")
                .u64("status", 200)
                .f64("duration_ms", 1.25)
                .bool("slow", false),
        );
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"seq\":0"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"event\":\"request\""), "{line}");
        assert!(line.contains("\"path\":\"/score\""), "{line}");
        assert!(line.contains("\"status\":200"), "{line}");
        assert!(line.contains("\"duration_ms\":1.25"), "{line}");
        assert!(line.contains("\"slow\":false"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        // Sequence numbers are monotone per logger.
        let next = log.render(Level::Info, "request", &Fields::new());
        assert!(next.contains("\"seq\":1"), "{next}");
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        let line = Logger::off().render(
            Level::Warn,
            "weird \"event\"",
            &Fields::new().str("k\n", "v\\"),
        );
        assert!(line.contains("\"event\":\"weird \\\"event\\\"\""), "{line}");
        assert!(line.contains("\"k\\n\":\"v\\\\\""), "{line}");
    }

    #[test]
    fn levels_gate_the_sink_but_never_rendering() {
        let off = Logger::off();
        assert!(!off.enabled(Level::Error));
        assert!(!off.render(Level::Error, "x", &Fields::new()).is_empty());

        let err_only = Logger::with_sink(Level::Error, Sink::Off);
        assert!(!err_only.enabled(Level::Info));

        let dir = std::env::temp_dir().join(format!("mccatch-obs-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.ndjson");
        let file = Logger::file(&path, Level::Info).unwrap();
        assert!(file.enabled(Level::Info));
        assert!(!file.enabled(Level::Debug));
        file.log(Level::Info, "written", &Fields::new().u64("n", 1));
        file.log(Level::Debug, "dropped", &Fields::new());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"event\":\"written\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A writer that fails every write, for exercising the
    /// dropped-line counter.
    struct FailingSink;

    impl Write for FailingSink {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("sink unplugged"))
        }

        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("sink unplugged"))
        }
    }

    /// A writer appending into a shared buffer, so tests can read back
    /// what a `Sink::Writer` logger emitted.
    #[derive(Clone)]
    struct SharedSink(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failed_writes_are_dropped_but_counted() {
        let log = Logger::writer(Level::Info, Box::new(FailingSink));
        assert_eq!(log.dropped_lines(), 0);
        log.log(Level::Info, "a", &Fields::new());
        log.log(Level::Error, "b", &Fields::new().u64("n", 1));
        // Below the level gate: never offered to the sink, not a drop.
        log.log(Level::Debug, "c", &Fields::new());
        assert_eq!(log.dropped_lines(), 2);

        // A healthy writer sink drops nothing and receives the lines.
        let buf = SharedSink(std::sync::Arc::new(Mutex::new(Vec::new())));
        let ok = Logger::writer(Level::Info, Box::new(buf.clone()));
        assert!(ok.enabled(Level::Info));
        ok.log(Level::Info, "written", &Fields::new());
        assert_eq!(ok.dropped_lines(), 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"event\":\"written\""), "{text}");
    }

    #[test]
    fn raw_fields_embed_json_verbatim() {
        let line = Logger::off().render(
            Level::Info,
            "trace",
            &Fields::new().raw("spans", "[{\"name\":\"x\"}]"),
        );
        assert!(line.contains("\"spans\":[{\"name\":\"x\"}]"), "{line}");
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let ring = Ring::new(2);
        assert!(ring.is_empty());
        ring.push("a".into());
        ring.push("b".into());
        ring.push("c".into());
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.lines(), vec!["b".to_owned(), "c".to_owned()]);

        let none = Ring::new(0);
        none.push("x".into());
        assert!(none.is_empty());
    }
}
