//! Observability primitives for the MCCATCH serving stack: latency
//! histograms, stage-span timing, and structured NDJSON logging.
//!
//! The paper's headline claim is scalability (MCCATCH, ICDE 2024, is
//! "the fastest method that scales near-linearly"), so the repro needs
//! to *time* work, not just count it. This crate is the shared,
//! std-only toolbox the rest of the workspace records into:
//!
//! * [`Histogram`] — a lock-free log₂-bucketed latency histogram.
//!   Recording is two relaxed atomics (plus a compare-and-swap on new
//!   maxima), buckets are fixed so histograms merge by addition, and
//!   [`render_histogram`] emits the Prometheus
//!   `_bucket`/`_sum`/`_count` text exposition. `mccatch-server` keeps
//!   one per endpoint (and per tenant), plus per-NDJSON-line
//!   histograms for `/score` and `/ingest`.
//! * [`Span`] / [`Recorder`] — stage timing with a closed name
//!   vocabulary ([`STAGES`]): fit pipeline stages in `mccatch-core`,
//!   refit and swap latency in `mccatch-stream`, shard fan-out and
//!   restore in `mccatch-tenant`, snapshot save/load in
//!   `mccatch-persist`. Everything lands in the process-global
//!   [`StageRecorder`] ([`global()`]), scraped by `/metrics` as
//!   `mccatch_stage_duration_seconds`. [`RecorderOff`] is the no-op
//!   path for embedders that want zero overhead.
//! * [`Logger`] / [`Fields`] / [`Ring`] — a leveled structured logger
//!   writing one JSON object per line (monotonic timestamps, process
//!   sequence numbers) to stderr or a file, and the bounded
//!   slow-request ring buffer behind `GET /admin/debug/slow`. Failed
//!   writes are dropped — logging never takes down serving — but
//!   counted ([`Logger::dropped_lines`], exposed as
//!   `mccatch_log_dropped_lines_total`).
//! * [`trace`] — per-request tracing: a [`trace::Trace`] collects a
//!   tree of timed spans across the shard fan-out, a process-global
//!   tail [`trace::Sampler`] keeps only slow-or-failed traces, and
//!   [`trace::chrome_trace_json`] exports them as Perfetto-loadable
//!   Chrome trace-event JSON (`GET /admin/debug/trace`). W3C-style
//!   `traceparent` headers are parsed and echoed so the trace id ties
//!   into the caller's distributed context.
//!
//! ```
//! use mccatch_obs::{Histogram, Span};
//! use std::time::Duration;
//!
//! let h = Histogram::new();
//! h.record(Duration::from_micros(750));
//! h.record(Duration::from_millis(3));
//! let snap = h.snapshot();
//! assert_eq!(snap.count(), 2);
//! assert!(snap.quantile(0.99) >= snap.quantile(0.5));
//!
//! {
//!     let _span = Span::enter("persist_save"); // records on drop
//! }
//! ```

#![deny(missing_docs)]

mod hist;
mod log;
mod span;
pub mod trace;

pub use hist::{render_histogram, Histogram, HistogramSnapshot, BUCKETS, FIRST_POW, LAST_POW};
pub use log::{json_escape, Fields, Level, Logger, Ring};
pub use span::{global, record_stage, Recorder, RecorderOff, Span, StageId, StageRecorder, STAGES};
