//! Property tests for the histogram exposition (the Prometheus
//! contract) and for shard merging.
//!
//! For arbitrary sample sets, the rendered `histogram` family must
//! satisfy the invariants every Prometheus scraper assumes: `_bucket`
//! counts are cumulative and monotone non-decreasing in `le` order, a
//! `le="+Inf"` bucket is present and last, and its value equals
//! `_count`. And because bucket bounds are fixed, merging per-shard
//! histograms must be *exactly* the histogram of the merged samples —
//! the identity that lets `/metrics` aggregate tenant shards without
//! resampling.

use mccatch_obs::{render_histogram, Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;

/// Nanosecond samples spread across the whole bucket range, including
/// sub-first-bucket and overflow values.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    let sample = (0u32..40, 0.0..1.0f64)
        .prop_map(|(pow, fill)| ((1u64 << pow) as f64 * (0.5 + fill)) as u64);
    prop::collection::vec(sample, 0..120)
}

fn hist_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record_nanos(s);
    }
    h.snapshot()
}

/// Parses one rendered family back out of the exposition text:
/// `(bucket (le, cumulative_count) pairs in order, _count value)`.
fn parse_family(text: &str, name: &str) -> (Vec<(String, u64)>, u64) {
    let mut buckets = Vec::new();
    let mut count = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{")) {
            let (labels, value) = rest.split_once("} ").expect("bucket line shape");
            let le = labels
                .split(',')
                .find_map(|kv| kv.strip_prefix("le=\""))
                .and_then(|v| v.strip_suffix('"'))
                .expect("le label present");
            buckets.push((le.to_owned(), value.parse().expect("bucket count")));
        } else if let Some(rest) = line.strip_prefix(&format!("{name}_count")) {
            count = Some(rest.trim().parse().expect("count value"));
        }
    }
    (buckets, count.expect("_count line present"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exported_histograms_satisfy_the_prometheus_invariants(samples in samples()) {
        let snap = hist_of(&samples);
        let mut out = String::new();
        render_histogram(&mut out, "t_seconds", "test.", &[(String::new(), snap)]);

        prop_assert!(out.contains("# TYPE t_seconds histogram"));
        prop_assert!(out.contains("# HELP t_seconds"));

        let (buckets, count) = parse_family(&out, "t_seconds");
        // Fixed schema: every finite bucket plus +Inf, even when empty.
        prop_assert_eq!(buckets.len(), BUCKETS + 1);
        // Cumulative counts are monotone non-decreasing in le order.
        for w in buckets.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].1,
                "bucket counts not cumulative: {:?} then {:?}", w[0], w[1]
            );
        }
        // +Inf is present, last, and equals _count == total samples.
        let (last_le, last_count) = buckets.last().unwrap().clone();
        prop_assert_eq!(last_le.as_str(), "+Inf");
        prop_assert_eq!(last_count, count);
        prop_assert_eq!(count, samples.len() as u64);
        // Bounds are strictly increasing decimals (dedup sanity).
        let finite: Vec<f64> = buckets[..BUCKETS]
            .iter()
            .map(|(le, _)| le.parse().expect("finite le parses"))
            .collect();
        for w in finite.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn merged_shard_histograms_equal_the_histogram_of_merged_samples(
        samples in samples(),
        shards in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        // Deal the samples round-robin across `shards` histograms.
        let per_shard: Vec<Vec<u64>> = (0..shards)
            .map(|s| {
                samples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % shards == s)
                    .map(|(_, v)| *v)
                    .collect()
            })
            .collect();
        let mut merged = HistogramSnapshot::default();
        for shard in &per_shard {
            merged.merge(&hist_of(shard));
        }
        let direct = hist_of(&samples);
        prop_assert_eq!(merged, direct);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_the_max(samples in samples()) {
        let snap = hist_of(&samples);
        let qs = [0.0, 0.5, 0.9, 0.99, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| snap.quantile(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {vals:?}");
        }
        prop_assert!(vals[4] <= snap.max_seconds() + 1e-12);
        if !samples.is_empty() {
            prop_assert_eq!(vals[4], snap.max_seconds());
        }
    }
}
