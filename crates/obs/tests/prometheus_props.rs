//! Property tests for the histogram exposition (the Prometheus
//! contract) and for shard merging.
//!
//! For arbitrary sample sets, the rendered `histogram` family must
//! satisfy the invariants every Prometheus scraper assumes: `_bucket`
//! counts are cumulative and monotone non-decreasing in `le` order, a
//! `le="+Inf"` bucket is present and last, and its value equals
//! `_count`. And because bucket bounds are fixed, merging per-shard
//! histograms must be *exactly* the histogram of the merged samples —
//! the identity that lets `/metrics` aggregate tenant shards without
//! resampling.
//!
//! The second half boots a **real multi-tenant server** (a dev-only
//! dependency cycle Cargo permits), drives randomized traffic, and
//! re-parses its entire `/metrics` exposition generically — every
//! family, tenant-labeled series included, must hold the scraper
//! invariants, not just the one family the unit tests look at.

use mccatch_obs::{render_histogram, Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Nanosecond samples spread across the whole bucket range, including
/// sub-first-bucket and overflow values.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    let sample = (0u32..40, 0.0..1.0f64)
        .prop_map(|(pow, fill)| ((1u64 << pow) as f64 * (0.5 + fill)) as u64);
    prop::collection::vec(sample, 0..120)
}

fn hist_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record_nanos(s);
    }
    h.snapshot()
}

/// Parses one rendered family back out of the exposition text:
/// `(bucket (le, cumulative_count) pairs in order, _count value)`.
fn parse_family(text: &str, name: &str) -> (Vec<(String, u64)>, u64) {
    let mut buckets = Vec::new();
    let mut count = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{")) {
            let (labels, value) = rest.split_once("} ").expect("bucket line shape");
            let le = labels
                .split(',')
                .find_map(|kv| kv.strip_prefix("le=\""))
                .and_then(|v| v.strip_suffix('"'))
                .expect("le label present");
            buckets.push((le.to_owned(), value.parse().expect("bucket count")));
        } else if let Some(rest) = line.strip_prefix(&format!("{name}_count")) {
            count = Some(rest.trim().parse().expect("count value"));
        }
    }
    (buckets, count.expect("_count line present"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exported_histograms_satisfy_the_prometheus_invariants(samples in samples()) {
        let snap = hist_of(&samples);
        let mut out = String::new();
        render_histogram(&mut out, "t_seconds", "test.", &[(String::new(), snap)]);

        prop_assert!(out.contains("# TYPE t_seconds histogram"));
        prop_assert!(out.contains("# HELP t_seconds"));

        let (buckets, count) = parse_family(&out, "t_seconds");
        // Fixed schema: every finite bucket plus +Inf, even when empty.
        prop_assert_eq!(buckets.len(), BUCKETS + 1);
        // Cumulative counts are monotone non-decreasing in le order.
        for w in buckets.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].1,
                "bucket counts not cumulative: {:?} then {:?}", w[0], w[1]
            );
        }
        // +Inf is present, last, and equals _count == total samples.
        let (last_le, last_count) = buckets.last().unwrap().clone();
        prop_assert_eq!(last_le.as_str(), "+Inf");
        prop_assert_eq!(last_count, count);
        prop_assert_eq!(count, samples.len() as u64);
        // Bounds are strictly increasing decimals (dedup sanity).
        let finite: Vec<f64> = buckets[..BUCKETS]
            .iter()
            .map(|(le, _)| le.parse().expect("finite le parses"))
            .collect();
        for w in finite.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn merged_shard_histograms_equal_the_histogram_of_merged_samples(
        samples in samples(),
        shards in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        // Deal the samples round-robin across `shards` histograms.
        let per_shard: Vec<Vec<u64>> = (0..shards)
            .map(|s| {
                samples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % shards == s)
                    .map(|(_, v)| *v)
                    .collect()
            })
            .collect();
        let mut merged = HistogramSnapshot::default();
        for shard in &per_shard {
            merged.merge(&hist_of(shard));
        }
        let direct = hist_of(&samples);
        prop_assert_eq!(merged, direct);
    }

    #[test]
    fn full_server_exposition_holds_every_family_invariant(
        score_batches in prop::collection::vec(1usize..30, 1..4),
        tenant_batches in prop::collection::vec(1usize..20, 1..4),
    ) {
        let (server, _map) = boot_server();
        let addr = server.local_addr();

        // Randomized traffic: default-tenant scores, a named tenant
        // with ingest + scores, and one admin refit.
        for n in &score_batches {
            let resp = post(addr, "/score", &batch(*n)).unwrap();
            prop_assert_eq!(resp.status, 200);
        }
        let mut conn = Connection::open(addr).unwrap();
        prop_assert_eq!(
            conn.request("PUT", "/admin/tenants/a", &batch(64)).unwrap().status,
            200
        );
        for n in &tenant_batches {
            prop_assert_eq!(post(addr, "/t/a/ingest", &batch(*n)).unwrap().status, 200);
            prop_assert_eq!(post(addr, "/t/a/score", &batch(*n)).unwrap().status, 200);
        }
        prop_assert_eq!(post(addr, "/t/a/admin/refit", b"").unwrap().status, 200);

        let resp = get(addr, "/metrics").unwrap();
        prop_assert_eq!(resp.status, 200);
        let text = resp.text().unwrap().to_owned();
        let exposition = parse_exposition(&text)?;

        // Every family announced exactly once, TYPE before its samples,
        // and no family without samples.
        for (family, kind) in &exposition.types {
            prop_assert!(
                exposition.helps.contains(family),
                "family {family} has TYPE but no HELP"
            );
            prop_assert!(
                ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                "family {family} has unknown kind {kind}"
            );
            prop_assert!(
                exposition.samples.iter().any(|s| family_of(&s.name, &exposition.types) == Some(family.clone())),
                "family {family} announced but has no samples"
            );
        }
        // Every sample belongs to an announced family and is a sane
        // number; no (name, labels) pair repeats.
        let mut seen = BTreeSet::new();
        for s in &exposition.samples {
            let family = family_of(&s.name, &exposition.types);
            prop_assert!(family.is_some(), "sample {} has no TYPE", s.name);
            prop_assert!(
                s.value.is_finite() && s.value >= 0.0,
                "sample {} has value {}", s.name, s.value
            );
            prop_assert!(
                seen.insert((s.name.clone(), s.labels.clone())),
                "duplicate series: {} {:?}", s.name, s.labels
            );
        }
        // Histogram families: cumulative monotone buckets per label
        // set, +Inf last and equal to _count, _sum present.
        for (family, kind) in &exposition.types {
            if kind != "histogram" {
                continue;
            }
            check_histogram_family(&exposition, family)?;
        }
        // Tenant-labeled series exist for tenant "a" — in a counter
        // family and in a histogram family — and no other tenant label
        // value ever appears.
        let tenant_values: BTreeSet<&str> = exposition
            .samples
            .iter()
            .flat_map(|s| s.labels.iter())
            .filter(|(k, _)| k == "tenant")
            .map(|(_, v)| v.as_str())
            .collect();
        prop_assert_eq!(tenant_values, BTreeSet::from(["a"]));
        let labeled_kinds: BTreeSet<&str> = exposition
            .samples
            .iter()
            .filter(|s| s.labels.iter().any(|(k, v)| k == "tenant" && v == "a"))
            .filter_map(|s| family_of(&s.name, &exposition.types))
            .filter_map(|f| exposition.types.get(&f).map(String::as_str))
            .collect();
        prop_assert!(
            labeled_kinds.contains("counter") && labeled_kinds.contains("histogram"),
            "tenant-labeled series span kinds {labeled_kinds:?}"
        );
        // The families this PR added are part of the exposition.
        for family in [
            "mccatch_log_dropped_lines_total",
            "mccatch_traces_finished_total",
            "mccatch_traces_sampled_total",
        ] {
            prop_assert_eq!(
                exposition.types.get(family).map(String::as_str),
                Some("counter"),
                "{} missing or mis-typed", family
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_the_max(samples in samples()) {
        let snap = hist_of(&samples);
        let qs = [0.0, 0.5, 0.9, 0.99, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| snap.quantile(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {vals:?}");
        }
        prop_assert!(vals[4] <= snap.max_seconds() + 1e-12);
        if !samples.is_empty() {
            prop_assert_eq!(vals[4], snap.max_seconds());
        }
    }
}

// ---------------------------------------------------------------------
// Full-server exposition: boot, traffic, and a generic scrape parser.
// ---------------------------------------------------------------------

use mccatch_core::McCatch;
use mccatch_index::KdTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_server::client::{get, post, Connection};
use mccatch_server::{ndjson, serve_tenants, ServerConfig, ServerHandle};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch_tenant::{TenantMap, TenantSpec};
use std::sync::Arc;

type VecTenants = TenantMap<Vec<f64>, Euclidean, KdTreeBuilder>;

/// `n` NDJSON point lines walking a diagonal (valid 2-d vectors).
fn batch(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| format!("[{}.0, {}.0]\n", i % 10, i / 10))
        .collect::<String>()
        .into_bytes()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        capacity: 512,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    }
}

fn boot_server() -> (ServerHandle, Arc<VecTenants>) {
    let seed: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
        .collect();
    let detector = Arc::new(
        StreamDetector::new(
            stream_config(),
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap(),
    );
    let map = Arc::new(
        TenantMap::new(
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            TenantSpec {
                shards: 2,
                stream: stream_config(),
                ingest_queue: 1024,
                replay: None,
            },
        )
        .unwrap(),
    );
    let server = serve_tenants(
        "127.0.0.1:0",
        ServerConfig::default(),
        detector,
        ndjson::vector_parser(Some(2)),
        "kd",
        Arc::clone(&map),
    )
    .unwrap();
    (server, map)
}

/// One `name{labels} value` sample line, labels sorted for comparison.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// The whole scrape, parsed: samples in order plus the `# TYPE` and
/// `# HELP` announcements (checked to come before their samples).
struct Exposition {
    samples: Vec<Sample>,
    types: BTreeMap<String, String>,
    helps: BTreeSet<String>,
}

/// The family a sample belongs to: its own name, or — for histogram
/// series — the name with the `_bucket`/`_sum`/`_count` suffix removed.
fn family_of(name: &str, types: &BTreeMap<String, String>) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_owned());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_owned());
            }
        }
    }
    None
}

fn parse_exposition(text: &str) -> Result<Exposition, TestCaseError> {
    let mut out = Exposition {
        samples: Vec::new(),
        types: BTreeMap::new(),
        helps: BTreeSet::new(),
    };
    for line in text.lines() {
        prop_assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE line shape");
            prop_assert!(
                out.types
                    .insert(family.to_owned(), kind.to_owned())
                    .is_none(),
                "family {family} announced twice"
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, help) = rest.split_once(' ').unwrap_or((rest, ""));
            prop_assert!(!help.trim().is_empty(), "empty HELP for {family}");
            out.helps.insert(family.to_owned());
            continue;
        }
        prop_assert!(!line.starts_with('#'), "unknown comment line: {line}");
        // `name{labels} value` or `name value`.
        let (name_labels, value) = line.rsplit_once(' ').expect("sample line shape");
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closing brace");
                let mut labels = Vec::new();
                for pair in body.split(',') {
                    let (k, v) = pair.split_once("=\"").expect("label pair shape");
                    let v = v.strip_suffix('"').expect("label value quoted");
                    prop_assert!(
                        k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                        "bad label name {k:?} in {line}"
                    );
                    labels.push((k.to_owned(), v.to_owned()));
                }
                (name.to_owned(), labels)
            }
        };
        // TYPE must precede the family's first sample.
        prop_assert!(
            family_of(&name, &out.types).is_some(),
            "sample {name} before (or without) its TYPE line"
        );
        let value: f64 = value.parse().expect("sample value parses");
        let mut labels = labels;
        labels.sort();
        out.samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// One histogram series' pieces, gathered per label set: the `(le,
/// value)` buckets in exposition order plus the `_sum` and `_count`.
type HistogramSeries = (Vec<(String, f64)>, Option<f64>, Option<f64>);

/// The per-label-set histogram invariants, for one `histogram` family.
fn check_histogram_family(e: &Exposition, family: &str) -> Result<(), TestCaseError> {
    // Group by the label set minus `le`, preserving bucket order.
    let mut groups: BTreeMap<Vec<(String, String)>, HistogramSeries> = BTreeMap::new();
    for s in &e.samples {
        let base: Vec<(String, String)> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        if s.name == format!("{family}_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .expect("bucket has le");
            groups.entry(base).or_default().0.push((le, s.value));
        } else if s.name == format!("{family}_sum") {
            groups.entry(base).or_default().1 = Some(s.value);
        } else if s.name == format!("{family}_count") {
            groups.entry(base).or_default().2 = Some(s.value);
        }
    }
    prop_assert!(!groups.is_empty(), "histogram {family} has no series");
    for (labels, (buckets, sum, count)) in groups {
        prop_assert_eq!(
            buckets.len(),
            BUCKETS + 1,
            "{}{:?}: wrong bucket count",
            family,
            labels
        );
        for w in buckets.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].1,
                "{}{:?}: buckets not cumulative: {:?} then {:?}",
                family,
                labels,
                w[0],
                w[1]
            );
        }
        let (last_le, last_count) = buckets.last().unwrap().clone();
        prop_assert_eq!(last_le.as_str(), "+Inf", "{}{:?}", family, labels);
        let count = count.expect("_count present");
        prop_assert_eq!(last_count, count, "{}{:?}: +Inf != _count", family, labels);
        let sum = sum.expect("_sum present");
        prop_assert!(sum >= 0.0, "{}{:?}: negative _sum {}", family, labels, sum);
        // Finite bounds strictly increase.
        let finite: Vec<f64> = buckets[..BUCKETS]
            .iter()
            .map(|(le, _)| le.parse().expect("finite le parses"))
            .collect();
        for w in finite.windows(2) {
            prop_assert!(w[0] < w[1], "{}{:?}: bounds not increasing", family, labels);
        }
    }
    Ok(())
}
