//! Property tests for the Chrome trace-event export
//! ([`chrome_trace_json`]): for arbitrary span forests — including
//! intervals that do *not* nest and attribute strings full of JSON
//! metacharacters — the export must be valid JSON (checked with a
//! hand-rolled parser; the workspace has no serde), every trace's span
//! ids must stay unique, and every child's `[ts, ts+dur]` interval must
//! nest inside its parent's, which is what makes the Perfetto flame
//! layout well-formed.

use mccatch_obs::trace::{chrome_trace_json, SpanRecord, TraceData};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// A minimal JSON parser — strict enough for validity checking.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates never appear: the escaper only
                            // emits \u for ASCII control characters.
                            out.push(char::from_u32(code).ok_or(format!("bad \\u{hex} escape"))?);
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("unescaped control byte {c:#x}"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|e| format!("invalid UTF-8 mid-string: {e}"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategies: arbitrary span forests, hostile attribute strings.
// ---------------------------------------------------------------------

/// Span names exercising every JSON escape class the exporter handles.
const NAMES: &[&str] = &[
    "request",
    "tenant_fanout",
    "shard_score",
    "fit_build",
    "quo\"te",
    "back\\slash",
    "new\nline",
    "tab\tand\u{1}ctl",
    "unicode µs → done",
];

/// `(start_ns, dur_ns, name index, parent selector, attr value)` tuples
/// become spans with ids `1..=n` (creation order, like the real
/// allocator) and a pseudo-random earlier parent — `parent = sel % id`,
/// so 0 (a root) and any earlier span are both possible. Intervals are
/// arbitrary: nesting is the *exporter's* job.
fn spans() -> impl Strategy<Value = Vec<SpanRecord>> {
    let span = (
        0u64..2_000_000,
        0u64..2_000_000,
        0usize..NAMES.len(),
        0u64..1 << 60,
        "[a-z\"\\\\\n\t{}:,\\[\\]é]{0,12}",
    );
    prop::collection::vec(span, 1..24).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (start_ns, dur_ns, name, sel, attr))| {
                let id = (i + 1) as u64;
                SpanRecord {
                    id,
                    parent: sel % id,
                    name: NAMES[name],
                    start_ns,
                    dur_ns,
                    attrs: vec![("v", attr)],
                }
            })
            .collect()
    })
}

fn traces() -> impl Strategy<Value = Vec<TraceData>> {
    let trace = (
        spans(),
        1u64..u64::MAX,
        0u64..u64::MAX,
        0u32..2,
        0u64..3,
        0u64..5,
        "[a-z /\"\\\\]{0,10}",
    );
    prop::collection::vec(trace, 1..4).prop_map(|raw| {
        raw.into_iter()
            .map(
                |(spans, id_hi, id_lo, error, dropped, remote, attr)| TraceData {
                    trace_id: (u128::from(id_hi) << 64) | u128::from(id_lo) | 1,
                    remote_parent: remote,
                    kind: "request",
                    dur_ns: spans.iter().map(|s| s.dur_ns).max().unwrap_or(0),
                    error: error == 1,
                    dropped_spans: dropped,
                    attrs: vec![("path", attr)],
                    spans,
                },
            )
            .collect()
    })
}

/// The `"ph":"X"` events of one track, as `(span_id, parent_id, ts,
/// ts+dur)` tuples.
fn track_spans(events: &[Json], tid: f64) -> Vec<(u64, u64, f64, f64)> {
    events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::str) == Some("X")
                && e.get("tid").and_then(Json::num) == Some(tid)
        })
        .map(|e| {
            let args = e.get("args").expect("X event has args");
            let ts = e.get("ts").and_then(Json::num).expect("ts");
            let dur = e.get("dur").and_then(Json::num).expect("dur");
            (
                args.get("span_id").and_then(Json::num).expect("span_id") as u64,
                args.get("parent_id")
                    .and_then(Json::num)
                    .expect("parent_id") as u64,
                ts,
                ts + dur,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn export_is_valid_json_with_one_track_per_trace(traces in traces()) {
        let json = chrome_trace_json(traces.iter());
        let doc = Parser::parse(&json).map_err(TestCaseError::fail)?;

        prop_assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::str),
            Some("ms")
        );
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => return Err(TestCaseError::fail(format!("traceEvents: {other:?}"))),
        };
        // One thread-name metadata event plus one X event per span, on
        // the track numbered after the trace (tid = index + 1).
        let expected: usize = traces.iter().map(|t| 1 + t.spans.len()).sum();
        prop_assert_eq!(events.len(), expected);
        for (i, trace) in traces.iter().enumerate() {
            let tid = (i + 1) as f64;
            let meta = events.iter().find(|e| {
                e.get("ph").and_then(Json::str) == Some("M")
                    && e.get("tid").and_then(Json::num) == Some(tid)
            });
            let meta = meta.ok_or(TestCaseError::fail(format!("no metadata for tid {tid}")))?;
            let want_id = format!("{:032x}", trace.trace_id);
            prop_assert_eq!(
                meta.get("args").and_then(|a| a.get("trace_id")).and_then(Json::str),
                Some(want_id.as_str())
            );
            prop_assert_eq!(track_spans(events, tid).len(), trace.spans.len());
        }
    }

    #[test]
    fn span_ids_are_unique_and_children_nest_inside_parents(traces in traces()) {
        let json = chrome_trace_json(traces.iter());
        let doc = Parser::parse(&json).map_err(TestCaseError::fail)?;
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => return Err(TestCaseError::fail(format!("traceEvents: {other:?}"))),
        };
        for i in 0..traces.len() {
            let spans = track_spans(events, (i + 1) as f64);
            let ids: BTreeSet<u64> = spans.iter().map(|&(id, ..)| id).collect();
            prop_assert_eq!(ids.len(), spans.len(), "duplicate span ids on track {}", i + 1);
            let bounds: BTreeMap<u64, (f64, f64)> = spans
                .iter()
                .map(|&(id, _, lo, hi)| (id, (lo, hi)))
                .collect();
            // Exported microseconds carry three decimals (exact
            // nanoseconds); the tolerance covers the float rounding of
            // parse(format(x)) on both sides of each comparison.
            let eps = 0.01;
            for &(id, parent, lo, hi) in &spans {
                prop_assert!(lo <= hi + eps, "span {id} inverted: [{lo}, {hi}]");
                if parent == 0 {
                    continue;
                }
                let (plo, phi) = bounds[&parent];
                prop_assert!(
                    plo <= lo + eps && hi <= phi + eps,
                    "track {}: span {} [{}, {}] escapes parent {} [{}, {}]",
                    i + 1, id, lo, hi, parent, plo, phi
                );
            }
        }
    }
}
