//! Property tests: the Slim-tree and kd-tree must agree exactly with the
//! brute-force reference on every query type, for random point sets, random
//! subsets, random radii, and both vector and string data.

use mccatch_index::{pair_join, BruteForce, KdTree, RangeIndex, SlimTree};
use mccatch_metric::{Euclidean, Levenshtein};
use proptest::prelude::*;

fn points_2d() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 2), 1..120)
}

fn points_5d() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 5), 1..60)
}

fn words() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-d]{0,6}", 1..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slim_range_count_matches_brute(pts in points_2d(), q in 0usize..120, r in 0.0..150.0f64, cap in 4usize..12) {
        let q = q % pts.len();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, cap);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        prop_assert_eq!(slim.range_count(&pts[q], r), brute.range_count(&pts[q], r));
    }

    #[test]
    fn slim_range_ids_match_brute(pts in points_5d(), q in 0usize..60, r in 0.0..20.0f64) {
        let q = q % pts.len();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, 6);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        slim.range_ids(&pts[q], r, &mut a);
        brute.range_ids(&pts[q], r, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn slim_knn_matches_brute(pts in points_2d(), q in 0usize..120, k in 1usize..10) {
        let q = q % pts.len();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, 5);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        let a = slim.knn(&pts[q], k);
        let b = brute.knn(&pts[q], k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Ids may differ only among exact distance ties; both sides
            // break ties by id, so they must be identical.
            prop_assert_eq!(x.id, y.id);
            prop_assert!((x.dist - y.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn kd_range_count_matches_brute(pts in points_5d(), q in 0usize..60, r in 0.0..40.0f64, cap in 1usize..8) {
        let q = q % pts.len();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let kd = KdTree::build(pts.clone(), ids.clone(), cap);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        prop_assert_eq!(kd.range_count(&pts[q], r), brute.range_count(&pts[q], r));
    }

    #[test]
    fn kd_range_ids_match_brute(pts in points_2d(), q in 0usize..120, r in 0.0..80.0f64) {
        let q = q % pts.len();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let kd = KdTree::build(pts.clone(), ids.clone(), 4);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        kd.range_ids(&pts[q], r, &mut a);
        brute.range_ids(&pts[q], r, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn kd_knn_matches_brute(pts in points_5d(), q in 0usize..60, k in 1usize..8) {
        let q = q % pts.len();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let kd = KdTree::build(pts.clone(), ids.clone(), 3);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        let a = kd.knn(&pts[q], k);
        let b = brute.knn(&pts[q], k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.id, y.id);
            prop_assert!((x.dist - y.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn slim_on_subset_matches_brute_on_subset(pts in points_2d(), r in 0.0..100.0f64) {
        // Every third point only.
        let ids: Vec<u32> = (0..pts.len() as u32).step_by(3).collect();
        prop_assume!(!ids.is_empty());
        let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, 4);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        let q = &pts[0];
        prop_assert_eq!(slim.range_count(q, r), brute.range_count(q, r));
    }

    #[test]
    fn slim_strings_match_brute(ws in words(), q in 0usize..50, r in 0.0..5.0f64) {
        let q = q % ws.len();
        let ids: Vec<u32> = (0..ws.len() as u32).collect();
        let slim = SlimTree::build(ws.clone(), ids.clone(), Levenshtein, 4);
        let brute = BruteForce::new(ws.clone(), ids, Levenshtein);
        prop_assert_eq!(slim.range_count(&ws[q], r), brute.range_count(&ws[q], r));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        slim.range_ids(&ws[q], r, &mut a);
        brute.range_ids(&ws[q], r, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn slim_invariants_hold_for_random_data(pts in points_2d(), cap in 4usize..10) {
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let slim = SlimTree::build(pts.clone(), ids, Euclidean, cap);
        prop_assert_eq!(slim.check_invariants(), pts.len());
    }

    #[test]
    fn pair_join_symmetric_closure(pts in points_2d(), r in 0.0..50.0f64) {
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, 4);
        let pairs = pair_join(&slim, &pts, &ids, r);
        for &(a, b) in &pairs {
            prop_assert!(a < b);
            let d = {
                let (x, y) = (&pts[a as usize], &pts[b as usize]);
                ((x[0] - y[0]).powi(2) + (x[1] - y[1]).powi(2)).sqrt()
            };
            prop_assert!(d <= r + 1e-9);
        }
        // Count check: number of pairs == sum of per-point in-range others / 2.
        let brute = BruteForce::new(pts.clone(), ids.clone(), Euclidean);
        let total: usize = ids
            .iter()
            .map(|&i| brute.range_count(&pts[i as usize], r) - 1)
            .sum();
        prop_assert_eq!(pairs.len() * 2, total);
    }
}

mod vp_tree {
    use super::*;
    use mccatch_index::VpTree;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vp_range_count_matches_brute(pts in points_2d(), q in 0usize..120, r in 0.0..150.0f64, cap in 2usize..12) {
            let q = q % pts.len();
            let ids: Vec<u32> = (0..pts.len() as u32).collect();
            let vp = VpTree::build(pts.clone(), ids.clone(), Euclidean, cap);
            let brute = BruteForce::new(pts.clone(), ids, Euclidean);
            prop_assert_eq!(vp.range_count(&pts[q], r), brute.range_count(&pts[q], r));
        }

        #[test]
        fn vp_range_ids_match_brute(pts in points_5d(), q in 0usize..60, r in 0.0..20.0f64) {
            let q = q % pts.len();
            let ids: Vec<u32> = (0..pts.len() as u32).collect();
            let vp = VpTree::build(pts.clone(), ids.clone(), Euclidean, 4);
            let brute = BruteForce::new(pts.clone(), ids, Euclidean);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            vp.range_ids(&pts[q], r, &mut a);
            brute.range_ids(&pts[q], r, &mut b);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn vp_knn_matches_brute(pts in points_2d(), q in 0usize..120, k in 1usize..10) {
            let q = q % pts.len();
            let ids: Vec<u32> = (0..pts.len() as u32).collect();
            let vp = VpTree::build(pts.clone(), ids.clone(), Euclidean, 4);
            let brute = BruteForce::new(pts.clone(), ids, Euclidean);
            let a = vp.knn(&pts[q], k);
            let b = brute.knn(&pts[q], k);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.id, y.id);
                prop_assert!((x.dist - y.dist).abs() < 1e-9);
            }
        }

        #[test]
        fn vp_strings_match_brute(ws in words(), q in 0usize..50, r in 0.0..5.0f64) {
            let q = q % ws.len();
            let ids: Vec<u32> = (0..ws.len() as u32).collect();
            let vp = VpTree::build(ws.clone(), ids.clone(), Levenshtein, 3);
            let brute = BruteForce::new(ws.clone(), ids, Levenshtein);
            prop_assert_eq!(vp.range_count(&ws[q], r), brute.range_count(&ws[q], r));
        }
    }
}
