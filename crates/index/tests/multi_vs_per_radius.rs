//! Property tests for the single-traversal multi-radius count: for every
//! backend, [`RangeIndex::multi_range_count`] must equal an `a`-fold
//! sequence of [`RangeIndex::range_count`] calls — exact counts up to and
//! including the first one that crosses the sparse-focused cap, `OVER`
//! afterwards — on random point sets, random (ascending) radius grids,
//! random caps, and both vector and string data.

use mccatch_index::{BruteForce, KdTree, RangeIndex, SlimTree, VpTree, OVER};
use mccatch_metric::{Euclidean, Levenshtein};
use proptest::prelude::*;

/// The contract `multi_range_count` must honor, spelled out with
/// per-radius `range_count` calls (the default-method fallback).
fn per_radius_reference<P, I: RangeIndex<P>>(
    index: &I,
    q: &P,
    radii: &[f64],
    cap: u32,
) -> Vec<u32> {
    let mut out = vec![OVER; radii.len()];
    for (k, &r) in radii.iter().enumerate() {
        let c = index.range_count(q, r) as u32;
        out[k] = c;
        if c > cap {
            break;
        }
    }
    out
}

fn points_2d() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 2), 1..120)
}

fn points_5d() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 5), 1..60)
}

/// Ascending radius grids of 1..=12 radii, geometric-ish with a random
/// base so boundaries land both on and off point distances.
fn grid() -> impl Strategy<Value = Vec<f64>> {
    (0.01..40.0f64, 1.2..2.5f64, 1usize..12).prop_map(|(base, ratio, m)| {
        (0..m)
            .map(|k| base * ratio.powi(k as i32))
            .collect::<Vec<f64>>()
    })
}

fn words() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-d]{0,6}", 1..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn brute_multi_matches_per_radius(pts in points_2d(), q in 0usize..120, radii in grid(), cap in 0u32..20) {
        let q = q % pts.len();
        let idx = BruteForce::new(pts.clone(), (0..pts.len() as u32).collect(), Euclidean);
        let got = idx.multi_range_count(&pts[q], &radii, cap);
        let want = per_radius_reference(&idx, &pts[q], &radii, cap);
        prop_assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn kd_multi_matches_per_radius(pts in points_5d(), q in 0usize..60, radii in grid(), cap in 0u32..20, leaf in 1usize..8) {
        let q = q % pts.len();
        let idx = KdTree::build(pts.clone(), (0..pts.len() as u32).collect(), leaf);
        let got = idx.multi_range_count(&pts[q], &radii, cap);
        let want = per_radius_reference(&idx, &pts[q], &radii, cap);
        prop_assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn vp_multi_matches_per_radius(pts in points_2d(), q in 0usize..120, radii in grid(), cap in 0u32..20, leaf in 2usize..10) {
        let q = q % pts.len();
        let idx = VpTree::build(pts.clone(), (0..pts.len() as u32).collect(), Euclidean, leaf);
        let got = idx.multi_range_count(&pts[q], &radii, cap);
        let want = per_radius_reference(&idx, &pts[q], &radii, cap);
        prop_assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn slim_multi_matches_per_radius(pts in points_2d(), q in 0usize..120, radii in grid(), cap in 0u32..20, node_cap in 4usize..10) {
        let q = q % pts.len();
        let idx = SlimTree::build(pts.clone(), (0..pts.len() as u32).collect(), Euclidean, node_cap);
        let got = idx.multi_range_count(&pts[q], &radii, cap);
        let want = per_radius_reference(&idx, &pts[q], &radii, cap);
        prop_assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn all_backends_agree_uncapped(pts in points_2d(), q in 0usize..120, radii in grid()) {
        // cap = MAX: fully exact counts at every radius, across backends.
        let q = q % pts.len();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let brute = BruteForce::new(pts.clone(), ids.clone(), Euclidean);
        let kd = KdTree::build(pts.clone(), ids.clone(), 4);
        let vp = VpTree::build(pts.clone(), ids.clone(), Euclidean, 4);
        let slim = SlimTree::build(pts.clone(), ids, Euclidean, 6);
        let want = brute.multi_range_count(&pts[q], &radii, u32::MAX);
        prop_assert_eq!(&kd.multi_range_count(&pts[q], &radii, u32::MAX), &want);
        prop_assert_eq!(&vp.multi_range_count(&pts[q], &radii, u32::MAX), &want);
        prop_assert_eq!(&slim.multi_range_count(&pts[q], &radii, u32::MAX), &want);
        // And every column equals a plain range_count.
        for (k, &r) in radii.iter().enumerate() {
            prop_assert_eq!(want[k] as usize, brute.range_count(&pts[q], r));
        }
    }

    #[test]
    fn slim_multi_on_strings(ws in words(), q in 0usize..50, cap in 0u32..10) {
        let q = q % ws.len();
        let ids: Vec<u32> = (0..ws.len() as u32).collect();
        let slim = SlimTree::build(ws.clone(), ids.clone(), Levenshtein, 4);
        let vp = VpTree::build(ws.clone(), ids, Levenshtein, 3);
        let radii = [0.0, 1.0, 2.0, 3.0, 5.0, 8.0];
        let got = slim.multi_range_count(&ws[q], &radii, cap);
        let want = per_radius_reference(&slim, &ws[q], &radii, cap);
        prop_assert_eq!(got.as_slice(), want.as_slice());
        let got = vp.multi_range_count(&ws[q], &radii, cap);
        let want = per_radius_reference(&vp, &ws[q], &radii, cap);
        prop_assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn subset_indexes_count_subset_only(pts in points_2d(), radii in grid(), cap in 0u32..20) {
        // Every third point only: multi counts must see just the subset.
        let ids: Vec<u32> = (0..pts.len() as u32).step_by(3).collect();
        prop_assume!(!ids.is_empty());
        let slim = SlimTree::build(pts.clone(), ids.clone(), Euclidean, 4);
        let brute = BruteForce::new(pts.clone(), ids, Euclidean);
        let q = &pts[0];
        let a = slim.multi_range_count(q, &radii, cap);
        let b = brute.multi_range_count(q, &radii, cap);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}

#[test]
fn multi_on_empty_index_is_all_zero_then_over() {
    let pts: Vec<Vec<f64>> = vec![];
    let kd = KdTree::build(pts.clone(), vec![], 4);
    let radii = [1.0, 2.0, 4.0];
    // Counts are 0 everywhere; 0 never exceeds any cap, so no OVER.
    assert_eq!(
        kd.multi_range_count(&vec![0.0], &radii, 5).as_slice(),
        &[0, 0, 0]
    );
}

#[test]
fn multi_with_empty_grid_is_empty() {
    let pts = vec![vec![0.0], vec![1.0]];
    let slim = SlimTree::build(pts.clone(), vec![0, 1], Euclidean, 4);
    assert!(slim
        .multi_range_count(&pts[0], &[], 5)
        .as_slice()
        .is_empty());
}

#[test]
fn cap_zero_records_the_crossing_exactly() {
    // Every count is >= 1 > 0, so only the first column is exact.
    let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
    let vp = VpTree::build(pts.clone(), (0..10).collect(), Euclidean, 2);
    let got = vp.multi_range_count(&pts[5], &[1.0, 2.0, 3.0], 0);
    assert_eq!(got.as_slice(), &[3, OVER, OVER]);
}
