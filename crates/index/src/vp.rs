//! A vantage-point tree: a second metric access method alongside the
//! Slim-tree.
//!
//! The paper's Step I accepts "a Slim-tree, M-tree, or R-tree" — the
//! pipeline only needs *some* metric index. The VP-tree is the classic
//! lightweight alternative: each node picks a vantage point and splits the
//! remaining elements by the median distance to it, giving a balanced
//! binary tree with one distance evaluation per node per query and
//! triangle-inequality pruning on both sides of the median shell.
//!
//! Compared to the Slim-tree it builds faster (no insertion reorganization)
//! but prunes less effectively on range counts (no covered-subtree
//! shortcut across shells); it is exposed mostly so the experiments can
//! demonstrate MCCATCH's index-agnosticism, and property tests pit all
//! three indexes against each other.

use crate::multi::MultiCounter;
use crate::{DistanceStats, IndexBuilder, Neighbor, OrdF64, RangeIndex, SmallCounts};
use mccatch_metric::Metric;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Builder for [`VpTree`].
#[derive(Debug, Clone, Copy)]
pub struct VpTreeBuilder {
    /// Maximum number of elements per leaf.
    pub leaf_capacity: usize,
}

impl Default for VpTreeBuilder {
    fn default() -> Self {
        Self { leaf_capacity: 16 }
    }
}

impl<P: Send + Sync, M: Metric<P>> IndexBuilder<P, M> for VpTreeBuilder {
    type Index = VpTree<P, M>;

    fn build(&self, points: Arc<[P]>, ids: Vec<u32>, metric: Arc<M>) -> Self::Index {
        VpTree::build(points, ids, metric, self.leaf_capacity)
    }

    fn backend_name(&self) -> &'static str {
        "vp"
    }
}

#[derive(Debug)]
enum VpNode {
    Leaf {
        start: u32,
        end: u32,
    },
    Split {
        /// The vantage point (also stored in the inside subtree range).
        vantage: u32,
        /// Median distance: inside elements are `<= mu`, outside `> mu`.
        mu: f64,
        /// Largest distance from the vantage to anything below this node.
        max_dist: f64,
        inside: u32,
        outside: u32,
        /// Number of elements below (vantage included).
        count: u32,
    },
}

/// A vantage-point tree over `points[ids]` using `metric`; owns `Arc`
/// handles to the dataset and metric, so it has no lifetime.
#[derive(Debug)]
pub struct VpTree<P, M: Metric<P>> {
    points: Arc<[P]>,
    metric: Arc<M>,
    ids: Vec<u32>,
    nodes: Vec<VpNode>,
    /// Distance evaluations (construction + queries). Relaxed ordering:
    /// read only after joins complete; queries batch their updates.
    evals: AtomicU64,
}

impl<P, M: Metric<P>> VpTree<P, M> {
    /// Builds the tree; deterministic (vantage = first element of the
    /// range, median split with stable tie-breaks).
    pub fn build(
        points: impl Into<Arc<[P]>>,
        mut ids: Vec<u32>,
        metric: impl Into<Arc<M>>,
        leaf_capacity: usize,
    ) -> Self {
        let cap = leaf_capacity.max(2);
        let mut tree = Self {
            points: points.into(),
            metric: metric.into(),
            ids: Vec::new(),
            nodes: Vec::new(),
            evals: AtomicU64::new(0),
        };
        if !ids.is_empty() {
            let n = ids.len();
            tree.build_rec(&mut ids, 0, n, cap);
            tree.ids = ids;
        }
        tree
    }

    fn build_rec(&mut self, ids: &mut [u32], start: usize, end: usize, cap: usize) -> u32 {
        if end - start <= cap {
            let idx = self.nodes.len() as u32;
            self.nodes.push(VpNode::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return idx;
        }
        // Vantage: the first element (deterministic); distances to the rest.
        let vantage = ids[start];
        let rest = &mut ids[start + 1..end];
        let metric = Arc::clone(&self.metric);
        let points = Arc::clone(&self.points);
        let build_evals = std::cell::Cell::new(0u64);
        let key = |a: u32| {
            build_evals.set(build_evals.get() + 1);
            OrdF64(metric.distance(&points[vantage as usize], &points[a as usize]))
        };
        let mid = rest.len() / 2;
        rest.select_nth_unstable_by(mid, |&a, &b| key(a).cmp(&key(b)).then(a.cmp(&b)));
        let mu = metric.distance(&points[vantage as usize], &points[rest[mid] as usize]);
        let max_dist = rest
            .iter()
            .map(|&a| metric.distance(&points[vantage as usize], &points[a as usize]))
            .fold(0.0f64, f64::max);
        *self.evals.get_mut() += build_evals.get() + 1 + rest.len() as u64;
        let count = (end - start) as u32;
        let idx = self.nodes.len() as u32;
        self.nodes.push(VpNode::Leaf { start: 0, end: 0 }); // patched below

        // Inside: vantage itself plus [start+1 .. start+1+mid+1) (all <= mu).
        // Clamp so both subtrees stay non-empty and strictly smaller — for
        // a 3-element range the unclamped midpoint would swallow the whole
        // range and recurse forever. Ties with mu may then land on either
        // side, which the >= shell conditions below account for.
        let inside_end = (start + 1 + mid + 1).min(end - 1);
        let inside = self.build_rec(ids, start, inside_end, cap);
        let outside = self.build_rec(ids, inside_end, end, cap);
        self.nodes[idx as usize] = VpNode::Split {
            vantage,
            mu,
            max_dist,
            inside,
            outside,
            count,
        };
        idx
    }

    fn count_rec(&self, node: u32, q: &P, r: f64, evals: &mut u64) -> usize {
        match &self.nodes[node as usize] {
            VpNode::Leaf { start, end } => {
                *evals += (end - start) as u64;
                self.ids[*start as usize..*end as usize]
                    .iter()
                    .filter(|&&i| self.metric.distance(q, &self.points[i as usize]) <= r)
                    .count()
            }
            VpNode::Split {
                vantage,
                mu,
                max_dist,
                inside,
                outside,
                count,
            } => {
                let d = self.metric.distance(q, &self.points[*vantage as usize]);
                *evals += 1;
                // Covered shortcut: the whole subtree lives within
                // max_dist of the vantage.
                if d + max_dist <= r {
                    return *count as usize;
                }
                let mut c = 0;
                if d - r <= *mu {
                    c += self.count_rec(*inside, q, r, evals);
                }
                if d + r >= *mu {
                    c += self.count_rec(*outside, q, r, evals);
                }
                c
            }
        }
    }

    /// Single-traversal multi-radius count over the window `[lo, hi)` of
    /// `radii` (ascending): one vantage distance per node serves every
    /// column at once. Columns whose radius covers the whole subtree take
    /// the cardinality in one bulk-add; each child's window drops the
    /// columns whose radius cannot reach its shell; columns at or past the
    /// counter watermark can only end OVER and are no longer refined. All
    /// predicates are textually those of [`Self::count_rec`], so counts
    /// match the per-radius path bit for bit.
    fn multi_rec(
        &self,
        node: u32,
        q: &P,
        radii: &[f64],
        lo: usize,
        mut hi: usize,
        counter: &mut MultiCounter,
    ) {
        hi = hi.min(counter.hi_cap());
        if lo >= hi {
            return;
        }
        match &self.nodes[node as usize] {
            VpNode::Leaf { start, end } => {
                counter.evals += (end - start) as u64;
                let scratch = counter.scratch_mut();
                for &i in &self.ids[*start as usize..*end as usize] {
                    scratch.push(self.metric.distance(q, &self.points[i as usize]));
                }
                counter.add_leaf(&radii[lo..hi], lo, hi);
            }
            VpNode::Split {
                vantage,
                mu,
                max_dist,
                inside,
                outside,
                count,
            } => {
                let d = self.metric.distance(q, &self.points[*vantage as usize]);
                counter.evals += 1;
                // Covered columns: the whole subtree is within radius.
                let mut nh = hi;
                while nh > lo && d + max_dist <= radii[nh - 1] {
                    nh -= 1;
                }
                if nh < hi {
                    counter.add_subtree(nh, hi, *count);
                    counter.bump();
                    hi = nh.min(counter.hi_cap());
                    if lo >= hi {
                        return;
                    }
                }
                // Visit the shell containing the query first: its points
                // are the nearest, so the running counts cross the cap
                // (and the window collapses to the small radii) before the
                // farther shell is traversed. Each shell's window drops
                // the columns whose radius cannot reach it.
                let descend_inside = |this: &Self, counter: &mut MultiCounter, hi: usize| {
                    // Inside shell: reachable at radius r iff d - r <= mu.
                    let mut ilo = lo;
                    while ilo < hi && d - radii[ilo] > *mu {
                        ilo += 1;
                    }
                    if ilo < hi {
                        this.multi_rec(*inside, q, radii, ilo, hi, counter);
                    }
                };
                let descend_outside = |this: &Self, counter: &mut MultiCounter, hi: usize| {
                    // Outside shell: reachable at radius r iff d + r >= mu.
                    let mut olo = lo;
                    while olo < hi && d + radii[olo] < *mu {
                        olo += 1;
                    }
                    if olo < hi {
                        this.multi_rec(*outside, q, radii, olo, hi, counter);
                    }
                };
                // (multi_rec re-clamps to the watermark at entry, so the
                // second call sees any window shrink the first caused.)
                if d <= *mu {
                    descend_inside(self, counter, hi);
                    descend_outside(self, counter, hi);
                } else {
                    descend_outside(self, counter, hi);
                    descend_inside(self, counter, hi);
                }
            }
        }
    }

    fn ids_rec(&self, node: u32, q: &P, r: f64, out: &mut Vec<u32>, evals: &mut u64) {
        match &self.nodes[node as usize] {
            VpNode::Leaf { start, end } => {
                *evals += (end - start) as u64;
                out.extend(
                    self.ids[*start as usize..*end as usize]
                        .iter()
                        .copied()
                        .filter(|&i| self.metric.distance(q, &self.points[i as usize]) <= r),
                )
            }
            VpNode::Split {
                vantage,
                mu,
                max_dist,
                inside,
                outside,
                ..
            } => {
                let d = self.metric.distance(q, &self.points[*vantage as usize]);
                *evals += 1;
                if d + max_dist <= r {
                    self.collect(node, out);
                    return;
                }
                if d - r <= *mu {
                    self.ids_rec(*inside, q, r, out, evals);
                }
                if d + r >= *mu {
                    self.ids_rec(*outside, q, r, out, evals);
                }
            }
        }
    }

    fn collect(&self, node: u32, out: &mut Vec<u32>) {
        match &self.nodes[node as usize] {
            VpNode::Leaf { start, end } => {
                out.extend_from_slice(&self.ids[*start as usize..*end as usize])
            }
            VpNode::Split {
                inside, outside, ..
            } => {
                self.collect(*inside, out);
                self.collect(*outside, out);
            }
        }
    }
}

impl<P: Send + Sync, M: Metric<P>> RangeIndex<P> for VpTree<P, M> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn range_count(&self, q: &P, radius: f64) -> usize {
        if self.ids.is_empty() {
            return 0;
        }
        let mut evals = 0;
        let count = self.count_rec(0, q, radius, &mut evals);
        self.evals.fetch_add(evals, Ordering::Relaxed);
        count
    }

    /// One descent fills every radius column (see the private `multi_rec`).
    fn multi_range_count(&self, q: &P, radii: &[f64], cap: u32) -> SmallCounts {
        debug_assert!(radii.windows(2).all(|w| w[0] <= w[1]));
        let mut counter = MultiCounter::new(radii.len(), cap);
        if !self.ids.is_empty() && !radii.is_empty() {
            self.multi_rec(0, q, radii, 0, radii.len(), &mut counter);
            self.evals.fetch_add(counter.evals, Ordering::Relaxed);
        }
        counter.finish()
    }

    fn range_ids(&self, q: &P, radius: f64, out: &mut Vec<u32>) {
        if self.ids.is_empty() {
            return;
        }
        let start = out.len();
        let mut evals = 0;
        self.ids_rec(0, q, radius, out, &mut evals);
        self.evals.fetch_add(evals, Ordering::Relaxed);
        out[start..].sort_unstable();
    }

    fn distance_stats(&self) -> DistanceStats {
        DistanceStats {
            evals: self.evals.load(Ordering::Relaxed),
        }
    }

    fn knn(&self, q: &P, k: usize) -> Vec<Neighbor> {
        if self.ids.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut evals = 0u64;
        let mut frontier: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF64, u32)> = BinaryHeap::new();
        frontier.push(Reverse((OrdF64(0.0), 0)));
        while let Some(Reverse((OrdF64(lb), node))) = frontier.pop() {
            let tau = if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().expect("non-empty").0 .0
            };
            if lb > tau {
                break;
            }
            match &self.nodes[node as usize] {
                VpNode::Leaf { start, end } => {
                    evals += (end - start) as u64;
                    for &i in &self.ids[*start as usize..*end as usize] {
                        let d = self.metric.distance(q, &self.points[i as usize]);
                        let tau = if best.len() < k {
                            f64::INFINITY
                        } else {
                            best.peek().expect("non-empty").0 .0
                        };
                        if d < tau || (d == tau && best.len() < k) {
                            best.push((OrdF64(d), i));
                            if best.len() > k {
                                best.pop();
                            }
                        }
                    }
                }
                VpNode::Split {
                    vantage,
                    mu,
                    inside,
                    outside,
                    ..
                } => {
                    let d = self.metric.distance(q, &self.points[*vantage as usize]);
                    evals += 1;
                    // Lower bounds for the two shells.
                    let lb_in = (d - mu).max(0.0);
                    let lb_out = (mu - d).max(0.0);
                    frontier.push(Reverse((OrdF64(lb_in.min(lb)), *inside)));
                    frontier.push(Reverse((OrdF64(lb_out.max(lb)), *outside)));
                }
            }
        }
        self.evals.fetch_add(evals, Ordering::Relaxed);
        let mut out: Vec<Neighbor> = best
            .into_iter()
            .map(|(OrdF64(dist), id)| Neighbor { id, dist })
            .collect();
        out.sort_by(|a, b| OrdF64(a.dist).cmp(&OrdF64(b.dist)).then(a.id.cmp(&b.id)));
        out
    }

    /// The root shell radius bounds half the diameter; double it, matching
    /// the "derive the grid from the tree root" idea of Alg. 1.
    fn diameter_estimate(&self) -> f64 {
        match self.nodes.first() {
            Some(VpNode::Split { max_dist, .. }) => 2.0 * max_dist,
            Some(VpNode::Leaf { start, end }) => {
                let ids = &self.ids[*start as usize..*end as usize];
                let n = ids.len() as u64;
                self.evals
                    .fetch_add(n * n.saturating_sub(1) / 2, Ordering::Relaxed);
                let mut best = 0.0f64;
                for (i, &a) in ids.iter().enumerate() {
                    for &b in &ids[i + 1..] {
                        best = best.max(
                            self.metric
                                .distance(&self.points[a as usize], &self.points[b as usize]),
                        );
                    }
                }
                best
            }
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_metric::{Euclidean, Levenshtein};

    fn line(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn range_count_matches_brute_force() {
        let pts = line(200);
        let t = VpTree::build(pts.clone(), (0..200).collect(), Euclidean, 8);
        for q in [0usize, 50, 111, 199] {
            for r in [0.0, 1.0, 2.5, 10.0, 300.0] {
                let want = pts.iter().filter(|p| (p[0] - pts[q][0]).abs() <= r).count();
                assert_eq!(t.range_count(&pts[q], r), want, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn range_ids_sorted_and_exact() {
        let pts = line(64);
        let t = VpTree::build(pts.clone(), (0..64).collect(), Euclidean, 4);
        let mut out = Vec::new();
        t.range_ids(&pts[10], 2.0, &mut out);
        assert_eq!(out, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = line(100);
        let t = VpTree::build(pts.clone(), (0..100).collect(), Euclidean, 4);
        let nn = t.knn(&pts[42], 5);
        let ids: Vec<u32> = nn.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![42, 41, 43, 40, 44]);
    }

    #[test]
    fn string_metric_works() {
        let words: Vec<String> = ["cat", "car", "cart", "dog", "dot", "zebra"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let t = VpTree::build(words.clone(), (0..6).collect(), Levenshtein, 2);
        assert_eq!(t.range_count(&"cat".to_string(), 1.0), 3);
    }

    #[test]
    fn empty_and_singleton() {
        let pts: Vec<Vec<f64>> = vec![];
        let t = VpTree::build(pts.clone(), vec![], Euclidean, 4);
        assert_eq!(t.range_count(&vec![0.0], 5.0), 0);
        assert_eq!(t.diameter_estimate(), 0.0);
        let pts = line(1);
        let t = VpTree::build(pts.clone(), vec![0], Euclidean, 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.range_count(&pts[0], 0.0), 1);
    }

    #[test]
    fn diameter_estimate_reasonable() {
        let pts = line(1000);
        let t = VpTree::build(pts.clone(), (0..1000).collect(), Euclidean, 16);
        let est = t.diameter_estimate();
        assert!((999.0 * 0.5..=999.0 * 2.5).contains(&est), "est={est}");
    }

    #[test]
    fn duplicates_counted() {
        let pts = vec![vec![2.0]; 33];
        let t = VpTree::build(pts.clone(), (0..33).collect(), Euclidean, 4);
        assert_eq!(t.range_count(&vec![2.0], 0.0), 33);
    }
}
