//! Count-only spatial joins (Sec. IV-G of the paper).
//!
//! MCCATCH's hot loop is "for each point, how many neighbors within `r`?" —
//! a *self-join adapted to return only counts of neighbors, not pairs of
//! neighboring points* (Alg. 2). These helpers run such joins through any
//! [`RangeIndex`], optionally in parallel: queries are independent, so each
//! worker thread fills a disjoint slice of the output and the result is
//! bit-identical regardless of thread count.

use crate::{RangeIndex, OVER};

/// Upper bound on worker threads for batch joins. Chosen once per process.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Counts, for every query id in `queries`, the number of indexed elements
/// within `radius` (the count-only join `SELFJOINC`/`JOINC` of Alg. 2/4).
///
/// `queries` are ids into `points`; the output is aligned with `queries`.
/// With `threads <= 1` the join runs serially.
pub fn batch_range_count<P, I>(
    index: &I,
    points: &[P],
    queries: &[u32],
    radius: f64,
    threads: usize,
) -> Vec<usize>
where
    P: Sync,
    I: RangeIndex<P>,
{
    let mut out = vec![0usize; queries.len()];
    let threads = threads.clamp(1, queries.len().max(1));
    if threads == 1 || queries.len() < 256 {
        for (slot, &q) in out.iter_mut().zip(queries) {
            *slot = index.range_count(&points[q as usize], radius);
        }
        return out;
    }
    let chunk = queries.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, &q) in ochunk.iter_mut().zip(qchunk) {
                    *slot = index.range_count(&points[q as usize], radius);
                }
            });
        }
    });
    out
}

/// Counts, for every query id in `queries` and every radius of `radii`
/// (ascending), the number of indexed elements within that radius — the
/// single-traversal replacement for one [`batch_range_count`] call per
/// radius: the query set is partitioned across threads **once**, and each
/// query descends the index once via
/// [`RangeIndex::multi_range_count`], filling all its radius columns
/// simultaneously.
///
/// Returns a row-major `queries.len() × radii.len()` matrix aligned with
/// `queries`. `cap` is the sparse-focused cutoff: in each row, the first
/// count exceeding `cap` is exact and every later column holds
/// [`OVER`] (see `multi_range_count`). Workers fill disjoint
/// row chunks, so the result is bit-identical regardless of `threads`.
pub fn batch_multi_range_count<P, I>(
    index: &I,
    points: &[P],
    queries: &[u32],
    radii: &[f64],
    cap: u32,
    threads: usize,
) -> Vec<u32>
where
    P: Sync,
    I: RangeIndex<P>,
{
    let m = radii.len();
    let mut out = vec![OVER; queries.len() * m];
    batch_multi_range_count_into(index, points, queries, radii, cap, threads, &mut out, m);
    out
}

/// [`batch_multi_range_count`] writing into a caller-provided buffer:
/// query `i`'s counts land in `out[i * stride .. i * stride + radii.len()]`
/// (cells between `radii.len()` and `stride` are left untouched). This
/// lets callers with wider rows — like `count_neighbors`' `n × a` table,
/// whose last column is filled without a join — receive the counts in
/// place instead of copying an `n × (a-1)` intermediate.
///
/// # Panics
/// Panics if `stride < radii.len()` or `out.len() != queries.len() * stride`.
#[allow(clippy::too_many_arguments)] // the destination pair is the point
pub fn batch_multi_range_count_into<P, I>(
    index: &I,
    points: &[P],
    queries: &[u32],
    radii: &[f64],
    cap: u32,
    threads: usize,
    out: &mut [u32],
    stride: usize,
) where
    P: Sync,
    I: RangeIndex<P>,
{
    let m = radii.len();
    assert!(stride >= m, "stride {stride} narrower than {m} radii");
    assert_eq!(out.len(), queries.len() * stride, "output size mismatch");
    if m == 0 || queries.is_empty() {
        return;
    }
    let threads = threads.clamp(1, queries.len().max(1));
    let fill = |rows: &mut [u32], qchunk: &[u32]| {
        for (row, &q) in rows.chunks_mut(stride).zip(qchunk) {
            let counts = index.multi_range_count(&points[q as usize], radii, cap);
            row[..m].copy_from_slice(&counts);
        }
    };
    if threads == 1 || queries.len() < 256 {
        fill(out, queries);
        return;
    }
    let chunk = queries.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk * stride)) {
            scope.spawn(|| fill(ochunk, qchunk));
        }
    });
}

/// Pair-returning self-join used only for microcluster gelling (Alg. 3
/// line 12): all pairs `(a, b)` with `a < b`, both in the index, within
/// `radius` of each other. The candidate set is tiny (`|M|` outliers), so
/// this runs serially; pairs come out sorted and deduplicated.
pub fn pair_join<P, I>(index: &I, points: &[P], members: &[u32], radius: f64) -> Vec<(u32, u32)>
where
    P: Sync,
    I: RangeIndex<P>,
{
    let mut pairs = Vec::new();
    let mut hits = Vec::new();
    for &a in members {
        hits.clear();
        index.range_ids(&points[a as usize], radius, &mut hits);
        for &b in &hits {
            if b > a {
                pairs.push((a, b));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use mccatch_metric::Euclidean;

    fn line(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn batch_count_serial_matches_manual() {
        let pts = line(20);
        let idx = BruteForce::new(pts.clone(), (0..20).collect(), Euclidean);
        let queries: Vec<u32> = (0..20).collect();
        let counts = batch_range_count(&idx, &pts, &queries, 1.0, 1);
        // Interior points see 3 neighbors (self + 2), endpoints see 2.
        assert_eq!(counts[0], 2);
        assert_eq!(counts[10], 3);
        assert_eq!(counts[19], 2);
    }

    #[test]
    fn batch_count_parallel_equals_serial() {
        let pts = line(1000);
        let idx = BruteForce::new(pts.clone(), (0..1000).collect(), Euclidean);
        let queries: Vec<u32> = (0..1000).collect();
        let serial = batch_range_count(&idx, &pts, &queries, 3.0, 1);
        let parallel = batch_range_count(&idx, &pts, &queries, 3.0, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_count_subset_queries() {
        let pts = line(10);
        let idx = BruteForce::new(pts.clone(), (0..10).collect(), Euclidean);
        let queries = vec![0u32, 9u32];
        let counts = batch_range_count(&idx, &pts, &queries, 100.0, 1);
        assert_eq!(counts, vec![10, 10]);
    }

    #[test]
    fn batch_multi_parallel_equals_serial_and_masks_over() {
        let pts = line(1000);
        let idx = BruteForce::new(pts.clone(), (0..1000).collect(), Euclidean);
        let queries: Vec<u32> = (0..1000).collect();
        let radii = [0.5, 1.5, 4.5, 20.5];
        let serial = batch_multi_range_count(&idx, &pts, &queries, &radii, 5, 1);
        let parallel = batch_multi_range_count(&idx, &pts, &queries, &radii, 5, 8);
        assert_eq!(serial, parallel);
        // Interior point: counts 1, 3, 9 — 9 > 5 is the exact crossing,
        // the last column is OVER.
        assert_eq!(&serial[500 * 4..501 * 4], &[1, 3, 9, crate::OVER]);
    }

    #[test]
    fn batch_multi_into_respects_stride_and_untouched_cells() {
        let pts = line(10);
        let idx = BruteForce::new(pts.clone(), (0..10).collect(), Euclidean);
        let queries = [0u32, 5];
        let radii = [1.0, 2.0];
        let mut out = vec![77u32; queries.len() * 5];
        batch_multi_range_count_into(&idx, &pts, &queries, &radii, 100, 1, &mut out, 5);
        // Endpoint 0: 2 and 3 in range; interior 5: 3 and 5. Cells past
        // the radii stay as the caller initialized them.
        assert_eq!(out, vec![2, 3, 77, 77, 77, 3, 5, 77, 77, 77]);
    }

    #[test]
    fn batch_multi_empty_inputs() {
        let pts = line(4);
        let idx = BruteForce::new(pts.clone(), (0..4).collect(), Euclidean);
        assert!(batch_multi_range_count(&idx, &pts, &[], &[1.0], 3, 4).is_empty());
        assert_eq!(batch_multi_range_count(&idx, &pts, &[0], &[], 3, 4), vec![]);
    }

    #[test]
    fn pair_join_produces_sorted_unique_pairs() {
        let pts = line(6);
        // Index over {0, 1, 4, 5}; radius 1 links 0-1 and 4-5.
        let members = vec![0u32, 1, 4, 5];
        let idx = BruteForce::new(pts.clone(), members.clone(), Euclidean);
        let pairs = pair_join(&idx, &pts, &members, 1.0);
        assert_eq!(pairs, vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn pair_join_empty_members() {
        let pts = line(6);
        let idx = BruteForce::new(pts.clone(), vec![], Euclidean);
        assert!(pair_join(&idx, &pts, &[], 1.0).is_empty());
    }
}
