//! Count-only spatial joins (Sec. IV-G of the paper).
//!
//! MCCATCH's hot loop is "for each point, how many neighbors within `r`?" —
//! a *self-join adapted to return only counts of neighbors, not pairs of
//! neighboring points* (Alg. 2). These helpers run such joins through any
//! [`RangeIndex`], optionally in parallel: queries are independent, so each
//! worker thread fills a disjoint slice of the output and the result is
//! bit-identical regardless of thread count.

use crate::RangeIndex;

/// Upper bound on worker threads for batch joins. Chosen once per process.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Counts, for every query id in `queries`, the number of indexed elements
/// within `radius` (the count-only join `SELFJOINC`/`JOINC` of Alg. 2/4).
///
/// `queries` are ids into `points`; the output is aligned with `queries`.
/// With `threads <= 1` the join runs serially.
pub fn batch_range_count<P, I>(
    index: &I,
    points: &[P],
    queries: &[u32],
    radius: f64,
    threads: usize,
) -> Vec<usize>
where
    P: Sync,
    I: RangeIndex<P>,
{
    let mut out = vec![0usize; queries.len()];
    let threads = threads.clamp(1, queries.len().max(1));
    if threads == 1 || queries.len() < 256 {
        for (slot, &q) in out.iter_mut().zip(queries) {
            *slot = index.range_count(&points[q as usize], radius);
        }
        return out;
    }
    let chunk = queries.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, &q) in ochunk.iter_mut().zip(qchunk) {
                    *slot = index.range_count(&points[q as usize], radius);
                }
            });
        }
    });
    out
}

/// Pair-returning self-join used only for microcluster gelling (Alg. 3
/// line 12): all pairs `(a, b)` with `a < b`, both in the index, within
/// `radius` of each other. The candidate set is tiny (`|M|` outliers), so
/// this runs serially; pairs come out sorted and deduplicated.
pub fn pair_join<P, I>(index: &I, points: &[P], members: &[u32], radius: f64) -> Vec<(u32, u32)>
where
    P: Sync,
    I: RangeIndex<P>,
{
    let mut pairs = Vec::new();
    let mut hits = Vec::new();
    for &a in members {
        hits.clear();
        index.range_ids(&points[a as usize], radius, &mut hits);
        for &b in &hits {
            if b > a {
                pairs.push((a, b));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use mccatch_metric::Euclidean;

    fn line(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn batch_count_serial_matches_manual() {
        let pts = line(20);
        let idx = BruteForce::new(pts.clone(), (0..20).collect(), Euclidean);
        let queries: Vec<u32> = (0..20).collect();
        let counts = batch_range_count(&idx, &pts, &queries, 1.0, 1);
        // Interior points see 3 neighbors (self + 2), endpoints see 2.
        assert_eq!(counts[0], 2);
        assert_eq!(counts[10], 3);
        assert_eq!(counts[19], 2);
    }

    #[test]
    fn batch_count_parallel_equals_serial() {
        let pts = line(1000);
        let idx = BruteForce::new(pts.clone(), (0..1000).collect(), Euclidean);
        let queries: Vec<u32> = (0..1000).collect();
        let serial = batch_range_count(&idx, &pts, &queries, 3.0, 1);
        let parallel = batch_range_count(&idx, &pts, &queries, 3.0, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_count_subset_queries() {
        let pts = line(10);
        let idx = BruteForce::new(pts.clone(), (0..10).collect(), Euclidean);
        let queries = vec![0u32, 9u32];
        let counts = batch_range_count(&idx, &pts, &queries, 100.0, 1);
        assert_eq!(counts, vec![10, 10]);
    }

    #[test]
    fn pair_join_produces_sorted_unique_pairs() {
        let pts = line(6);
        // Index over {0, 1, 4, 5}; radius 1 links 0-1 and 4-5.
        let members = vec![0u32, 1, 4, 5];
        let idx = BruteForce::new(pts.clone(), members.clone(), Euclidean);
        let pairs = pair_join(&idx, &pts, &members, 1.0);
        assert_eq!(pairs, vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn pair_join_empty_members() {
        let pts = line(6);
        let idx = BruteForce::new(pts.clone(), vec![], Euclidean);
        assert!(pair_join(&idx, &pts, &[], 1.0).is_empty());
    }
}
