//! Linear-scan reference index.
//!
//! Quadratic and simple on purpose: it is the ground truth that the
//! Slim-tree and kd-tree are property-tested against, and the "no index"
//! baseline in the benchmark harness.

use crate::multi::MultiCounter;
use crate::{DistanceStats, IndexBuilder, Neighbor, OrdF64, RangeIndex, SmallCounts};
use mccatch_metric::Metric;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Builder for [`BruteForce`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceBuilder;

impl<P: Send + Sync, M: Metric<P>> IndexBuilder<P, M> for BruteForceBuilder {
    type Index = BruteForce<P, M>;

    fn build(&self, points: Arc<[P]>, ids: Vec<u32>, metric: Arc<M>) -> Self::Index {
        BruteForce::new(points, ids, metric)
    }

    fn backend_name(&self) -> &'static str {
        "brute"
    }
}

/// Exhaustive-scan index: every query touches every indexed element.
/// Owns `Arc` handles to the dataset and metric, so it has no lifetime.
#[derive(Debug)]
pub struct BruteForce<P, M: Metric<P>> {
    points: Arc<[P]>,
    ids: Vec<u32>,
    metric: Arc<M>,
    /// Distance evaluations performed so far (queries; construction does
    /// none). Relaxed ordering: read only after joins complete.
    evals: AtomicU64,
}

impl<P, M: Metric<P>> BruteForce<P, M> {
    /// Creates an index over `points[ids]`. Ids are kept sorted so query
    /// output order is deterministic.
    pub fn new(points: impl Into<Arc<[P]>>, mut ids: Vec<u32>, metric: impl Into<Arc<M>>) -> Self {
        let points = points.into();
        debug_assert!(ids.iter().all(|&i| (i as usize) < points.len()));
        ids.sort_unstable();
        Self {
            points,
            ids,
            metric: metric.into(),
            evals: AtomicU64::new(0),
        }
    }

    /// Batches a query's distance evaluations into one counter update so
    /// parallel joins do not contend per evaluation.
    #[inline]
    fn record_evals(&self, n: u64) {
        self.evals.fetch_add(n, Ordering::Relaxed);
    }
}

impl<P: Send + Sync, M: Metric<P>> RangeIndex<P> for BruteForce<P, M> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn range_count(&self, q: &P, radius: f64) -> usize {
        self.record_evals(self.ids.len() as u64);
        self.ids
            .iter()
            .filter(|&&i| self.metric.distance(q, &self.points[i as usize]) <= radius)
            .count()
    }

    /// One scan over the indexed elements fills every column: each element
    /// lands in the bucket of the smallest radius reaching it, and prefix
    /// sums produce the per-radius counts. The `cap` cannot shorten the
    /// scan here (there is no structure to skip), but the OVER masking
    /// still matches the tree backends bit for bit.
    fn multi_range_count(&self, q: &P, radii: &[f64], cap: u32) -> SmallCounts {
        debug_assert!(radii.windows(2).all(|w| w[0] <= w[1]));
        let m = radii.len();
        let mut counter = MultiCounter::new(m, cap);
        for &i in &self.ids {
            let d = self.metric.distance(q, &self.points[i as usize]);
            let k = radii.partition_point(|&r| r < d);
            if k < m {
                counter.add_point(k, m);
            }
        }
        self.record_evals(self.ids.len() as u64);
        counter.finish()
    }

    fn range_ids(&self, q: &P, radius: f64, out: &mut Vec<u32>) {
        self.record_evals(self.ids.len() as u64);
        out.extend(
            self.ids
                .iter()
                .copied()
                .filter(|&i| self.metric.distance(q, &self.points[i as usize]) <= radius),
        );
    }

    fn distance_stats(&self) -> DistanceStats {
        DistanceStats {
            evals: self.evals.load(Ordering::Relaxed),
        }
    }

    fn knn(&self, q: &P, k: usize) -> Vec<Neighbor> {
        self.record_evals(self.ids.len() as u64);
        let mut all: Vec<Neighbor> = self
            .ids
            .iter()
            .map(|&i| Neighbor {
                id: i,
                dist: self.metric.distance(q, &self.points[i as usize]),
            })
            .collect();
        all.sort_by(|a, b| OrdF64(a.dist).cmp(&OrdF64(b.dist)).then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    /// Exact diameter for up to 2048 elements; beyond that, a deterministic
    /// multi-sweep lower bound (pick a point, walk to the farthest point,
    /// repeat), which is exact on most real point sets and never
    /// overestimates.
    fn diameter_estimate(&self) -> f64 {
        let n = self.ids.len();
        if n < 2 {
            return 0.0;
        }
        let d = |a: u32, b: u32| {
            self.metric
                .distance(&self.points[a as usize], &self.points[b as usize])
        };
        if n <= 2048 {
            self.record_evals((n * (n - 1) / 2) as u64);
            let mut best = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    best = best.max(d(self.ids[i], self.ids[j]));
                }
            }
            return best;
        }
        // Each sweep's max_by evaluates two distances per comparison.
        self.record_evals(4 * (2 * (n as u64 - 1) + 1));
        let mut best = 0.0f64;
        let mut cur = self.ids[0];
        for _ in 0..4 {
            let far = self
                .ids
                .iter()
                .copied()
                .max_by(|&a, &b| OrdF64(d(cur, a)).cmp(&OrdF64(d(cur, b))))
                .expect("non-empty");
            best = best.max(d(cur, far));
            cur = far;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_metric::Euclidean;

    fn grid() -> Vec<Vec<f64>> {
        // 3x3 unit grid.
        (0..3)
            .flat_map(|x| (0..3).map(move |y| vec![x as f64, y as f64]))
            .collect()
    }

    #[test]
    fn range_count_includes_self_and_boundary() {
        let pts = grid();
        let idx = BruteForce::new(pts.clone(), (0..9).collect(), Euclidean);
        // Center point (1,1): distance 1 reaches itself + 4 axis neighbors.
        assert_eq!(idx.range_count(&vec![1.0, 1.0], 1.0), 5);
        // Radius 0 counts only exact matches.
        assert_eq!(idx.range_count(&vec![1.0, 1.0], 0.0), 1);
    }

    #[test]
    fn range_ids_sorted_and_exact() {
        let pts = grid();
        let idx = BruteForce::new(pts.clone(), (0..9).collect(), Euclidean);
        let mut out = Vec::new();
        idx.range_ids(&vec![0.0, 0.0], 1.0, &mut out);
        assert_eq!(out, vec![0, 1, 3]); // (0,0), (0,1), (1,0)
    }

    #[test]
    fn knn_orders_by_distance_then_id() {
        let pts = grid();
        let idx = BruteForce::new(pts.clone(), (0..9).collect(), Euclidean);
        let nn = idx.knn(&vec![0.0, 0.0], 3);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[0].dist, 0.0);
        // Two ties at distance 1: ids 1 and 3 in order.
        assert_eq!((nn[1].id, nn[2].id), (1, 3));
    }

    #[test]
    fn knn_truncates_to_index_size() {
        let pts = grid();
        let idx = BruteForce::new(pts.clone(), vec![0, 1], Euclidean);
        assert_eq!(idx.knn(&vec![0.0, 0.0], 10).len(), 2);
    }

    #[test]
    fn subset_index_reports_dataset_ids() {
        let pts = grid();
        let idx = BruteForce::new(pts.clone(), vec![8, 4], Euclidean);
        let mut out = Vec::new();
        idx.range_ids(&vec![2.0, 2.0], 0.5, &mut out);
        assert_eq!(out, vec![8]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn diameter_exact_small() {
        let pts = grid();
        let idx = BruteForce::new(pts.clone(), (0..9).collect(), Euclidean);
        let want = (8.0f64).sqrt(); // corner to corner
        assert!((idx.diameter_estimate() - want).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let pts = grid();
        let empty = BruteForce::new(pts.clone(), vec![], Euclidean);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.range_count(&vec![0.0, 0.0], 10.0), 0);
        assert_eq!(empty.diameter_estimate(), 0.0);
        assert!(empty.knn(&vec![0.0, 0.0], 3).is_empty());

        let single = BruteForce::new(pts.clone(), vec![4], Euclidean);
        assert_eq!(single.diameter_estimate(), 0.0);
        assert_eq!(single.range_count(&vec![1.0, 1.0], 0.0), 1);
    }
}
