//! Metric access methods and spatial joins for MCCATCH.
//!
//! Step I of MCCATCH (Alg. 1) builds a tree `T` for the dataset — "like a
//! Slim-tree, M-tree, or R-tree" — and every later step counts neighbors
//! through that tree. This crate provides:
//!
//! * [`SlimTree`] — a main-memory Slim-tree (the M-tree family member the
//!   paper recommends for nondimensional data), with MST-based node splits
//!   and triangle-inequality pruning;
//! * [`KdTree`] — a kd-tree fast path for main-memory vector data under the
//!   Euclidean metric (the paper's footnote 4);
//! * [`VpTree`] — a vantage-point tree, a lightweight alternative metric
//!   index demonstrating the pipeline's index-agnosticism;
//! * [`BruteForce`] — a linear-scan reference implementation used as ground
//!   truth in tests and as a baseline in benches;
//! * count-only join helpers ([`batch_range_count`], [`pair_join`])
//!   implementing the paper's *count-only* and *using-index* principles
//!   (Sec. IV-G): neighbor joins never materialize point pairs unless the
//!   caller explicitly asks for pairs (the microcluster gelling step).
//!
//! All indexes implement [`RangeIndex`]; algorithms are generic over
//! [`IndexBuilder`] so the same pipeline runs on metric or vector data.

mod brute;
mod kd;
mod slim;
mod vp;

pub mod join;

pub use brute::{BruteForce, BruteForceBuilder};
pub use join::{batch_range_count, pair_join};
pub use kd::{KdTree, KdTreeBuilder};
pub use slim::{SlimTree, SlimTreeBuilder};
pub use vp::{VpTree, VpTreeBuilder};

use mccatch_metric::Metric;
use std::sync::Arc;

/// A neighbor returned by k-NN queries: dataset id plus distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbor in the dataset the index was built over.
    pub id: u32,
    /// Distance from the query to the neighbor.
    pub dist: f64,
}

/// Total order on `f64` for heaps and sorts (NaN sorts last).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An index over a subset of a dataset supporting the queries MCCATCH and
/// the baselines need. Ids refer to positions in the dataset slice the
/// index was built over, so indexes over subsets (outliers, inliers,
/// microcluster members) still report dataset-level ids.
pub trait RangeIndex<P>: Sync {
    /// Number of indexed elements.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of indexed elements within `radius` of `q` (inclusive).
    /// If `q` itself is indexed it is counted too — matching the paper's
    /// "count of neighbors (+ self)".
    fn range_count(&self, q: &P, radius: f64) -> usize;

    /// Appends the ids of all indexed elements within `radius` of `q`
    /// (inclusive) to `out`, in ascending id order.
    fn range_ids(&self, q: &P, radius: f64, out: &mut Vec<u32>);

    /// The `k` nearest indexed elements to `q`, sorted by `(distance, id)`.
    /// Returns fewer than `k` if the index is smaller.
    fn knn(&self, q: &P, k: usize) -> Vec<Neighbor>;

    /// Estimate of the dataset diameter, derived from the index structure
    /// (Alg. 1 line 2: "Estimate diameter l of P from T").
    fn diameter_estimate(&self) -> f64;
}

/// Builds a [`RangeIndex`] over `ids ⊆ 0..points.len()`.
///
/// MCCATCH builds three trees per run (dataset, outliers, inliers), so
/// construction is abstracted behind a builder; the pipeline in
/// `mccatch-core` is generic over it.
///
/// Indexes are **owned**: they hold id-based node storage plus `Arc`
/// handles to the dataset and metric, so an index (and anything built on
/// top of it, like a fitted detector) has no borrowed lifetime — it can be
/// returned from the stack frame that loaded the data, stored in a
/// long-lived service, and moved across threads. Sharing is cheap: every
/// tree built from the same `Arc<[P]>` reuses the one allocation.
pub trait IndexBuilder<P, M: Metric<P>>: Sync {
    /// The owned index type produced.
    type Index: RangeIndex<P>;

    /// Builds an index over the elements of `points` selected by `ids`.
    fn build(&self, points: Arc<[P]>, ids: Vec<u32>, metric: Arc<M>) -> Self::Index;

    /// Convenience: index the whole dataset.
    fn build_all(&self, points: Arc<[P]>, metric: Arc<M>) -> Self::Index {
        let ids = (0..points.len() as u32).collect();
        self.build(points, ids, metric)
    }

    /// Borrowed-slice convenience for one-shot callers: clones `points`
    /// and `metric` into fresh `Arc`s (an `O(n)` copy, dwarfed by the tree
    /// build itself). Long-lived callers should hold an `Arc<[P]>` and use
    /// [`build`](Self::build) so every tree shares one allocation.
    fn build_ref(&self, points: &[P], ids: Vec<u32>, metric: &M) -> Self::Index
    where
        P: Clone,
        M: Clone,
    {
        self.build(Arc::from(points), ids, Arc::new(metric.clone()))
    }

    /// Borrowed-slice convenience: index the whole dataset (see
    /// [`build_ref`](Self::build_ref) for the copy caveat).
    fn build_all_ref(&self, points: &[P], metric: &M) -> Self::Index
    where
        P: Clone,
        M: Clone,
    {
        self.build_all(Arc::from(points), Arc::new(metric.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_total_order() {
        let mut v = [OrdF64(3.0), OrdF64(f64::NAN), OrdF64(-1.0), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 0.0);
        assert_eq!(v[2].0, 3.0);
        assert!(v[3].0.is_nan());
    }
}
