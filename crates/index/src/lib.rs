//! Metric access methods and spatial joins for MCCATCH.
//!
//! Step I of MCCATCH (Alg. 1) builds a tree `T` for the dataset — "like a
//! Slim-tree, M-tree, or R-tree" — and every later step counts neighbors
//! through that tree. This crate provides:
//!
//! * [`SlimTree`] — a main-memory Slim-tree (the M-tree family member the
//!   paper recommends for nondimensional data), with MST-based node splits
//!   and triangle-inequality pruning;
//! * [`KdTree`] — a kd-tree fast path for main-memory vector data under the
//!   Euclidean metric (the paper's footnote 4);
//! * [`VpTree`] — a vantage-point tree, a lightweight alternative metric
//!   index demonstrating the pipeline's index-agnosticism;
//! * [`BruteForce`] — a linear-scan reference implementation used as ground
//!   truth in tests and as a baseline in benches;
//! * count-only join helpers ([`batch_range_count`],
//!   [`batch_multi_range_count`], [`pair_join`]) implementing the paper's
//!   *count-only* and *using-index* principles (Sec. IV-G): neighbor
//!   joins never materialize point pairs unless the caller explicitly
//!   asks for pairs (the microcluster gelling step). The multi-radius
//!   variant drives MCCATCH's counting stage: one tree descent per query
//!   fills the counts for every grid radius at once
//!   ([`RangeIndex::multi_range_count`], native in all four backends).
//!
//! All indexes implement [`RangeIndex`]; algorithms are generic over
//! [`IndexBuilder`] so the same pipeline runs on metric or vector data.
//! Every backend also counts the distance evaluations it performs
//! ([`RangeIndex::distance_stats`]), the deterministic cost measure the
//! paper's Lemma 1 bounds.

#![deny(missing_docs)]

mod brute;
mod kd;
mod multi;
mod slim;
mod vp;

pub mod join;

pub use brute::{BruteForce, BruteForceBuilder};
pub use join::{
    batch_multi_range_count, batch_multi_range_count_into, batch_range_count, pair_join,
};
pub use kd::{KdTree, KdTreeBuilder};
pub use slim::{SlimTree, SlimTreeBuilder};
pub use vp::{VpTree, VpTreeBuilder};

use mccatch_metric::Metric;
use std::sync::Arc;

/// Sentinel for "count not computed; known to exceed the cap".
///
/// [`RangeIndex::multi_range_count`] stores this in every column after the
/// first count that crosses the sparse-focused cutoff `c` (Sec. IV-G of the
/// paper); `mccatch-core` re-exports it as `counts::OVER`.
pub const OVER: u32 = u32::MAX;

/// Inline capacity of [`SmallCounts`]. The paper's default grid (`a = 15`)
/// joins `a - 1 = 14` radii, so the common case never touches the heap.
const SMALL_COUNTS_INLINE: usize = 16;

/// Per-radius neighbor counts returned by
/// [`RangeIndex::multi_range_count`]: one `u32` count per query radius,
/// stored inline for grids up to 16 radii (heap-spilled beyond that).
///
/// Entries after the first count exceeding the query's `cap` hold [`OVER`]
/// — they were not computed, matching the sparse-focused counting
/// principle. Dereferences to `&[u32]` for slice-style access.
#[derive(Debug, Clone)]
pub struct SmallCounts {
    len: usize,
    inline: [u32; SMALL_COUNTS_INLINE],
    /// Used instead of `inline` when `len > SMALL_COUNTS_INLINE`.
    spill: Vec<u32>,
}

impl SmallCounts {
    /// A counts vector of `len` entries, all set to `value`.
    pub fn filled(len: usize, value: u32) -> Self {
        if len <= SMALL_COUNTS_INLINE {
            Self {
                len,
                inline: [value; SMALL_COUNTS_INLINE],
                spill: Vec::new(),
            }
        } else {
            Self {
                len,
                inline: [value; SMALL_COUNTS_INLINE],
                spill: vec![value; len],
            }
        }
    }

    /// The counts, one per radius of the query (ascending radius order).
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        if self.len <= SMALL_COUNTS_INLINE {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Mutable view of the counts, for index implementors filling them in.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        if self.len <= SMALL_COUNTS_INLINE {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl std::ops::Deref for SmallCounts {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl PartialEq for SmallCounts {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SmallCounts {}

/// Snapshot of an index's distance-computation counters, as reported by
/// [`RangeIndex::distance_stats`].
///
/// Wall-clock benchmarks are noisy; distance evaluations are the
/// deterministic, machine-independent cost measure that Lemma 1 actually
/// bounds. Every provided backend counts its point-to-point distance
/// evaluations (construction and queries alike) and reports them here, so
/// speedups such as the single-traversal multi-radius counting are
/// observable, not asserted. Counts are identical across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistanceStats {
    /// Total point-to-point distance evaluations since the index was built
    /// (including the ones construction itself performed). For the kd-tree
    /// this counts point-distance evaluations only; bounding-box arithmetic
    /// is coordinate work, not a metric evaluation.
    pub evals: u64,
}

/// A neighbor returned by k-NN queries: dataset id plus distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbor in the dataset the index was built over.
    pub id: u32,
    /// Distance from the query to the neighbor.
    pub dist: f64,
}

/// Total order on `f64` for heaps and sorts (NaN sorts last).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An index over a subset of a dataset supporting the queries MCCATCH and
/// the baselines need. Ids refer to positions in the dataset slice the
/// index was built over, so indexes over subsets (outliers, inliers,
/// microcluster members) still report dataset-level ids.
pub trait RangeIndex<P>: Sync {
    /// Number of indexed elements.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of indexed elements within `radius` of `q` (inclusive).
    /// If `q` itself is indexed it is counted too — matching the paper's
    /// "count of neighbors (+ self)".
    fn range_count(&self, q: &P, radius: f64) -> usize;

    /// Counts neighbors of `q` for *every* radius of `radii` (ascending,
    /// inclusive, self counted) in a single pass over the index — the
    /// single-traversal replacement for `radii.len()` separate
    /// [`range_count`](Self::range_count) descents in MCCATCH's counting
    /// stage (Alg. 2 / Sec. IV-G).
    ///
    /// `cap` is the sparse-focused cutoff `c`: entry `k` of the result is
    /// the exact count at `radii[k]` as long as every smaller radius
    /// counted at most `cap`; the first count exceeding `cap` is still
    /// exact (plateau extraction needs the crossing value), and every
    /// entry after it holds [`OVER`]. Pass `cap = u32::MAX` for fully
    /// exact counts at all radii.
    ///
    /// The provided default falls back to one [`range_count`] call per
    /// radius (stopping at the first crossing); the four in-crate backends
    /// override it with native one-descent traversals that bulk-add
    /// subtrees wholly covered by a suffix of the radius grid, skip
    /// subtrees out of reach of every still-active radius, and stop
    /// refining radii that can only end [`OVER`]. Results are identical to
    /// the fallback bit for bit.
    ///
    /// [`range_count`]: Self::range_count
    fn multi_range_count(&self, q: &P, radii: &[f64], cap: u32) -> SmallCounts {
        debug_assert!(radii.windows(2).all(|w| w[0] <= w[1]));
        let mut out = SmallCounts::filled(radii.len(), OVER);
        for (k, &r) in radii.iter().enumerate() {
            let c = self.range_count(q, r) as u32;
            out.as_mut_slice()[k] = c;
            if c > cap {
                break;
            }
        }
        out
    }

    /// Running totals of the distance evaluations this index has performed
    /// (construction plus all queries so far). The default reports zeros,
    /// meaning "not instrumented"; all in-crate backends override it.
    fn distance_stats(&self) -> DistanceStats {
        DistanceStats::default()
    }

    /// Appends the ids of all indexed elements within `radius` of `q`
    /// (inclusive) to `out`, in ascending id order.
    fn range_ids(&self, q: &P, radius: f64, out: &mut Vec<u32>);

    /// The `k` nearest indexed elements to `q`, sorted by `(distance, id)`.
    /// Returns fewer than `k` if the index is smaller.
    fn knn(&self, q: &P, k: usize) -> Vec<Neighbor>;

    /// Estimate of the dataset diameter, derived from the index structure
    /// (Alg. 1 line 2: "Estimate diameter l of P from T").
    fn diameter_estimate(&self) -> f64;
}

/// Builds a [`RangeIndex`] over `ids ⊆ 0..points.len()`.
///
/// MCCATCH builds three trees per run (dataset, outliers, inliers), so
/// construction is abstracted behind a builder; the pipeline in
/// `mccatch-core` is generic over it.
///
/// Indexes are **owned**: they hold id-based node storage plus `Arc`
/// handles to the dataset and metric, so an index (and anything built on
/// top of it, like a fitted detector) has no borrowed lifetime — it can be
/// returned from the stack frame that loaded the data, stored in a
/// long-lived service, and moved across threads. Sharing is cheap: every
/// tree built from the same `Arc<[P]>` reuses the one allocation.
pub trait IndexBuilder<P, M: Metric<P>>: Sync {
    /// The owned index type produced.
    type Index: RangeIndex<P>;

    /// Builds an index over the elements of `points` selected by `ids`.
    fn build(&self, points: Arc<[P]>, ids: Vec<u32>, metric: Arc<M>) -> Self::Index;

    /// Convenience: index the whole dataset.
    fn build_all(&self, points: Arc<[P]>, metric: Arc<M>) -> Self::Index {
        let ids = (0..points.len() as u32).collect();
        self.build(points, ids, metric)
    }

    /// Borrowed-slice convenience for one-shot callers: clones `points`
    /// and `metric` into fresh `Arc`s (an `O(n)` copy, dwarfed by the tree
    /// build itself). Long-lived callers should hold an `Arc<[P]>` and use
    /// [`build`](Self::build) so every tree shares one allocation.
    fn build_ref(&self, points: &[P], ids: Vec<u32>, metric: &M) -> Self::Index
    where
        P: Clone,
        M: Clone,
    {
        self.build(Arc::from(points), ids, Arc::new(metric.clone()))
    }

    /// Borrowed-slice convenience: index the whole dataset (see
    /// [`build_ref`](Self::build_ref) for the copy caveat).
    fn build_all_ref(&self, points: &[P], metric: &M) -> Self::Index
    where
        P: Clone,
        M: Clone,
    {
        self.build_all(Arc::from(points), Arc::new(metric.clone()))
    }

    /// A short, stable identifier for this backend ("brute", "kd", "vp",
    /// "slim"), used to label metrics and to tag persisted model
    /// snapshots so a snapshot is only rebuilt with the index family it
    /// was fitted with (the diameter estimate — and hence the radius
    /// grid and every score — depends on the tree structure).
    fn backend_name(&self) -> &'static str {
        "custom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_total_order() {
        let mut v = [OrdF64(3.0), OrdF64(f64::NAN), OrdF64(-1.0), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 0.0);
        assert_eq!(v[2].0, 3.0);
        assert!(v[3].0.is_nan());
    }
}
